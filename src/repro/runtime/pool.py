"""The multiprocessing worker pool and the worker-side job body.

Each worker is a long-lived OS process with a private task queue and a
private result pipe. The dispatcher hands a worker one job at a time, so
a hung or crashed job is attributable to exactly one process, which the
dispatcher can kill and respawn without losing anything: the job's fate
is recorded as an attempt on its DAG node, never inferred.

Result channels are deliberately *not* shared: a worker killed mid-send
(deadline breach, ``os._exit``) can leave a shared queue's write lock
held forever, wedging every other worker's result. With one pipe per
worker, a dying worker can only corrupt its own channel, which the
dispatcher discards when it respawns the process.

Worker-side state is deliberately reconstructable: a
:class:`CacheBackedRunner` (a :class:`~repro.harness.runner.
BenchmarkRunner` whose materializations and validation references come
from the shared content-addressed cache) is built once per process and
reused across jobs, so repeated datasets are loaded once per worker and
built once per run.

Every exception escaping a job body is converted into a structured
failure envelope and shipped back — the worker loop never swallows a
failure (lint rule RUN001 enforces this statically).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import traceback
from typing import Dict, List, Optional

from repro.harness.config import BenchmarkConfig
from repro.harness.datasets import get_dataset
from repro.harness.runner import BenchmarkRunner
from repro.runtime.cache import GraphCache
from repro.faults.plan import FaultPlan
from repro.runtime.jobs import JobKind, JobSpec
from repro.trace import Tracer, current_tracer, set_tracer

__all__ = ["CacheBackedRunner", "run_job_spec", "WorkerPool", "default_mp_context"]


class CacheBackedRunner(BenchmarkRunner):
    """A benchmark runner whose graph/reference artifacts come from the
    shared content-addressed cache instead of per-process rebuilds."""

    def __init__(self, config: BenchmarkConfig, cache: GraphCache):
        super().__init__(config)
        self.cache = cache

    def _handle(self, platform, dataset):
        # Prime the dataset memo from the cache before the base class
        # materializes, so a spilled graph is loaded, not rebuilt.
        self.cache.get_graph(dataset, self.config.seed)
        return super()._handle(platform, dataset)

    def _reference_output(self, dataset, algorithm, params):
        key = (dataset.dataset_id, algorithm)
        if key not in self._references:
            self._references[key] = self.cache.get_reference(
                dataset, algorithm, self.config.seed
            )
        return self._references[key]


def run_job_spec(runner: CacheBackedRunner, cache: GraphCache, spec: JobSpec) -> Dict[str, object]:
    """Execute one job spec; returns a picklable result payload.

    Raises on failure — the caller (worker loop or inline executor)
    converts exceptions into structured failure records.
    """
    dataset = get_dataset(spec.dataset)
    if spec.kind == JobKind.MATERIALIZE:
        with current_tracer().span("materialize", dataset=spec.dataset):
            graph = cache.get_graph(dataset, spec.seed)
        return {
            "kind": spec.kind,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
        }
    if spec.kind == JobKind.REFERENCE:
        with current_tracer().span(
            "reference", dataset=spec.dataset, algorithm=spec.algorithm
        ):
            reference = cache.get_reference(dataset, spec.algorithm, spec.seed)
        return {"kind": spec.kind, "elements": int(reference.shape[0])}
    result = runner.run_job(
        spec.platform,
        spec.dataset,
        spec.algorithm,
        resources=spec.resources(runner.config.resources),
        run_index=spec.run_index,
    )
    return {"kind": spec.kind, "result": result.as_dict()}


def _worker_main(
    worker_id: int,
    task_conn,
    result_conn,
    config: BenchmarkConfig,
    cache_dir: Optional[str],
    memory_entries: int,
    fault_plan: Optional[FaultPlan],
) -> None:
    """Worker entrypoint: loop tasks until the ``None`` sentinel.

    Contract (RUN001): every exception is either re-raised or converted
    into a structured failure envelope — no silent loss.

    Timing contract: the worker owns a fresh per-process
    :class:`~repro.trace.Tracer` (replacing any fork-inherited one), and
    every envelope ships the spans the job emitted *plus* the clock
    offset ``sent_at - received_at`` — the dispatcher stamps each task
    with its send time on the dispatcher clock, so the offset maps
    worker-clock instants onto the dispatcher's timeline
    (:func:`repro.trace.rebase_spans`). Durations (``elapsed``) are
    clock-origin-free and need no re-basing.
    """
    tracer = Tracer(process=f"worker-{worker_id}")
    set_tracer(tracer)
    cache = GraphCache(cache_dir, memory_entries=memory_entries)
    runner = CacheBackedRunner(config, cache)
    parent = os.getppid()
    while True:
        # Orphan guard: if the dispatcher dies hard (SIGKILL chaos, OOM
        # kill), the task pipe never reaches EOF — sibling workers
        # forked later inherit its write end — so a blocking read would
        # leak this process forever. Poll with a timeout and exit once
        # reparented.
        if not task_conn.poll(1.0):
            if os.getppid() != parent:
                return
            continue
        try:
            task = task_conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        spec, attempt, sent_at = task
        received_at = tracer.clock.now()
        clock_offset = sent_at - received_at
        try:
            with tracer.span(
                "task", job=spec.job_id, worker=worker_id, attempt=attempt
            ) as task_span:
                if fault_plan is not None:
                    fault_plan.inject(spec, attempt)
                payload = run_job_spec(runner, cache, spec)
        except Exception as exc:
            # Converted into a structured failure record, per contract.
            result_conn.send(
                _failure_envelope(
                    worker_id, spec, exc, task_span, cache, tracer,
                    clock_offset,
                )
            )
            continue
        result_conn.send(
            {
                "event": "done",
                "worker": worker_id,
                "seq": spec.seq,
                "payload": payload,
                "cache": cache.take_stats_delta(),
                "elapsed": task_span.duration,
                "spans": [span.as_dict() for span in tracer.drain()],
                "counters": tracer.take_counters(),
                "clock_offset": clock_offset,
            }
        )


def _failure_envelope(
    worker_id: int, spec: JobSpec, exc: BaseException, task_span,
    cache: GraphCache, tracer: Tracer, clock_offset: float,
) -> Dict[str, object]:
    """The structured failure record a worker ships for a raised job."""
    return {
        "event": "fail",
        "worker": worker_id,
        "seq": spec.seq,
        "detail": f"{type(exc).__name__}: {exc}",
        "traceback": traceback.format_exc(limit=8),
        "cache": cache.take_stats_delta(),
        "elapsed": task_span.duration,
        "spans": [span.as_dict() for span in tracer.drain()],
        "counters": tracer.take_counters(),
        "clock_offset": clock_offset,
    }


def default_mp_context():
    """Prefer fork (fast, shares warm module state); fall back portably.

    Public because every process-spawning layer (this pool, the
    partitioned engine's shard transport) must agree on one start-method
    policy.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


#: Backwards-compatible private alias (pre-existing internal callers).
_default_context = default_mp_context


class _WorkerHandle:
    """Bookkeeping for one worker process."""

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.process = None
        self.task_send = None
        self.result_recv = None
        self.busy_seq: Optional[int] = None

    def close_result_conn(self) -> None:
        if self.result_recv is not None:
            try:
                self.result_recv.close()
            except OSError:
                pass
            self.result_recv = None

    def close_task_conn(self) -> None:
        if self.task_send is not None:
            try:
                self.task_send.close()
            except OSError:
                pass
            self.task_send = None


class WorkerPool:
    """A fixed-size pool of single-job-at-a-time worker processes."""

    def __init__(
        self,
        workers: int,
        config: BenchmarkConfig,
        *,
        cache_dir: Optional[str] = None,
        memory_entries: int = 8,
        fault_plan: Optional[FaultPlan] = None,
        context=None,
    ):
        self.size = max(1, int(workers))
        self.config = config
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.memory_entries = memory_entries
        self.fault_plan = fault_plan
        self.clock = current_tracer().clock
        self._ctx = context or _default_context()
        self._handles: Dict[int, _WorkerHandle] = {}
        self.respawns = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        for worker_id in range(self.size):
            handle = _WorkerHandle(worker_id)
            self._handles[worker_id] = handle
            self._spawn(handle)

    def _spawn(self, handle: _WorkerHandle) -> None:
        handle.close_result_conn()
        handle.close_task_conn()
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        task_recv, task_send = self._ctx.Pipe(duplex=False)
        handle.task_send = task_send
        handle.result_recv = recv_conn
        handle.busy_seq = None
        handle.process = self._ctx.Process(
            target=_worker_main,
            name=f"graphalytics-worker-{handle.worker_id}",
            args=(
                handle.worker_id,
                task_recv,
                send_conn,
                self.config,
                self.cache_dir,
                self.memory_entries,
                self.fault_plan,
            ),
            daemon=True,
        )
        handle.process.start()
        # The parent's copies of the worker-held ends must close so each
        # side sees EOF (not a silent hang) when the other goes away.
        send_conn.close()
        task_recv.close()

    def restart(self, worker_id: int) -> None:
        """Kill (if needed) and respawn one worker; its job (and any
        bytes stuck in its result pipe) is gone — the attempt record on
        the DAG node is the source of truth, not the channel."""
        handle = self._handles[worker_id]
        if handle.process is not None and handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=5.0)
        self.respawns += 1
        self._spawn(handle)

    def shutdown(self) -> None:
        for handle in self._handles.values():
            if handle.process is not None and handle.process.is_alive():
                try:
                    handle.task_send.send(None)
                except (OSError, ValueError):
                    handle.process.terminate()
        for handle in self._handles.values():
            if handle.process is not None:
                handle.process.join(timeout=5.0)
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=5.0)
            handle.close_result_conn()
            handle.close_task_conn()
        self._handles.clear()

    # -- dispatch ----------------------------------------------------------

    def idle_workers(self) -> List[int]:
        return sorted(
            worker_id
            for worker_id, handle in self._handles.items()
            if handle.busy_seq is None
        )

    def submit(self, worker_id: int, spec: JobSpec, attempt: int) -> None:
        handle = self._handles[worker_id]
        handle.busy_seq = spec.seq
        # The dispatcher-clock send stamp: the worker subtracts its own
        # receive stamp to get the cross-process clock offset its spans
        # are re-based by.
        handle.task_send.send((spec, attempt, self.clock.now()))

    def mark_idle(self, worker_id: int) -> None:
        self._handles[worker_id].busy_seq = None

    def busy_seq(self, worker_id: int) -> Optional[int]:
        return self._handles[worker_id].busy_seq

    def is_alive(self, worker_id: int) -> bool:
        process = self._handles[worker_id].process
        return process is not None and process.is_alive()

    def dead_busy_workers(self) -> List[int]:
        """Workers that died while holding a job (crash candidates)."""
        return sorted(
            worker_id
            for worker_id, handle in self._handles.items()
            if handle.busy_seq is not None and not self.is_alive(worker_id)
        )

    def wait(self, timeout: float) -> Optional[Dict[str, object]]:
        """Next worker envelope, or ``None`` after the poll interval."""
        timeout = max(0.001, timeout)
        conns = {
            handle.result_recv: handle
            for handle in self._handles.values()
            if handle.result_recv is not None
        }
        if not conns:
            self.clock.sleep(timeout)
            return None
        ready = multiprocessing.connection.wait(list(conns), timeout=timeout)
        for conn in ready:
            handle = conns[conn]
            try:
                return handle.result_recv.recv()
            except (EOFError, OSError):
                # The worker died: the pipe is at EOF (or mid-message
                # garbage). Stop polling it — the dispatcher's dead-
                # worker policing records the crash and respawns it.
                handle.close_result_conn()
        # Poll tick — nothing to record yet; the dispatcher handles
        # deadlines and dead workers itself.
        return None
