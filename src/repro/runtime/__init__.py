"""The concurrent benchmark-execution runtime (docs/runtime.md).

Public surface: :func:`~repro.runtime.executor.execute_matrix` runs a
benchmark matrix through the dependency-aware scheduler, the
multiprocessing worker pool, and the content-addressed graph cache,
producing a deterministically merged results database plus structured
failure and cache reports.
"""

from repro.runtime.cache import CacheStats, GraphCache, graph_key, reference_key
from repro.runtime.events import RuntimeEvent, RuntimeEventLog
from repro.runtime.executor import (
    RuntimeConfig,
    RuntimeRunResult,
    example_matrix,
    execute_matrix,
    prefetch_into_runner,
    resume_run,
)
from repro.faults.plan import FaultPlan, FaultSpec, InjectedFaultError
from repro.runtime.journal import (
    JournalError,
    JournalReplay,
    RunJournal,
    job_key,
    matrix_hash,
    serial_job_key,
)
from repro.runtime.jobs import (
    FAILURE_STATUSES,
    AttemptRecord,
    JobFailure,
    JobKind,
    JobSpec,
    failure_result,
)
from repro.runtime.pool import CacheBackedRunner, WorkerPool
from repro.runtime.scheduler import (
    JobGraph,
    JobNode,
    can_run_combo,
    expand_matrix,
)

__all__ = [
    "AttemptRecord",
    "CacheBackedRunner",
    "CacheStats",
    "FAILURE_STATUSES",
    "FaultPlan",
    "FaultSpec",
    "GraphCache",
    "InjectedFaultError",
    "JobFailure",
    "JobGraph",
    "JobKind",
    "JobNode",
    "JobSpec",
    "JournalError",
    "JournalReplay",
    "RunJournal",
    "RuntimeConfig",
    "RuntimeEvent",
    "RuntimeEventLog",
    "RuntimeRunResult",
    "WorkerPool",
    "can_run_combo",
    "example_matrix",
    "execute_matrix",
    "expand_matrix",
    "failure_result",
    "graph_key",
    "job_key",
    "matrix_hash",
    "reference_key",
    "prefetch_into_runner",
    "resume_run",
    "serial_job_key",
]
