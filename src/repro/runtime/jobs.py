"""Job model of the benchmark-execution runtime.

The runtime decomposes a benchmark matrix into three kinds of jobs,
mirroring the harness pipeline (paper Figure 1): *materialize* builds a
dataset's miniature graph, *reference* computes the validation oracle
for one (dataset, algorithm), and *execute* runs one repetition of one
(platform, dataset, algorithm) workload. Execute jobs depend on their
materialize and reference jobs; the scheduler dispatches ready jobs to
the worker pool.

Failures are **data, never silence**: every attempt that times out,
crashes, or raises is recorded as an :class:`AttemptRecord`; a job that
exhausts its retry budget becomes a :class:`JobFailure` and — for
execute jobs — a ``harness-*`` row in the results database, exactly as
the paper's robustness accounting (§4.6) expects failed jobs to surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.harness.results import BenchmarkResult
from repro.platforms.cluster import ClusterResources

__all__ = [
    "JobKind",
    "JobSpec",
    "AttemptRecord",
    "JobFailure",
    "FAILURE_STATUSES",
    "failure_result",
]


class JobKind:
    """The three node kinds of the runtime's job DAG."""

    MATERIALIZE = "materialize"
    REFERENCE = "reference"
    EXECUTE = "execute"


#: ResultsDatabase statuses synthesized by the runtime for jobs that the
#: *harness* (not the modeled platform) failed to complete. They join the
#: driver-level statuses (``failed-memory``, ``crashed``, ...) in the
#: report's failure accounting.
FAILURE_STATUSES: Tuple[str, ...] = (
    "harness-timeout",
    "harness-crash",
    "harness-error",
    "harness-dependency",
)


@dataclass(frozen=True)
class JobSpec:
    """One schedulable unit of work; picklable, self-describing.

    ``seq`` is the job's position in the deterministic matrix expansion
    order — the merge step orders results by it, which is what makes the
    final database independent of worker count and completion order.
    """

    seq: int
    kind: str                      # one of the JobKind constants
    dataset: str                   # dataset id, e.g. "R4"
    seed: int = 0
    platform: str = ""             # execute jobs only
    algorithm: str = ""            # reference + execute jobs
    run_index: int = 0             # execute jobs only
    machines: int = 1
    threads: Optional[int] = None

    @property
    def job_id(self) -> str:
        parts = [self.kind, self.dataset]
        if self.algorithm:
            parts.append(self.algorithm)
        if self.platform:
            parts.append(self.platform)
        if self.kind == JobKind.EXECUTE:
            parts.append(f"m{self.machines}")
            parts.append(f"r{self.run_index}")
        return ":".join(parts)

    def resources(self, base: Optional[ClusterResources] = None) -> ClusterResources:
        """Cluster resources for this job; ``base`` supplies the machine spec."""
        if base is not None:
            return replace(base, machines=self.machines, threads=self.threads)
        return ClusterResources(machines=self.machines, threads=self.threads)


@dataclass(frozen=True)
class AttemptRecord:
    """One failed attempt at a job: what went wrong, where, how long."""

    attempt: int                   # 1-based
    worker: int                    # worker id, -1 for inline execution
    kind: str                      # "timeout" | "crash" | "exception" | "dependency"
    detail: str
    elapsed_seconds: float = 0.0
    backoff_seconds: float = 0.0   # delay scheduled before the next attempt

    def as_dict(self) -> Dict[str, object]:
        return {
            "attempt": self.attempt,
            "worker": self.worker,
            "kind": self.kind,
            "detail": self.detail,
            "elapsed_seconds": self.elapsed_seconds,
            "backoff_seconds": self.backoff_seconds,
        }


@dataclass
class JobFailure:
    """The structured record of a job that exhausted its retry budget."""

    spec: JobSpec
    attempts: List[AttemptRecord] = field(default_factory=list)

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    @property
    def final_kind(self) -> str:
        return self.attempts[-1].kind if self.attempts else "unknown"

    @property
    def retries(self) -> int:
        return max(0, len(self.attempts) - 1)

    def summary(self) -> str:
        trail = " -> ".join(a.kind for a in self.attempts) or "no attempts"
        detail = self.attempts[-1].detail if self.attempts else ""
        text = f"{len(self.attempts)} attempt(s): {trail}"
        return f"{text}; {detail}" if detail else text

    def as_dict(self) -> Dict[str, object]:
        return {
            "job_id": self.job_id,
            "kind": self.spec.kind,
            "final_kind": self.final_kind,
            "attempts": [a.as_dict() for a in self.attempts],
        }


def failure_result(failure: JobFailure) -> BenchmarkResult:
    """The results-database row for a failed *execute* job.

    SLA-non-compliant and unvalidated by construction; the status names
    the harness-level failure mode so the report's failure breakdown
    separates platform failures (modeled) from harness ones.
    """
    spec = failure.spec
    status = {
        "timeout": "harness-timeout",
        "crash": "harness-crash",
        "dependency": "harness-dependency",
    }.get(failure.final_kind, "harness-error")
    return BenchmarkResult(
        platform=spec.platform,
        algorithm=spec.algorithm,
        dataset=spec.dataset,
        machines=spec.machines,
        threads=spec.resources().threads_per_machine,
        status=status,
        failure_reason=failure.summary(),
        run_index=spec.run_index,
        sla_compliant=False,
        validated=None,
    )
