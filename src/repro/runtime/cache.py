"""Content-addressed cache of materialized graphs and reference outputs.

Dataset miniatures are deterministic functions of ``(dataset spec,
seed)`` (see DESIGN.md §2), so the runtime materializes each one **once
per run** and shares it across workers. The cache is keyed by a SHA-256
digest of the canonical dataset spec — the id, the seed, the full-scale
profile the recipe targets, and a format version — so a recipe change
invalidates old entries instead of silently serving them.

Two layers:

* an **in-memory LRU** (per process; bounded entry count) for repeated
  jobs inside one worker;
* an **on-disk spill** directory (shared by every worker of a run, and
  across runs if the caller passes a persistent directory). Writes are
  atomic (`tmp` + ``os.replace``), so concurrent workers racing to
  store the same key are safe — last writer wins with identical bytes.

Every layer interaction is counted (:class:`CacheStats`); workers ship
their deltas back with each job result, and the scheduler aggregates
them into the run's cache report.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.ioutil import atomic_write

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "GraphCache",
    "default_cache_directory",
]

#: Bump to invalidate every existing cache entry (e.g. when a recipe or
#: the Graph pickle layout changes).
CACHE_FORMAT_VERSION = 1


def default_cache_directory() -> Path:
    """The persistent cache location (``graphalytics cache ...``).

    ``GRAPHALYTICS_CACHE_DIR`` wins; otherwise the XDG cache home.
    """
    override = os.environ.get("GRAPHALYTICS_CACHE_DIR")
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME") or str(Path.home() / ".cache")
    return Path(base) / "graphalytics"


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one process (or one merged run)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    bytes_written: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: Union["CacheStats", Dict[str, int]]) -> None:
        data = other.as_dict() if isinstance(other, CacheStats) else dict(other)
        for key in (
            "memory_hits", "disk_hits", "misses",
            "stores", "evictions", "bytes_written",
        ):
            setattr(self, key, getattr(self, key) + int(data.get(key, 0)))

    def as_dict(self) -> Dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "bytes_written": self.bytes_written,
        }

    def describe(self) -> str:
        return (
            f"{self.hits} hits ({self.memory_hits} memory, {self.disk_hits} "
            f"disk), {self.misses} misses, {self.evictions} evictions, "
            f"{self.bytes_written} bytes spilled"
        )


def _spec_payload(dataset, seed: int, *, kind: str, algorithm: str = "") -> str:
    """Canonical JSON of everything the cached artifact depends on."""
    profile = dataset.profile
    return json.dumps(
        {
            "format": CACHE_FORMAT_VERSION,
            "kind": kind,
            "dataset": dataset.dataset_id,
            "seed": seed,
            "algorithm": algorithm,
            "profile": {
                "name": profile.name,
                "num_vertices": profile.num_vertices,
                "num_edges": profile.num_edges,
                "directed": profile.directed,
                "weighted": profile.weighted,
            },
            "pr_iterations": dataset.pr_iterations,
            "cdlp_iterations": dataset.cdlp_iterations,
        },
        sort_keys=True,
    )


def graph_key(dataset, seed: int) -> str:
    """Content address of one dataset materialization."""
    payload = _spec_payload(dataset, seed, kind="graph")
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def reference_key(dataset, algorithm: str, seed: int) -> str:
    """Content address of one validation-reference output."""
    payload = _spec_payload(
        dataset, seed, kind="reference", algorithm=algorithm.lower()
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheEntryInfo:
    """Manifest of one on-disk entry, for ``graphalytics cache stats``."""

    key: str
    kind: str
    label: str
    bytes: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "kind": self.kind,
            "label": self.label,
            "bytes": self.bytes,
        }


class GraphCache:
    """LRU-over-spill cache of graphs and reference outputs.

    ``directory=None`` disables the disk layer (memory-only); the
    runtime always passes a per-run or user-chosen directory so workers
    share materializations.
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        *,
        memory_entries: int = 8,
    ):
        self.directory = Path(directory) if directory is not None else None
        self.memory_entries = max(0, int(memory_entries))
        self._lru: "OrderedDict[str, object]" = OrderedDict()
        self.stats = CacheStats()
        self._delta = CacheStats()

    # -- stats -------------------------------------------------------------

    def _count(self, **deltas: int) -> None:
        self.stats.merge(deltas)
        self._delta.merge(deltas)

    def take_stats_delta(self) -> Dict[str, int]:
        """Counters accumulated since the last call (for worker envelopes)."""
        delta = self._delta.as_dict()
        self._delta = CacheStats()
        return delta

    # -- memory layer -------------------------------------------------------

    def _memory_get(self, key: str):
        if key in self._lru:
            self._lru.move_to_end(key)
            return self._lru[key]
        return None

    def _memory_put(self, key: str, value) -> None:
        if self.memory_entries == 0:
            return
        self._lru[key] = value
        self._lru.move_to_end(key)
        while len(self._lru) > self.memory_entries:
            self._lru.popitem(last=False)
            self._count(evictions=1)

    # -- disk layer ----------------------------------------------------------

    def _entry_path(self, key: str) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / key[:2] / f"{key}.pkl"

    def _disk_get(self, key: str):
        path = self._entry_path(key)
        if path is None or not path.exists():
            return None
        with open(path, "rb") as handle:
            return pickle.load(handle)

    def _disk_put(self, key: str, value, *, kind: str, label: str) -> None:
        path = self._entry_path(key)
        if path is None:
            return
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        # Atomic but not fsynced: entries are rebuildable, so losing one
        # to a crash is fine — serving a torn one never is. For the same
        # reason a *full disk* downgrades to not-spilling at all rather
        # than failing the job that built the value.
        try:
            atomic_write(
                path, blob, durable=False, fault_point="cache.spill.write"
            )
            manifest = {
                "key": key,
                "kind": kind,
                "label": label,
                "bytes": len(blob),
                "format": CACHE_FORMAT_VERSION,
            }
            atomic_write(
                path.with_suffix(".json"),
                json.dumps(manifest, indent=1, sort_keys=True),
                durable=False,
            )
        except OSError as exc:
            if exc.errno != errno.ENOSPC:
                raise
            return
        self._count(stores=1, bytes_written=len(blob))

    # -- lookup --------------------------------------------------------------

    def _get(self, key: str, builder, *, kind: str, label: str):
        from repro.trace import current_tracer

        value = self._memory_get(key)
        if value is not None:
            self._count(memory_hits=1)
            current_tracer().counter("cache.hit.memory")
            return value
        value = self._disk_get(key)
        if value is not None:
            self._count(disk_hits=1)
            current_tracer().counter("cache.hit.disk")
            self._memory_put(key, value)
            return value
        self._count(misses=1)
        current_tracer().counter("cache.miss")
        value = builder()
        self._disk_put(key, value, kind=kind, label=label)
        self._memory_put(key, value)
        return value

    def get_graph(self, dataset, seed: int = 0):
        """The dataset's miniature graph, via cache layers or the recipe."""
        key = graph_key(dataset, seed)
        graph = self._get(
            key,
            lambda: dataset.materialize(seed),
            kind="graph",
            label=f"{dataset.dataset_id} seed={seed}",
        )
        # A disk hit skips Dataset.materialize; prime its per-process
        # memo so later in-process paths reuse the same object.
        dataset.prime(seed, graph)
        return graph

    def get_reference(self, dataset, algorithm: str, seed: int = 0) -> np.ndarray:
        """The validation-reference output for one (dataset, algorithm)."""
        from repro.algorithms.registry import run_reference

        algorithm = algorithm.lower()
        key = reference_key(dataset, algorithm, seed)

        def build() -> np.ndarray:
            graph = self.get_graph(dataset, seed)
            params = dataset.algorithm_parameters(algorithm, seed)
            return run_reference(algorithm, graph, params)

        return self._get(
            key,
            build,
            kind="reference",
            label=f"{dataset.dataset_id}/{algorithm} seed={seed}",
        )

    # -- maintenance -----------------------------------------------------------

    def disk_entries(self) -> List[CacheEntryInfo]:
        """Manifests of every on-disk entry, sorted by label."""
        if self.directory is None or not self.directory.exists():
            return []
        entries: List[CacheEntryInfo] = []
        for manifest_path in sorted(self.directory.glob("*/*.json")):
            with open(manifest_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            entries.append(
                CacheEntryInfo(
                    key=str(data.get("key", manifest_path.stem)),
                    kind=str(data.get("kind", "?")),
                    label=str(data.get("label", "?")),
                    bytes=int(data.get("bytes", 0)),
                )
            )
        entries.sort(key=lambda e: (e.kind, e.label, e.key))
        return entries

    def clear(self) -> int:
        """Drop both layers; returns the number of disk entries removed."""
        self._lru.clear()
        removed = 0
        if self.directory is not None and self.directory.exists():
            for path in self.directory.glob("*/*.pkl"):
                path.unlink()
                removed += 1
            for path in self.directory.glob("*/*.json"):
                path.unlink()
            for path in self.directory.glob("*/*.tmp"):
                path.unlink()
            for sub in self.directory.iterdir():
                if sub.is_dir() and not any(sub.iterdir()):
                    sub.rmdir()
        return removed

    def write_run_stats(self, stats: CacheStats) -> Optional[Path]:
        """Persist a run's merged counters for ``graphalytics cache stats``."""
        if self.directory is None:
            return None
        return atomic_write(
            self.directory / "last-run-stats.json",
            json.dumps(stats.as_dict(), indent=1, sort_keys=True),
        )

    def read_run_stats(self) -> Optional[CacheStats]:
        if self.directory is None:
            return None
        path = self.directory / "last-run-stats.json"
        if not path.exists():
            return None
        with open(path, "r", encoding="utf-8") as handle:
            stats = CacheStats()
            stats.merge(json.load(handle))
            return stats
