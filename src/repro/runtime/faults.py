"""Backwards-compatible alias for :mod:`repro.faults.plan`.

The job-scoped fault plan started life here, next to the worker pool it
exercises. The cross-layer fault plane (PR 8) promoted it to
:mod:`repro.faults` so job faults and I/O faults share one home; this
module re-exports the original names for existing imports and pickled
plans.
"""

from __future__ import annotations

from repro.faults.plan import FaultPlan, FaultSpec, InjectedFaultError

__all__ = ["InjectedFaultError", "FaultSpec", "FaultPlan"]
