"""Runtime observability: an event log that feeds the Granula archiver.

The paper's harness makes every job examinable through a Granula
performance archive (§2.5.2); the concurrent runtime extends the same
treatment to *itself*. Scheduler decisions (dispatch, complete, retry,
timeout, crash) and cache interactions are recorded as timestamped
events, and :meth:`RuntimeEventLog.to_archive` rolls them into a
standard :class:`~repro.granula.archiver.PerformanceArchive` with
``expand`` / ``execute`` / ``merge`` phases — renderable by the existing
Granula visualizer alongside per-job archives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.trace import Tracer, current_tracer

__all__ = ["RuntimeEvent", "RuntimeEventLog"]


@dataclass(frozen=True)
class RuntimeEvent:
    """One scheduler or cache event on the run's timeline."""

    t: float                      # seconds since the run started
    event: str                    # "dispatch", "complete", "retry", ...
    fields: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {"t": self.t, "event": self.event, **self.fields}


class _ArchiveSource:
    """Shim with the attributes ``build_archive`` consumes."""

    def __init__(self, platform: str, algorithm: str, dataset: str, events):
        self.platform = platform
        self.algorithm = algorithm
        self.dataset = dataset
        self.events = events


class RuntimeEventLog:
    """Append-only run log with phase markers.

    A thin shim over the tracer clock: timestamps are read from the
    current (or injected) :class:`~repro.trace.Tracer`'s clock and kept
    relative to the log's creation instant, so the public event API is
    unchanged while the run shares one timing authority with its spans.
    """

    def __init__(self, tracer: Optional[Tracer] = None):
        self._tracer = tracer or current_tracer()
        self._origin = self._tracer.clock.now()
        self.events: List[RuntimeEvent] = []
        self._phase_starts: Dict[str, float] = {}
        self._phase_ends: Dict[str, float] = {}

    def _now(self) -> float:
        return self._tracer.clock.now() - self._origin

    def emit(self, event: str, **fields: object) -> RuntimeEvent:
        record = RuntimeEvent(t=self._now(), event=event, fields=dict(fields))
        self.events.append(record)
        return record

    def phase_start(self, name: str) -> None:
        self._phase_starts[name] = self._now()
        self.emit("phase-start", phase=name)

    def phase_end(self, name: str) -> None:
        self._phase_ends[name] = self._now()
        self.emit("phase-end", phase=name)

    def count(self, event: str) -> int:
        return sum(1 for record in self.events if record.event == event)

    def select(self, event: str) -> List[RuntimeEvent]:
        return [record for record in self.events if record.event == event]

    def as_dicts(self) -> List[Dict[str, object]]:
        return [record.as_dict() for record in self.events]

    # -- Granula bridge -----------------------------------------------------

    def to_archive(
        self, *, label: str = "benchmark-matrix",
        metadata: Optional[Dict[str, object]] = None,
    ):
        """A Granula performance archive of the run itself.

        Phases come from the recorded ``phase_start``/``phase_end``
        markers; run-level counters (jobs, retries, cache traffic) ride
        on the ``execute`` phase's metadata so the archive stays
        self-describing.
        """
        from repro.granula.archiver import build_archive

        phase_events: List[Dict[str, object]] = []
        for name, started in self._phase_starts.items():
            ended = self._phase_ends.get(name)
            if ended is None:
                ended = self._now()
            extra: Dict[str, object] = {}
            if name == "execute" and metadata:
                extra = dict(metadata)
            phase_events.append(
                {"phase": name, "start": started, "end": ended, **extra}
            )
        phase_events.sort(key=lambda e: (e["start"], e["phase"]))
        source = _ArchiveSource(
            platform="runtime",
            algorithm="schedule",
            dataset=label,
            events=phase_events,
        )
        return build_archive(source)
