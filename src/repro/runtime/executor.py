"""The benchmark-execution runtime: concurrent matrix runs, one API.

:func:`execute_matrix` expands a benchmark selection into the job DAG,
executes it — inline for ``workers=1``, on the multiprocessing pool
otherwise — and merges results deterministically:

* every execute job's row enters the final database at its matrix
  sequence number, so the database (and everything rendered from it) is
  identical for any worker count and any completion order;
* the only environment-dependent fields are the ``measured_*``
  wall-clocks; ``ResultsDatabase.canonical_json`` excludes them, and
  that serialization is bit-identical across worker counts (the
  determinism contract, see docs/runtime.md);
* a job that cannot be completed (timeout, worker crash, repeated
  exceptions, failed dependency) still lands in the database as a
  ``harness-*`` failure row — the SLA/robustness accounting never loses
  a job.
"""

from __future__ import annotations

import os
import tempfile
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.exceptions import ConfigurationError
from repro.harness.config import BenchmarkConfig
from repro.harness.datasets import get_dataset
from repro.harness.results import BenchmarkResult, ResultsDatabase
from repro.runtime.cache import CacheStats, GraphCache
from repro.runtime.events import RuntimeEventLog
from repro.faults.plan import FaultPlan
from repro.runtime.jobs import JobFailure, JobKind, failure_result
from repro.runtime.journal import (
    JournalError,
    JournalReplay,
    RunJournal,
    config_from_payload,
    config_payload,
    job_key,
    matrix_hash,
)
from repro.runtime.pool import CacheBackedRunner, WorkerPool, run_job_spec
from repro.runtime.scheduler import JobGraph, NodeState, expand_matrix
from repro.trace import Span, current_tracer, rebase_spans

__all__ = [
    "RuntimeConfig",
    "RuntimeRunResult",
    "execute_matrix",
    "example_matrix",
    "prefetch_into_runner",
    "resolve_partitions",
    "resolve_workers",
    "resume_run",
]


def resolve_workers(
    requested: Union[int, str, None], *, available: Optional[int] = None
) -> int:
    """Effective worker-pool size for a run: ``min(requested, CPUs)``.

    ``"auto"`` (or ``None``) sizes the pool to the host —
    ``os.cpu_count()`` — which is what an unattended server must do per
    run. An explicit request larger than the host is capped with a
    warning rather than honored: BENCH_runtime.json shows
    oversubscribed pools *losing* to smaller ones (4 workers slower
    than 2 on a 1-CPU host), so a silent oversubscription is a perf
    bug, not a preference.
    """
    if available is None:
        available = os.cpu_count() or 1
    available = max(1, available)
    if requested is None or requested == "auto":
        return available
    if isinstance(requested, float) and not requested.is_integer():
        raise ConfigurationError(
            f"workers must be a positive integer or 'auto', got {requested!r}"
        )
    try:
        count = int(requested)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"workers must be a positive integer or 'auto', got {requested!r}"
        )
    if count < 1:
        raise ConfigurationError("workers must be >= 1")
    if count > available:
        warnings.warn(
            f"requested {count} workers but only {available} CPU(s) are "
            f"available; capping the pool at {available} (oversubscribed "
            f"pools measure slower, see BENCH_runtime.json)",
            RuntimeWarning,
            stacklevel=2,
        )
        return available
    return count


def resolve_partitions(
    requested: Union[int, str, None], *, available: Optional[int] = None
) -> Optional[int]:
    """Effective shard count for the partitioned engine.

    ``None`` means "no partitioning" (the single-process engines run);
    ``"auto"`` or an integer delegate to :func:`resolve_workers`, so
    shard sizing follows the same host-adaptive policy as the worker
    pool — sized to the CPUs for ``"auto"``, capped with a warning when
    a request oversubscribes the host. Because partitioned outputs are
    bit-identical at any shard count, the cap changes only performance,
    never results.
    """
    if requested is None:
        return None
    return resolve_workers(requested, available=available)


@dataclass
class RuntimeConfig:
    """Tuning knobs of the execution runtime (see docs/runtime.md)."""

    workers: int = 1
    #: "auto" picks inline for one worker, the process pool otherwise.
    mode: str = "auto"
    #: Per-job wall-clock budget (pool mode); ``None`` disables.
    job_timeout: Optional[float] = None
    #: Total tries per job, including the first (>= 1).
    max_attempts: int = 2
    #: First retry delay; doubles per further attempt.
    backoff_base: float = 0.05
    #: Shared spill directory; ``None`` = private per-run temp dir.
    cache_dir: Optional[Union[str, Path]] = None
    #: Per-process in-memory LRU capacity (graphs + references).
    memory_cache_entries: int = 8
    #: Deterministic fault injection (tests, chaos self-checks).
    fault_plan: Optional[FaultPlan] = None
    #: Dispatcher poll interval in pool mode (seconds).
    poll_interval: float = 0.02

    def __post_init__(self):
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.mode not in ("auto", "inline", "pool"):
            raise ConfigurationError(
                f"mode must be auto/inline/pool, got {self.mode!r}"
            )
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ConfigurationError("job_timeout must be positive")

    @property
    def resolved_mode(self) -> str:
        if self.mode != "auto":
            return self.mode
        return "inline" if self.workers <= 1 else "pool"


@dataclass
class RuntimeRunResult:
    """Everything one runtime-driven matrix run produced."""

    database: ResultsDatabase
    failures: List[JobFailure] = field(default_factory=list)
    cache_stats: CacheStats = field(default_factory=CacheStats)
    events: RuntimeEventLog = field(default_factory=RuntimeEventLog)
    workers: int = 1
    mode: str = "inline"
    elapsed_seconds: float = 0.0
    job_count: int = 0             # execute jobs in the matrix
    dag_size: int = 0              # all DAG nodes
    restored_jobs: int = 0         # DAG jobs replayed from a run journal
    run_dir: Optional[Path] = None
    #: ``<run_dir>/trace.jsonl`` when the run was journaled, else None.
    trace_path: Optional[Path] = None
    #: Durability-downgrade flags the run accumulated (e.g. the journal
    #: disabling itself on ENOSPC) — empty for a fully durable run.
    degraded: List[str] = field(default_factory=list)

    @property
    def lost_jobs(self) -> int:
        """Execute jobs with neither a result row nor a failure: must be 0."""
        return self.job_count - len(self.database)

    def archive(self):
        """Granula performance archive of the run itself."""
        return self.events.to_archive(
            metadata={
                "workers": self.workers,
                "mode": self.mode,
                "jobs": self.job_count,
                "retries": self.events.count("retry"),
                "timeouts": self.events.count("timeout"),
                "crashes": self.events.count("crash"),
                "restored": self.restored_jobs,
                "cache_hits": self.cache_stats.hits,
                "cache_misses": self.cache_stats.misses,
            }
        )

    def describe(self) -> str:
        return (
            f"{self.job_count} jobs on {self.workers} worker(s) "
            f"[{self.mode}] in {self.elapsed_seconds:.2f} s; "
            f"{len(self.failures)} harness failure(s); "
            f"cache: {self.cache_stats.describe()}"
        )


def example_matrix(seed: int = 0, *, repetitions: int = 2) -> BenchmarkConfig:
    """The small standard matrix used by docs, benches, and smoke tests.

    Two platforms x two datasets x three algorithms x two repetitions
    (SSSP is skipped on the unweighted R1) — 20 execute jobs with
    repeated datasets, so cache hits and concurrency both show.
    """
    return BenchmarkConfig(
        platforms=["powergraph", "graphmat"],
        datasets=["R1", "R4"],
        algorithms=["bfs", "pr", "sssp"],
        repetitions=repetitions,
        seed=seed,
    )


@contextmanager
def _cache_directory(runtime: RuntimeConfig, run_dir: Optional[Path] = None):
    if runtime.cache_dir is not None:
        path = Path(runtime.cache_dir)
        path.mkdir(parents=True, exist_ok=True)
        yield path
        return
    if run_dir is not None:
        # Journaled runs keep their spill under the run directory, so a
        # resumed run inherits every materialization the crashed run paid
        # for instead of rebuilding them.
        path = Path(run_dir) / "cache"
        path.mkdir(parents=True, exist_ok=True)
        yield path
        return
    with tempfile.TemporaryDirectory(prefix="graphalytics-cache-") as tmp:
        yield Path(tmp)


class _MatrixRun:
    """One in-flight matrix execution (shared by inline and pool modes)."""

    def __init__(
        self,
        config: BenchmarkConfig,
        runtime: RuntimeConfig,
        cache_dir: Path,
        *,
        include_execute: bool = True,
    ):
        self.config = config
        self.runtime = runtime
        self.cache_dir = cache_dir
        self.tracer = current_tracer()
        self.clock = self.tracer.clock
        self.root_span = self.tracer.start_span(
            "matrix-run",
            attributes={"workers": runtime.workers,
                        "mode": runtime.resolved_mode},
            push=True,
        )
        self._phase_spans: Dict[str, Span] = {}
        self._attempt_spans: Dict[int, Span] = {}
        self.events = RuntimeEventLog(self.tracer)
        self.phase_start("expand")
        specs = expand_matrix(config)
        if not include_execute:
            specs = [s for s in specs if s.kind != JobKind.EXECUTE]
        self.specs = specs
        self.keys = {spec.seq: job_key(spec) for spec in specs}
        self.graph = JobGraph(
            specs,
            max_attempts=runtime.max_attempts,
            backoff_base=runtime.backoff_base,
        )
        self.execute_count = sum(
            1 for s in specs if s.kind == JobKind.EXECUTE
        )
        self.phase_end("expand")
        self.results: Dict[int, BenchmarkResult] = {}
        self.cache_stats = CacheStats()
        self._failures_seen = 0
        #: Write-ahead journal; attached by execute_matrix for journaled
        #: runs, after any restore — restored state is never re-recorded.
        self.journal: Optional[RunJournal] = None
        self.restored_jobs = 0

    # -- spans ---------------------------------------------------------------

    def phase_start(self, name: str) -> None:
        """Open a run phase: an event marker plus a context span."""
        self.events.phase_start(name)
        self._phase_spans[name] = self.tracer.start_span(
            name, parent=self.root_span, push=True
        )

    def phase_end(self, name: str) -> None:
        self.events.phase_end(name)
        span = self._phase_spans.pop(name, None)
        if span is not None:
            self.tracer.end_span(span)

    def begin_attempt(self, seq: int, *, attempt: int, worker: int,
                      push: bool = False) -> Span:
        """Open the dispatcher-side attempt span (dispatch → envelope).

        Inline execution pushes it as the current context (one attempt
        at a time, so the job's own spans nest under it); pool dispatch
        leaves it off the stack — attempts overlap there, and worker
        spans are grafted under it at merge time instead.
        """
        node = self.graph.nodes[seq]
        span = self.tracer.start_span(
            "attempt",
            attributes={
                "job": node.spec.job_id,
                "attempt": attempt,
                "worker": worker,
            },
            push=push,
        )
        self._attempt_spans[seq] = span
        return span

    def finish_attempt(self, seq: int, *, status: str = "ok") -> Optional[Span]:
        span = self._attempt_spans.pop(seq, None)
        if span is not None:
            self.tracer.end_span(span, status=status)
        return span

    def merge_worker_trace(self, seq: int, envelope: Dict[str, object],
                           *, status: str) -> None:
        """Close the attempt span and graft the worker's spans under it.

        The worker ships its spans on its own clock plus the measured
        ``clock_offset``; re-basing by the offset (and clamping into the
        attempt window) puts them on the dispatcher's timeline.
        """
        attempt_span = self.finish_attempt(seq, status=status)
        raw = envelope.get("spans") or []
        if attempt_span is None or not raw:
            return
        offset = float(envelope.get("clock_offset", 0.0))
        worker_spans = [Span.from_dict(record) for record in raw]
        for span in rebase_spans(worker_spans, offset, parent=attempt_span):
            self.tracer.record(span)

    def close_spans(self) -> None:
        """End any still-open phase/attempt spans plus the run root."""
        for seq in list(self._attempt_spans):
            self.finish_attempt(seq, status="abandoned")
        for name in list(self._phase_spans):
            span = self._phase_spans.pop(name)
            self.tracer.end_span(span)
        if self.root_span.end is None:
            self.tracer.end_span(self.root_span)

    # -- write-ahead journal -------------------------------------------------

    def matrix_hash(self) -> str:
        return matrix_hash(self.config, self.specs)

    def journal_scheduled(self) -> None:
        """Record the full job list (one batch, one fsync)."""
        self.journal.append_many(
            [
                {
                    "type": "job-scheduled",
                    "seq": spec.seq,
                    "key": self.keys[spec.seq],
                    "job": spec.job_id,
                }
                for spec in self.specs
            ]
        )

    def journal_dispatch(self, seq: int, *, attempt: int, worker: int,
                         trace: str = "") -> None:
        if self.journal is not None:
            record = {
                "type": "attempt-start",
                "seq": seq,
                "key": self.keys[seq],
                "attempt": attempt,
                "worker": worker,
            }
            if trace:
                # The attempt span's id: joins journal rows to trace.jsonl.
                record["trace"] = trace
            self.journal.append(record)

    def restore(self, replay: JournalReplay) -> int:
        """Replay a journal into the DAG; returns the jobs marked done.

        Completions and failed attempts are applied in journal order, so
        dependents unlock exactly as they did in the crashed run; a
        terminal failed attempt re-derives its dependency-failure cascade
        instead of trusting (possibly torn-off) ``job-failed`` records.
        In-flight jobs — an ``attempt-start`` with no terminal record —
        are left READY and simply execute again.
        """
        expected = self.matrix_hash()
        recorded = replay.header.get("matrix_hash")
        if recorded != expected:
            raise JournalError(
                f"journal matrix hash {recorded} does not match the "
                f"configured matrix {expected}; refusing to resume a "
                f"different run"
            )
        by_key = {self.keys[spec.seq]: spec.seq for spec in self.specs}
        for record in replay.records:
            seq = by_key.get(str(record.get("key", "")))
            if seq is None:
                continue
            node = self.graph.nodes[seq]
            kind = record.get("type")
            if kind == "job-done":
                if node.state == NodeState.DONE:
                    continue
                self.graph.complete(seq)
                if node.spec.kind == JobKind.EXECUTE:
                    self.results[seq] = BenchmarkResult(**record["result"])
                self.restored_jobs += 1
            elif kind == "attempt-failed":
                if node.state in (NodeState.DONE, NodeState.FAILED):
                    continue
                self.graph.record_attempt(
                    seq,
                    now=0.0,
                    worker=int(record.get("worker", -1)),
                    kind=str(record.get("kind", "exception")),
                    detail=str(record.get("detail", "")),
                    elapsed=float(record.get("elapsed", 0.0)),
                )
        self.sync_failures()  # journal not yet attached: no re-recording
        self.events.emit(
            "restore",
            jobs=self.restored_jobs,
            failures=len(self.graph.failures),
        )
        return self.restored_jobs

    # -- shared bookkeeping ------------------------------------------------

    def complete_job(self, seq: int, payload: Dict[str, object], *,
                     worker: int, elapsed: float) -> None:
        node = self.graph.nodes[seq]
        self.graph.complete(seq)
        if node.spec.kind == JobKind.EXECUTE:
            self.results[seq] = BenchmarkResult(**payload["result"])
        if self.journal is not None:
            # The result row travels in the record, so resume rebuilds
            # the database without re-running the job.
            record: Dict[str, object] = {
                "type": "job-done",
                "seq": seq,
                "key": self.keys[seq],
                "kind": node.spec.kind,
            }
            attempt_span = self._attempt_spans.get(seq)
            if attempt_span is not None:
                record["trace"] = attempt_span.span_id
            if node.spec.kind == JobKind.EXECUTE:
                record["result"] = payload["result"]
            self.journal.append(record)
        self.events.emit(
            "complete", job=node.spec.job_id, worker=worker, elapsed=elapsed
        )

    def attempt_failed(self, seq: int, *, worker: int, kind: str,
                       detail: str, elapsed: float) -> None:
        node = self.graph.nodes[seq]
        failure = self.graph.record_attempt(
            seq,
            now=self.clock.now(),
            worker=worker,
            kind=kind,
            detail=detail,
            elapsed=elapsed,
        )
        if self.journal is not None:
            record = {
                "type": "attempt-failed",
                "seq": seq,
                "key": self.keys[seq],
                "attempt": len(node.attempts),
                "worker": worker,
                "kind": kind,
                "detail": detail,
                "elapsed": elapsed,
            }
            attempt_span = self._attempt_spans.get(seq)
            if attempt_span is not None:
                record["trace"] = attempt_span.span_id
            self.journal.append(record)
        if failure is None:
            self.tracer.counter("scheduler.retry")
            self.events.emit(
                "retry",
                job=node.spec.job_id,
                worker=worker,
                kind=kind,
                attempt=len(node.attempts),
                backoff=node.attempts[-1].backoff_seconds,
            )
        self.sync_failures()

    def sync_failures(self) -> None:
        """Turn newly permanent failures into database rows (execute jobs)."""
        base = self.config.resources
        while self._failures_seen < len(self.graph.failures):
            failure = self.graph.failures[self._failures_seen]
            self._failures_seen += 1
            if self.journal is not None:
                # Accounting only: resume re-derives permanent failures
                # (and their cascades) from the attempt-failed records.
                self.journal.append(
                    {
                        "type": "job-failed",
                        "seq": failure.spec.seq,
                        "key": self.keys[failure.spec.seq],
                        "kind": failure.final_kind,
                        "attempts": len(failure.attempts),
                    }
                )
            self.events.emit(
                "job-failed",
                job=failure.job_id,
                kind=failure.final_kind,
                attempts=len(failure.attempts),
            )
            if failure.spec.kind == JobKind.EXECUTE:
                row = failure_result(failure)
                # Respect a custom machine spec for the threads column.
                self.results[failure.spec.seq] = BenchmarkResult(
                    **{
                        **row.as_dict(),
                        "threads": failure.spec.resources(base).threads_per_machine,
                    }
                )

    def merged(self) -> ResultsDatabase:
        """The deterministic merge: rows ordered by matrix sequence."""
        return ResultsDatabase(
            [self.results[seq] for seq in sorted(self.results)]
        )


def _run_inline(run: _MatrixRun) -> None:
    """Single-process execution through the same DAG and retry policy."""
    runtime = run.runtime
    if runtime.fault_plan is not None and any(
        f.kind in ("hang", "crash") for f in runtime.fault_plan.faults
    ):
        raise ConfigurationError(
            "hang/crash fault injection requires pool mode (workers > 1 "
            "or mode='pool')"
        )
    cache = GraphCache(
        run.cache_dir, memory_entries=runtime.memory_cache_entries
    )
    runner = CacheBackedRunner(run.config, cache)
    graph = run.graph
    clock = run.clock
    tracer = run.tracer
    while graph.unfinished:
        now = clock.now()
        progressed = False
        for node in list(graph.ready_jobs(now)):
            progressed = True
            spec = node.spec
            attempt = node.attempt_number
            if runtime.fault_plan is not None:
                # Chaos hook: SIGKILL the harness *before* dispatch, so
                # every earlier completion is already in the journal.
                runtime.fault_plan.inject_dispatcher(spec, attempt)
            graph.mark_running(node.seq, worker=-1)
            attempt_span = run.begin_attempt(
                node.seq, attempt=attempt, worker=-1, push=True
            )
            run.journal_dispatch(
                node.seq, attempt=attempt, worker=-1,
                trace=attempt_span.span_id,
            )
            tracer.counter("scheduler.dispatch")
            run.events.emit(
                "dispatch", job=spec.job_id, worker=-1, attempt=attempt
            )
            try:
                with tracer.span(
                    "task", job=spec.job_id, worker=-1, attempt=attempt
                ) as task_span:
                    if runtime.fault_plan is not None:
                        runtime.fault_plan.inject(spec, attempt)
                    payload = run_job_spec(runner, cache, spec)
            except Exception as exc:
                # Converted into a structured failure record, never lost.
                run.attempt_failed(
                    node.seq,
                    worker=-1,
                    kind="exception",
                    detail=f"{type(exc).__name__}: {exc}",
                    elapsed=task_span.duration,
                )
                run.finish_attempt(node.seq, status="error")
                continue
            run.complete_job(
                node.seq, payload, worker=-1, elapsed=task_span.duration
            )
            run.finish_attempt(node.seq)
        if not progressed:
            wake = graph.next_wake(clock.now())
            if wake is None:
                break  # nothing ready, nothing scheduled: DAG is drained
            clock.sleep(max(0.0, wake - clock.now()))
    run.cache_stats.merge(cache.stats)


def _run_pool(run: _MatrixRun) -> None:
    """Dispatch the DAG onto the worker pool; police deadlines and deaths."""
    runtime = run.runtime
    graph = run.graph
    pool = WorkerPool(
        runtime.workers,
        run.config,
        cache_dir=str(run.cache_dir),
        memory_entries=runtime.memory_cache_entries,
        fault_plan=runtime.fault_plan,
    )
    pool.start()
    try:
        while graph.unfinished:
            now = run.clock.now()
            idle = pool.idle_workers()
            for node in graph.ready_jobs(now):
                if not idle:
                    break
                worker = idle.pop(0)
                attempt = node.attempt_number
                if runtime.fault_plan is not None:
                    runtime.fault_plan.inject_dispatcher(node.spec, attempt)
                attempt_span = run.begin_attempt(
                    node.seq, attempt=attempt, worker=worker
                )
                pool.submit(worker, node.spec, attempt)
                deadline = (
                    now + runtime.job_timeout
                    if runtime.job_timeout is not None
                    else None
                )
                graph.mark_running(node.seq, worker=worker, deadline=deadline)
                run.journal_dispatch(
                    node.seq, attempt=attempt, worker=worker,
                    trace=attempt_span.span_id,
                )
                run.tracer.counter("scheduler.dispatch")
                run.events.emit(
                    "dispatch",
                    job=node.spec.job_id,
                    worker=worker,
                    attempt=attempt,
                )
            envelope = pool.wait(runtime.poll_interval)
            now = run.clock.now()
            if envelope is not None:
                _handle_envelope(run, pool, envelope)
            _police_deadlines(run, pool, now)
            _police_crashes(run, pool)
    finally:
        pool.shutdown()


def _handle_envelope(run: _MatrixRun, pool: WorkerPool, envelope) -> None:
    worker = int(envelope["worker"])
    seq = int(envelope["seq"])
    run.cache_stats.merge(envelope.get("cache", {}))
    run.tracer.merge_counters(envelope.get("counters") or {})
    node = run.graph.nodes.get(seq)
    stale = (
        node is None
        or node.state != NodeState.RUNNING
        or node.worker != worker
        or pool.busy_seq(worker) != seq
    )
    if stale:
        # A result from a worker we already timed out and replaced: the
        # job's fate was decided when we killed it; keep the decision —
        # and drop its spans, which describe an attempt we disowned.
        run.tracer.counter("scheduler.stale-result")
        run.events.emit("stale-result", seq=seq, worker=worker)
        return
    pool.mark_idle(worker)
    if envelope["event"] == "done":
        run.complete_job(
            seq,
            envelope["payload"],
            worker=worker,
            elapsed=float(envelope.get("elapsed", 0.0)),
        )
        run.merge_worker_trace(seq, envelope, status="ok")
    else:
        run.attempt_failed(
            seq,
            worker=worker,
            kind="exception",
            detail=str(envelope.get("detail", "worker exception")),
            elapsed=float(envelope.get("elapsed", 0.0)),
        )
        run.merge_worker_trace(seq, envelope, status="error")


def _police_deadlines(run: _MatrixRun, pool: WorkerPool, now: float) -> None:
    for node in run.graph.running_jobs():
        if node.deadline is None or node.deadline > now:
            continue
        worker = node.worker if node.worker is not None else -1
        run.tracer.counter("scheduler.timeout")
        run.events.emit("timeout", job=node.spec.job_id, worker=worker)
        pool.restart(worker)
        run.attempt_failed(
            node.seq,
            worker=worker,
            kind="timeout",
            detail=(
                f"exceeded the {run.runtime.job_timeout:.3g} s job timeout; "
                f"worker killed"
            ),
            elapsed=float(run.runtime.job_timeout or 0.0),
        )
        run.finish_attempt(node.seq, status="timeout")


def _police_crashes(run: _MatrixRun, pool: WorkerPool) -> None:
    for worker in pool.dead_busy_workers():
        seq = pool.busy_seq(worker)
        node = run.graph.nodes.get(seq) if seq is not None else None
        run.tracer.counter("scheduler.crash")
        run.events.emit(
            "crash",
            job=node.spec.job_id if node is not None else seq,
            worker=worker,
        )
        pool.restart(worker)
        if node is not None and node.state == NodeState.RUNNING:
            run.attempt_failed(
                node.seq,
                worker=worker,
                kind="crash",
                detail="worker process died while running the job",
                elapsed=0.0,
            )
            run.finish_attempt(node.seq, status="crash")


def execute_matrix(
    config: BenchmarkConfig,
    runtime: Optional[RuntimeConfig] = None,
    *,
    include_execute: bool = True,
    run_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
) -> RuntimeRunResult:
    """Run a benchmark matrix through the concurrent runtime.

    With ``run_dir`` the run is **journaled**: every job transition is
    appended durably to ``<run_dir>/journal.jsonl`` before execution
    proceeds, the graph cache spills under ``<run_dir>/cache``, and the
    final database lands atomically in ``<run_dir>/results.json``. With
    ``resume=True`` the journal is replayed first and only the remainder
    of the DAG executes — the merged database is bit-identical (under
    ``canonical_json``) to an uninterrupted run. Runtime knobs (workers,
    mode, timeouts) are *not* part of the journaled identity, so a
    resume may use a different worker count.
    """
    runtime = runtime or RuntimeConfig()
    if resume and run_dir is None:
        raise ConfigurationError("resume=True requires a run_dir")
    run_dir = Path(run_dir) if run_dir is not None else None
    tracer = current_tracer()
    trace_mark = tracer.mark()
    counters_before = tracer.counters
    started = tracer.clock.now()
    trace_path: Optional[Path] = None
    with _cache_directory(runtime, run_dir) as cache_dir:
        run = _MatrixRun(
            config, runtime, cache_dir, include_execute=include_execute
        )
        try:
            if run_dir is not None:
                if resume:
                    run.restore(RunJournal.load(run_dir))
                    run.journal = RunJournal.open(run_dir)
                else:
                    run.journal = RunJournal.create(
                        run_dir,
                        {
                            "kind": "matrix",
                            "matrix_hash": run.matrix_hash(),
                            "config": config_payload(config),
                            "include_execute": include_execute,
                        },
                    )
                    run.journal_scheduled()
            mode = runtime.resolved_mode
            run.phase_start("execute")
            if run.graph.unfinished:
                if mode == "pool":
                    _run_pool(run)
                else:
                    _run_inline(run)
            run.phase_end("execute")
            run.phase_start("merge")
            database = run.merged()
            run.phase_end("merge")
            if run.journal is not None:
                run.journal.append({"type": "run-complete"})
                run.journal.close()
                degraded = list(run.journal.degraded)
            else:
                degraded = []
            if run_dir is not None:
                database.save(run_dir / "results.json")
            GraphCache(cache_dir).write_run_stats(run.cache_stats)
        finally:
            run.close_spans()
        if run_dir is not None and tracer.enabled:
            # This run's slice of the span buffer and counter deltas —
            # the examinable record behind `graphalytics trace`.
            from repro.trace import write_trace

            delta = {
                name: value - counters_before.get(name, 0.0)
                for name, value in tracer.counters.items()
                if value != counters_before.get(name, 0.0)
            }
            trace_path = write_trace(
                run_dir / "trace.jsonl",
                tracer.spans_since(trace_mark),
                counters=delta,
            )
    return RuntimeRunResult(
        database=database,
        failures=list(run.graph.failures),
        cache_stats=run.cache_stats,
        events=run.events,
        workers=runtime.workers,
        mode=mode,
        elapsed_seconds=tracer.clock.now() - started,
        job_count=run.execute_count,
        dag_size=len(run.graph),
        restored_jobs=run.restored_jobs,
        run_dir=run_dir,
        trace_path=trace_path,
        degraded=degraded,
    )


def resume_run(
    run_dir: Union[str, Path],
    runtime: Optional[RuntimeConfig] = None,
) -> RuntimeRunResult:
    """Resume a crashed (or complete) journaled matrix run.

    The benchmark configuration is rebuilt from the journal header — the
    caller supplies only *runtime* knobs, which may differ from the
    crashed run's. Resuming an already-complete journal re-executes
    nothing and simply rebuilds the database (idempotent).
    """
    replay = RunJournal.load(run_dir)
    kind = replay.header.get("kind")
    if kind != "matrix":
        raise JournalError(
            f"{RunJournal.journal_path(run_dir)} records a {kind!r} run; "
            f"resume it through the harness entry point that wrote it"
        )
    config = config_from_payload(replay.header["config"])
    return execute_matrix(
        config,
        runtime,
        include_execute=bool(replay.header.get("include_execute", True)),
        run_dir=run_dir,
        resume=True,
    )


def prefetch_into_runner(
    runner,
    *,
    datasets: Sequence[str],
    algorithms: Sequence[str],
    runtime: Optional[RuntimeConfig] = None,
) -> Optional[RuntimeRunResult]:
    """Materialize datasets and references concurrently, then warm a runner.

    Experiment bodies are inherently sequential (baselines feed later
    jobs), but their expensive inputs are not: this fans materialization
    and reference computation out to the pool, then primes the runner's
    per-process memos from the shared cache so the serial experiment
    runs on warm data. Returns ``None`` when there is nothing to fetch.
    """
    from repro.runtime.scheduler import can_run_combo

    datasets = [d for d in datasets]
    algorithms = [a.lower() for a in algorithms]
    if not datasets:
        return None
    if not algorithms:
        algorithms = ["bfs"]
    runtime = runtime or RuntimeConfig()
    config = runner.config.subset(
        datasets=datasets, algorithms=algorithms, repetitions=1
    )
    with _cache_directory(runtime) as cache_dir:
        fetch_runtime = RuntimeConfig(
            workers=runtime.workers,
            mode=runtime.mode,
            job_timeout=runtime.job_timeout,
            max_attempts=runtime.max_attempts,
            backoff_base=runtime.backoff_base,
            cache_dir=cache_dir,
            memory_cache_entries=runtime.memory_cache_entries,
        )
        result = execute_matrix(config, fetch_runtime, include_execute=False)
        cache = GraphCache(
            cache_dir, memory_entries=runtime.memory_cache_entries
        )
        seed = runner.config.seed
        for dataset_id in datasets:
            dataset = get_dataset(dataset_id)
            cache.get_graph(dataset, seed)  # primes the dataset memo
            if not runner.config.validate_outputs:
                continue
            for algorithm in algorithms:
                if not can_run_combo(
                    config.platforms[0] if config.platforms else "powergraph",
                    dataset_id,
                    algorithm,
                ):
                    continue
                runner.prime_reference(
                    dataset_id,
                    algorithm,
                    cache.get_reference(dataset, algorithm, seed),
                )
    return result
