"""Dependency-aware job scheduling for the benchmark runtime.

:func:`expand_matrix` turns a :class:`~repro.harness.config.
BenchmarkConfig` into the runtime's job DAG:

* one **materialize** job per dataset that any workload uses;
* one **reference** job per validated (dataset, algorithm) pair —
  depends on the materialization;
* one **execute** job per (platform, dataset, algorithm, repetition) —
  depends on the materialization and (when validating) the reference.

Execute jobs are numbered in exactly the order
``BenchmarkRunner.run`` visits them (platform → dataset → algorithm →
repetition), and the merge step sorts by that number — which is what
makes the final database identical for any worker count.

:class:`JobGraph` tracks node states, promotes dependents as jobs
finish, applies the bounded retry-with-backoff policy, and cascades a
permanent dependency failure into structured failures for every
transitive dependent (a job whose dataset never materialized is a
*recorded* failure, not a missing row).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.exceptions import ValidationError
from repro.algorithms.registry import get_algorithm
from repro.harness.config import BenchmarkConfig
from repro.harness.datasets import get_dataset
from repro.platforms.registry import get_platform
from repro.runtime.jobs import AttemptRecord, JobFailure, JobKind, JobSpec

__all__ = ["can_run_combo", "expand_matrix", "JobNode", "JobGraph"]


def can_run_combo(
    platform: str, dataset_id: str, algorithm: str, *, machines: int = 1
) -> bool:
    """Registry-only version of ``BenchmarkRunner.can_run`` (no driver)."""
    dataset = get_dataset(dataset_id)
    if get_algorithm(algorithm).weighted and not dataset.weighted:
        return False
    if machines > 1 and not get_platform(platform).distributed:
        return False
    return True


class NodeState:
    PENDING = "pending"    # waiting on dependencies
    READY = "ready"        # dispatchable (possibly after a backoff delay)
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class JobNode:
    """One DAG node plus its scheduling state."""

    spec: JobSpec
    deps: Tuple[int, ...] = ()
    state: str = NodeState.PENDING
    attempts: List[AttemptRecord] = field(default_factory=list)
    eligible_at: float = 0.0       # monotonic time before which not dispatchable
    worker: Optional[int] = None
    deadline: Optional[float] = None

    @property
    def seq(self) -> int:
        return self.spec.seq

    @property
    def attempt_number(self) -> int:
        """1-based number of the attempt about to run (or running)."""
        return len(self.attempts) + 1


def expand_matrix(config: BenchmarkConfig) -> List[JobSpec]:
    """The run's job list, deterministic in spec and numbering."""
    machines = config.resources.machines
    threads = config.resources.threads
    combos: List[Tuple[str, str, str]] = []
    for platform in config.platforms:
        for dataset_id in config.datasets:
            for algorithm in config.algorithms:
                if not can_run_combo(
                    platform, dataset_id, algorithm, machines=machines
                ):
                    if config.skip_impossible:
                        continue
                    raise ValidationError(
                        f"cannot run {algorithm} on {dataset_id} with {platform}"
                    )
                combos.append((platform, dataset_id, algorithm))

    counter = itertools.count()
    specs: List[JobSpec] = []
    for dataset_id in config.datasets:
        if any(c[1] == dataset_id for c in combos):
            specs.append(
                JobSpec(
                    seq=next(counter),
                    kind=JobKind.MATERIALIZE,
                    dataset=dataset_id,
                    seed=config.seed,
                )
            )
    if config.validate_outputs:
        seen = set()
        for _, dataset_id, algorithm in combos:
            if (dataset_id, algorithm) in seen:
                continue
            seen.add((dataset_id, algorithm))
            specs.append(
                JobSpec(
                    seq=next(counter),
                    kind=JobKind.REFERENCE,
                    dataset=dataset_id,
                    algorithm=algorithm,
                    seed=config.seed,
                )
            )
    for platform, dataset_id, algorithm in combos:
        for run_index in range(config.repetitions):
            specs.append(
                JobSpec(
                    seq=next(counter),
                    kind=JobKind.EXECUTE,
                    dataset=dataset_id,
                    platform=platform,
                    algorithm=algorithm,
                    run_index=run_index,
                    machines=machines,
                    threads=threads,
                    seed=config.seed,
                )
            )
    return specs


class JobGraph:
    """The DAG with scheduling state and the retry/failure policy."""

    def __init__(
        self,
        specs: List[JobSpec],
        *,
        max_attempts: int = 2,
        backoff_base: float = 0.05,
    ):
        self.max_attempts = max(1, int(max_attempts))
        self.backoff_base = float(backoff_base)
        self.nodes: Dict[int, JobNode] = {}
        self.failures: List[JobFailure] = []
        by_key: Dict[Tuple[str, str, str], int] = {}
        for spec in specs:
            by_key[(spec.kind, spec.dataset, spec.algorithm)] = spec.seq
        for spec in specs:
            deps: List[int] = []
            if spec.kind in (JobKind.REFERENCE, JobKind.EXECUTE):
                mat = by_key.get((JobKind.MATERIALIZE, spec.dataset, ""))
                if mat is not None:
                    deps.append(mat)
            if spec.kind == JobKind.EXECUTE:
                ref = by_key.get((JobKind.REFERENCE, spec.dataset, spec.algorithm))
                if ref is not None:
                    deps.append(ref)
            self.nodes[spec.seq] = JobNode(spec=spec, deps=tuple(deps))
        self._dependents: Dict[int, List[int]] = {}
        for node in self.nodes.values():
            for dep in node.deps:
                self._dependents.setdefault(dep, []).append(node.seq)
        for node in self.nodes.values():
            if not node.deps:
                node.state = NodeState.READY

    @classmethod
    def from_config(cls, config: BenchmarkConfig, **kwargs) -> "JobGraph":
        return cls(expand_matrix(config), **kwargs)

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def unfinished(self) -> int:
        return sum(
            1 for n in self.nodes.values()
            if n.state not in (NodeState.DONE, NodeState.FAILED)
        )

    def ready_jobs(self, now: float) -> Iterator[JobNode]:
        """Dispatchable nodes, lowest sequence number first."""
        for seq in sorted(self.nodes):
            node = self.nodes[seq]
            if node.state == NodeState.READY and node.eligible_at <= now:
                yield node

    def running_jobs(self) -> List[JobNode]:
        return [
            self.nodes[seq]
            for seq in sorted(self.nodes)
            if self.nodes[seq].state == NodeState.RUNNING
        ]

    def next_wake(self, now: float) -> Optional[float]:
        """Earliest future moment a backoff or deadline needs service."""
        moments = [
            n.eligible_at
            for n in self.nodes.values()
            if n.state == NodeState.READY and n.eligible_at > now
        ]
        moments += [
            n.deadline
            for n in self.nodes.values()
            if n.state == NodeState.RUNNING and n.deadline is not None
        ]
        return min(moments) if moments else None

    # -- transitions ---------------------------------------------------------

    def mark_running(
        self, seq: int, *, worker: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> None:
        node = self.nodes[seq]
        node.state = NodeState.RUNNING
        node.worker = worker
        node.deadline = deadline

    def complete(self, seq: int) -> None:
        node = self.nodes[seq]
        node.state = NodeState.DONE
        node.worker = None
        node.deadline = None
        for dep_seq in self._dependents.get(seq, ()):
            dependent = self.nodes[dep_seq]
            if dependent.state != NodeState.PENDING:
                continue
            if all(
                self.nodes[d].state == NodeState.DONE for d in dependent.deps
            ):
                dependent.state = NodeState.READY

    def record_attempt(
        self, seq: int, *, now: float, worker: int, kind: str,
        detail: str, elapsed: float,
    ) -> Optional[JobFailure]:
        """Record a failed attempt; schedule a retry or fail the job.

        Returns the :class:`JobFailure` when the retry budget is spent
        (``None`` means a retry was scheduled). A permanent failure
        cascades to every transitive dependent.
        """
        node = self.nodes[seq]
        attempt = node.attempt_number
        backoff = 0.0
        if attempt < self.max_attempts:
            backoff = self.backoff_base * (2 ** (attempt - 1))
        node.attempts.append(
            AttemptRecord(
                attempt=attempt,
                worker=worker,
                kind=kind,
                detail=detail,
                elapsed_seconds=elapsed,
                backoff_seconds=backoff,
            )
        )
        node.worker = None
        node.deadline = None
        if attempt < self.max_attempts:
            node.state = NodeState.READY
            node.eligible_at = now + backoff
            return None
        return self._fail(node)

    def _fail(self, node: JobNode) -> JobFailure:
        node.state = NodeState.FAILED
        failure = JobFailure(spec=node.spec, attempts=list(node.attempts))
        self.failures.append(failure)
        self._cascade_dependency_failure(node.seq)
        return failure

    def _cascade_dependency_failure(self, seq: int) -> None:
        for dep_seq in self._dependents.get(seq, ()):
            dependent = self.nodes[dep_seq]
            if dependent.state in (NodeState.DONE, NodeState.FAILED):
                continue
            dependent.attempts.append(
                AttemptRecord(
                    attempt=dependent.attempt_number,
                    worker=-1,
                    kind="dependency",
                    detail=(
                        f"dependency {self.nodes[seq].spec.job_id} failed"
                    ),
                )
            )
            dependent.state = NodeState.FAILED
            self.failures.append(
                JobFailure(spec=dependent.spec, attempts=list(dependent.attempts))
            )
            self._cascade_dependency_failure(dep_seq)
