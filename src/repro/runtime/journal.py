"""Write-ahead run journal: crash-safe persistence of a benchmark run.

The paper's benchmark process (§2.3) runs for hours; PR 2 made *jobs*
fault-tolerant, but the harness process itself remained a single point
of failure — an OOM kill mid-run lost every completed result. The
journal removes that failure mode: under a **run directory**, an
append-only JSONL log records the run's identity (matrix hash, config,
seed) and one fsynced record per job transition, so after a crash
``graphalytics resume <run_dir>`` replays the log, marks completed jobs
done, and executes only the remainder — with the resumed database
bit-identical to an uninterrupted run (``ResultsDatabase.
canonical_json``).

Crash-consistency guarantees (see docs/robustness.md):

* every line carries a CRC-32 of its payload; a torn final write (the
  only tear an append-only log can suffer) fails the check and is
  truncated on recovery via an atomic rewrite — a corrupt line *before*
  intact ones is real corruption and raises :class:`JournalError`;
* a record is appended *and flushed* before its effect is assumed
  durable, so "journaled done" implies "survives SIGKILL" (the bytes
  are the kernel's); durability against power loss is group-committed
  — critical records fsync immediately, job completions at most once
  per commit interval and always on close;
* jobs are identified by :func:`job_key` — a SHA-256 digest of the
  canonical job spec, the same content-address style the graph cache
  uses — so resume matches jobs by identity, not by file position.

Record types (``"type"`` field): ``run-start``, ``job-scheduled``,
``attempt-start``, ``attempt-failed``, ``job-done``, ``job-failed``,
``serial-job`` (sequential :class:`~repro.harness.runner.
BenchmarkRunner` paths), and ``run-complete``.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import warnings
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.exceptions import GraphalyticsError
from repro.faults import points as fault_points
from repro.ioutil import atomic_write, fsync_directory
from repro.trace import Clock, current_tracer

__all__ = [
    "JOURNAL_VERSION",
    "JOURNAL_NAME",
    "JournalError",
    "job_key",
    "serial_job_key",
    "matrix_hash",
    "config_payload",
    "config_from_payload",
    "RunJournal",
    "JournalReplay",
]

JOURNAL_VERSION = 1
JOURNAL_NAME = "journal.jsonl"

#: Record types that are fully recoverable from matrix re-expansion —
#: losing a suffix of them merely makes resume re-run in-flight work,
#: which is its semantics anyway — so they never force an fsync. They
#: become durable with the next fsynced append: fsync flushes the whole
#: file, so after any durable append returns, everything before it is
#: on disk and the only at-risk bytes are a pure suffix (which torn-
#: tail recovery already handles).
RELAXED_TYPES = frozenset({"attempt-start", "job-scheduled"})

#: Record types fsynced immediately: rare, and they define the shape of
#: the run (its identity, its completion, a terminal failure).
CRITICAL_TYPES = frozenset({"run-start", "run-complete", "job-failed"})

#: fdatasync skips the metadata flush where the OS offers it; appends
#: only ever grow the file, so data + size reach disk either way.
_datasync = getattr(os, "fdatasync", os.fsync)


class JournalError(GraphalyticsError):
    """The journal is unreadable, corrupt mid-file, or mismatched."""


# -- identity -----------------------------------------------------------------

def job_key(spec) -> str:
    """Deterministic identity of one DAG job (content-address style).

    Everything the job's outcome depends on enters the digest; the
    matrix sequence number does not — identity survives re-expansion.
    """
    payload = json.dumps(
        {
            "kind": spec.kind,
            "dataset": spec.dataset,
            "algorithm": spec.algorithm,
            "platform": spec.platform,
            "run_index": spec.run_index,
            "machines": spec.machines,
            "threads": spec.threads,
            "seed": spec.seed,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def serial_job_key(
    platform: str,
    dataset: str,
    algorithm: str,
    *,
    machines: int,
    threads: Optional[int],
    run_index: int,
    seed: int,
) -> str:
    """Identity of one sequential ``BenchmarkRunner.run_job`` call."""
    payload = json.dumps(
        {
            "kind": "serial",
            "platform": platform.lower(),
            "dataset": dataset,
            "algorithm": algorithm.lower(),
            "machines": machines,
            "threads": threads,
            "run_index": run_index,
            "seed": seed,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def config_payload(config) -> Dict[str, object]:
    """JSON form of a :class:`~repro.harness.config.BenchmarkConfig`."""
    return {
        "platforms": list(config.platforms),
        "datasets": list(config.datasets),
        "algorithms": list(config.algorithms),
        "repetitions": config.repetitions,
        "seed": config.seed,
        "validate_outputs": config.validate_outputs,
        "sla_seconds": config.sla_seconds,
        "skip_impossible": config.skip_impossible,
        "partitions": config.partitions,
        "partition_strategy": config.partition_strategy,
        "resources": {
            "machines": config.resources.machines,
            "threads": config.resources.threads,
        },
    }


def config_from_payload(payload: Dict[str, object]):
    """Rebuild the :class:`BenchmarkConfig` a journal header recorded."""
    from repro.harness.config import BenchmarkConfig
    from repro.platforms.cluster import ClusterResources

    resources = payload.get("resources", {})
    return BenchmarkConfig(
        platforms=list(payload["platforms"]),
        datasets=list(payload["datasets"]),
        algorithms=list(payload["algorithms"]),
        resources=ClusterResources(
            machines=int(resources.get("machines", 1)),
            threads=resources.get("threads"),
        ),
        repetitions=int(payload["repetitions"]),
        seed=int(payload["seed"]),
        validate_outputs=bool(payload["validate_outputs"]),
        sla_seconds=float(payload["sla_seconds"]),
        skip_impossible=bool(payload["skip_impossible"]),
        # Passed through raw: BenchmarkConfig normalizes "auto"/ints and
        # rejects garbage, so submitted matrices share one validation path.
        partitions=payload.get("partitions"),
        partition_strategy=str(payload.get("partition_strategy", "hash")),
    )


def matrix_hash(config, specs: Sequence) -> str:
    """Digest of the full run identity: config plus every job's key.

    A resume against a journal whose hash differs is refused — the
    matrix the journal describes is not the matrix being run.
    """
    payload = json.dumps(
        {
            "config": config_payload(config),
            "jobs": [job_key(spec) for spec in specs],
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# -- line codec ---------------------------------------------------------------

def _encode_line(record: Dict[str, object]) -> bytes:
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {payload}\n".encode("utf-8")


def _decode_line(line: bytes) -> Optional[Dict[str, object]]:
    """The record, or ``None`` when the line fails its integrity check."""
    if not line.endswith(b"\n"):
        return None
    try:
        text = line[:-1].decode("utf-8")
        crc_hex, payload = text.split(" ", 1)
        if len(crc_hex) != 8:
            return None
        expected = int(crc_hex, 16)
    except (UnicodeDecodeError, ValueError):
        return None
    if zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF != expected:
        return None
    try:
        record = json.loads(payload)
    except json.JSONDecodeError:
        return None
    return record if isinstance(record, dict) else None


# -- replay -------------------------------------------------------------------

class JournalReplay:
    """Everything a journal file says happened, indexed for resume."""

    def __init__(self, header: Dict[str, object], records: List[Dict[str, object]],
                 *, truncated_bytes: int = 0):
        self.header = header
        self.records = records
        #: Bytes of torn tail dropped during recovery (0 = clean log).
        self.truncated_bytes = truncated_bytes
        #: job key -> completion payload (DAG jobs).
        self.completed: Dict[str, Dict[str, object]] = {}
        #: job key -> replayable attempt-failed records, in order.
        self.failed_attempts: Dict[str, List[Dict[str, object]]] = {}
        #: job key -> count of attempt-start records (chaos accounting).
        self.attempt_starts: Dict[str, int] = {}
        #: job key -> terminal job-failed record.
        self.failures: Dict[str, Dict[str, object]] = {}
        #: serial key -> FIFO of recorded result rows.
        self.serial_results: Dict[str, List[Dict[str, object]]] = {}
        self.run_completes = 0
        for record in records:
            kind = record.get("type")
            key = str(record.get("key", ""))
            if kind == "attempt-start":
                self.attempt_starts[key] = self.attempt_starts.get(key, 0) + 1
            elif kind == "job-done":
                self.completed[key] = record
            elif kind == "attempt-failed":
                self.failed_attempts.setdefault(key, []).append(record)
            elif kind == "job-failed":
                self.failures[key] = record
            elif kind == "serial-job":
                self.serial_results.setdefault(key, []).append(record)
            elif kind == "run-complete":
                self.run_completes += 1

    @property
    def complete(self) -> bool:
        return self.run_completes > 0

    def take_serial(self, key: str) -> Optional[Dict[str, object]]:
        """Pop the next recorded result for a sequential job, if any.

        FIFO per key: the nth call with an identity replays the nth
        recorded outcome, so a deterministic sequential body that runs
        the same workload twice replays both occurrences in order.
        """
        queue = self.serial_results.get(key)
        if not queue:
            return None
        return queue.pop(0)


# -- the journal --------------------------------------------------------------

class RunJournal:
    """Append-only, fsynced, CRC-guarded JSONL log under a run directory.

    Writers call :meth:`append` (or :meth:`append_many` for a batch with
    one fsync); every append is durable before it returns. Readers use
    :meth:`load` / :meth:`open`, which recover from a torn tail by
    atomically rewriting the good prefix.

    **Graceful degradation.** A benchmark run should not die because
    its *log* cannot grow. When the disk fills (ENOSPC on append) the
    journal disables itself — the run continues unjournaled, resume is
    off the table, and the ``journal-disabled`` flag rides the run
    result so nothing pretends otherwise. When a group-commit fsync
    fails (full or failing device) the journal drops to flushed-only
    durability — appends still reach the kernel; power-loss durability
    is gone — and flags ``journal-fsync-degraded``. Both paths warn
    once; both flags surface in ``outcome.json`` and the service's
    ``/v1/healthz``. A failed fsync is *not* retried in place: the
    kernel may already have dropped the dirty pages, so a later
    "successful" fsync would prove nothing (the classic fsyncgate
    trap).
    """

    #: Group-commit window: completed-job records are flushed (durable
    #: against process death) immediately, but fsynced (durable against
    #: power loss) at most once per interval — the classic WAL trade:
    #: bounded power-loss exposure instead of one fsync per record,
    #: whose cost on a busy filesystem dwarfs the jobs themselves.
    COMMIT_INTERVAL = 0.25

    def __init__(self, path: Union[str, Path], *, durable: bool = True,
                 commit_interval: Optional[float] = None,
                 clock: Optional[Clock] = None):
        self.path = Path(path)
        self.durable = durable
        self.commit_interval = (
            self.COMMIT_INTERVAL if commit_interval is None else commit_interval
        )
        #: Group-commit timing authority; defaults to the tracer clock so
        #: journaled runs under a fake clock stay deterministic.
        self.clock = clock or current_tracer().clock
        self._handle = None
        self._dirty = False       # flushed records awaiting an fsync
        self._last_sync = 0.0
        #: Degradation flags accumulated this session, in order
        #: ("journal-fsync-degraded", "journal-disabled").
        self.degraded: List[str] = []
        self._disabled = False

    # -- construction ------------------------------------------------------

    @classmethod
    def journal_path(cls, run_dir: Union[str, Path]) -> Path:
        return Path(run_dir) / JOURNAL_NAME

    @classmethod
    def create(
        cls,
        run_dir: Union[str, Path],
        header: Dict[str, object],
        *,
        durable: bool = True,
    ) -> "RunJournal":
        """Start a fresh journal; refuses to clobber an existing one."""
        path = cls.journal_path(run_dir)
        if path.exists():
            raise JournalError(
                f"{path} already exists; resume it or choose a fresh run dir"
            )
        path.parent.mkdir(parents=True, exist_ok=True)
        journal = cls(path, durable=durable)
        journal.append({**header, "type": "run-start",
                        "version": JOURNAL_VERSION})
        return journal

    @classmethod
    def load(cls, run_dir: Union[str, Path]) -> JournalReplay:
        """Replay a journal, recovering from a torn final write."""
        path = cls.journal_path(run_dir)
        if not path.exists():
            raise JournalError(f"no {JOURNAL_NAME} under {Path(run_dir)}")
        raw = path.read_bytes()
        records: List[Dict[str, object]] = []
        offset = 0
        good_end = 0
        truncated = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            chunk = raw[offset: len(raw) if newline < 0 else newline + 1]
            record = _decode_line(chunk)
            if record is None:
                # Only the *tail* may be torn; anything valid after an
                # invalid line means the file was damaged, not cut short.
                rest = raw[offset:]
                if any(
                    _decode_line(line + b"\n") is not None
                    for line in rest.split(b"\n")[1:]
                ):
                    raise JournalError(
                        f"{path} is corrupt at byte {offset} (not a torn "
                        f"tail); refusing to guess at run state"
                    )
                truncated = len(raw) - good_end
                break
            records.append(record)
            offset = good_end = offset + len(chunk)
        if truncated:
            atomic_write(path, raw[:good_end])
        if not records or records[0].get("type") != "run-start":
            raise JournalError(f"{path} has no run-start header")
        header = records[0]
        if header.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"{path} has journal version {header.get('version')!r}; "
                f"this build reads version {JOURNAL_VERSION}"
            )
        return JournalReplay(header, records[1:], truncated_bytes=truncated)

    @classmethod
    def open(cls, run_dir: Union[str, Path], *, durable: bool = True) -> "RunJournal":
        """An appendable journal positioned after the recovered tail."""
        cls.load(run_dir)  # validates and truncates any torn tail
        return cls(cls.journal_path(run_dir), durable=durable)

    # -- writing -----------------------------------------------------------

    def _ensure_handle(self):
        if self._handle is None:
            self._handle = open(self.path, "ab")
        return self._handle

    def append(self, record: Dict[str, object]) -> None:
        """Append one record; durable against SIGKILL when it returns."""
        self.append_many([record])

    def append_many(self, records: Sequence[Dict[str, object]]) -> None:
        """Append a batch of records, flushed before returning.

        The flush makes every record durable against *process* death
        (the bytes are the kernel's once it returns). Durability
        against *power loss* is tiered by record type:
        :data:`CRITICAL_TYPES` fsync immediately; :data:`RELAXED_TYPES`
        never force one (they are recoverable by re-expansion); job
        completions group-commit — fsynced at most once per
        ``commit_interval``, and always by :meth:`close`. Any fsync
        covers every record before it, so the at-risk bytes are always
        a pure suffix, which torn-tail recovery handles.
        """
        if not records or self._disabled:
            return
        handle = self._ensure_handle()
        try:
            for record in records:
                fault_points.write_through(
                    "journal.append.write", handle, _encode_line(record)
                )
        except OSError as exc:
            if exc.errno == errno.ENOSPC:
                # Full disk: every line written so far is intact (the
                # failed line never hit the handle), so the log stays
                # parseable — it just stops here.
                self._degrade("journal-disabled", exc)
                return
            raise
        current_tracer().counter("journal.append", len(records))
        kinds = {record.get("type") for record in records}
        if not (kinds - RELAXED_TYPES):
            return  # loss-tolerant: the next flush carries them along
        handle.flush()
        if not self.durable:
            return
        self._dirty = True
        now = self.clock.now()
        if self._dirty and (
            kinds & CRITICAL_TYPES
            or now - self._last_sync >= self.commit_interval
        ):
            self._datasync_degrading(handle)

    def _datasync_degrading(self, handle) -> None:
        """One group-commit fsync; a failure downgrades the tier."""
        try:
            fault_points.check("journal.append.fsync")
            _datasync(handle.fileno())
        except OSError as exc:
            self._degrade("journal-fsync-degraded", exc)
            return
        current_tracer().counter("journal.fsync")
        self._dirty = False
        self._last_sync = self.clock.now()

    def _degrade(self, flag: str, exc: OSError) -> None:
        """Downgrade the durability tier instead of killing the run."""
        if flag == "journal-disabled":
            self._disabled = True
            if self._handle is not None:
                try:
                    self._handle.flush()  # hand the intact prefix over
                except OSError:
                    pass
        # Either way, stop fsyncing: after a failed fsync the kernel
        # may have dropped the dirty pages, and on a full disk the
        # flushes themselves are suspect.
        self.durable = False
        self._dirty = False
        if flag not in self.degraded:
            self.degraded.append(flag)
            current_tracer().counter("journal.degraded")
            warnings.warn(
                f"run journal degraded ({flag}): {exc}; the run "
                f"continues with reduced durability",
                RuntimeWarning,
                stacklevel=4,
            )

    def sync(self) -> None:
        """Force any pending group-commit records to disk."""
        if self._handle is not None and self._dirty:
            self._handle.flush()
            self._datasync_degrading(self._handle)

    def close(self) -> None:
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None
            if self.durable:
                fsync_directory(self.path.parent)

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
