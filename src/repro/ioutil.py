"""Crash-safe file persistence: the one `atomic_write` everything uses.

A benchmark run is only as durable as its artifacts. A plain
``open(path, "w")`` that dies mid-write — OOM kill, SIGKILL, power loss
— leaves a truncated, unparseable file where a valid one used to be,
which for a results database means the whole run is lost (exactly the
failure mode the paper's multi-hour robustness experiments, §2.3/§4.6,
cannot afford). :func:`atomic_write` gives every writer the standard
crash-consistency recipe instead:

1. write the full payload to a temporary file *in the same directory*
   (same filesystem, so the final rename cannot degrade to a copy);
2. flush and ``fsync`` the temp file, so the bytes are on disk before
   the name is;
3. ``os.replace`` it over the destination — atomic on POSIX and
   Windows, so readers observe either the old complete file or the new
   complete file, never a mixture;
4. best-effort ``fsync`` of the containing directory, so the rename
   itself survives a crash.

Lint rule ROB001 enforces statically that run-artifact writers in
``harness``, ``runtime``, ``granula``, and ``lint`` go through this
helper rather than bare ``open(..., "w")`` / ``write_text``; ROB002
extends the same discipline to service and runtime spool writers.

Every write is threaded through the named fault points of
:mod:`repro.faults.points` (``ioutil.atomic_write.write`` / ``.fsync``
/ ``.replace``), so chaos plans can fail the payload write, the flush,
or the rename independently — and because the failure always lands on
the temp file or the rename, an injected fault never tears the
destination: the atomicity contract is exactly what the fault suite
verifies. Callers guarding a domain artifact (spool records, cache
spill) pass ``fault_point=`` to expose a site-specific point that fires
before any bytes move.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.faults import points as fault_points

__all__ = ["atomic_write", "fsync_directory"]


def fsync_directory(directory: Union[str, Path]) -> None:
    """Flush a directory's entries to disk (best-effort, POSIX only).

    After ``os.replace`` the *file* is durable but the directory entry
    pointing at it may not be; syncing the directory closes that window.
    Platforms that cannot open directories simply skip it.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write(
    path: Union[str, Path],
    data: Union[str, bytes],
    *,
    encoding: str = "utf-8",
    durable: bool = True,
    fault_point: Optional[str] = None,
) -> Path:
    """Write ``data`` to ``path`` atomically; returns the path.

    The destination either keeps its previous content or holds the new
    content in full — a crash at any point never leaves a torn file.
    ``durable=False`` skips the fsyncs (for tests and scratch output
    where atomicity matters but the extra flushes do not).
    ``fault_point`` names an additional registered injection point
    checked before any bytes are written, so chaos plans can target
    one artifact (the spool outcome, the cache spill) without failing
    every atomic write in the process.
    """
    path = Path(path)
    if fault_point is not None:
        fault_points.check(fault_point)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = data.encode(encoding) if isinstance(data, str) else data
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            fault_points.write_through(
                "ioutil.atomic_write.write", handle, payload
            )
            handle.flush()
            if durable:
                fault_points.check("ioutil.atomic_write.fsync")
                os.fsync(handle.fileno())
        fault_points.check("ioutil.atomic_write.replace")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if durable:
        fsync_directory(path.parent)
    return path
