"""Crash-safe file persistence: the one `atomic_write` everything uses.

A benchmark run is only as durable as its artifacts. A plain
``open(path, "w")`` that dies mid-write — OOM kill, SIGKILL, power loss
— leaves a truncated, unparseable file where a valid one used to be,
which for a results database means the whole run is lost (exactly the
failure mode the paper's multi-hour robustness experiments, §2.3/§4.6,
cannot afford). :func:`atomic_write` gives every writer the standard
crash-consistency recipe instead:

1. write the full payload to a temporary file *in the same directory*
   (same filesystem, so the final rename cannot degrade to a copy);
2. flush and ``fsync`` the temp file, so the bytes are on disk before
   the name is;
3. ``os.replace`` it over the destination — atomic on POSIX and
   Windows, so readers observe either the old complete file or the new
   complete file, never a mixture;
4. best-effort ``fsync`` of the containing directory, so the rename
   itself survives a crash.

Lint rule ROB001 enforces statically that run-artifact writers in
``harness``, ``runtime``, ``granula``, and ``lint`` go through this
helper rather than bare ``open(..., "w")`` / ``write_text``.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union

__all__ = ["atomic_write", "fsync_directory"]


def fsync_directory(directory: Union[str, Path]) -> None:
    """Flush a directory's entries to disk (best-effort, POSIX only).

    After ``os.replace`` the *file* is durable but the directory entry
    pointing at it may not be; syncing the directory closes that window.
    Platforms that cannot open directories simply skip it.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write(
    path: Union[str, Path],
    data: Union[str, bytes],
    *,
    encoding: str = "utf-8",
    durable: bool = True,
) -> Path:
    """Write ``data`` to ``path`` atomically; returns the path.

    The destination either keeps its previous content or holds the new
    content in full — a crash at any point never leaves a torn file.
    ``durable=False`` skips the fsyncs (for tests and scratch output
    where atomicity matters but the extra flushes do not).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = data.encode(encoding) if isinstance(data, str) else data
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            if durable:
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if durable:
        fsync_directory(path.parent)
    return path
