"""The lint walker core: findings, rules, suppressions, and the engine.

The benchmark's validity rests on invariants the test suite cannot see
— determinism of the six kernels, the Pregel/GAS state contract, the
driver lifecycle, metered reporting. :mod:`repro.lint` enforces them
statically: every rule is an AST pass over the repro sources, producing
:class:`Finding` records that the CLI diffs against a committed
baseline (see :mod:`repro.lint.baseline`).

Design:

* a rule subclasses :class:`Rule` and registers itself with
  :func:`register_rule`; it receives one parsed :class:`Module` at a
  time and yields findings;
* rules declare a *scope* — path segments (``algorithms``, ``engines``,
  ...) the rule applies to — so kernel-only invariants do not fire on
  the CLI; scopes are overridable from ``pyproject.toml``;
* ``# lint: disable=DET001`` comments (same line, or a standalone
  comment on the line above) suppress findings at the source; a
  directive on the first line of a multi-line statement (or on a
  decorator) covers the statement's full span;
* the engine runs in **two phases**: phase 1 parses every file once
  and builds a whole-program :class:`~repro.lint.project.ProjectModel`
  (symbol tables, import graph, approximate call graph, mutable-state
  inventory); phase 2 hands each :class:`Module` to the per-file
  :meth:`Rule.check` pass and the assembled project to each rule's
  :meth:`Rule.check_project` pass, so rules can be purely syntactic,
  purely interprocedural, or both.
"""

from __future__ import annotations

import ast
import re
from collections import Counter
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.project import ProjectModel

from repro.exceptions import ConfigurationError

__all__ = [
    "Severity",
    "Finding",
    "Module",
    "Rule",
    "register_rule",
    "all_rules",
    "get_rule",
    "LintEngine",
]


class Severity:
    """Finding severities, ordered: error > warning > info."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    _ORDER = {ERROR: 0, WARNING: 1, INFO: 2}

    @classmethod
    def rank(cls, severity: str) -> int:
        return cls._ORDER.get(severity, 99)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: str
    path: str          # project-relative posix path
    line: int
    col: int
    message: str
    symbol: str = ""   # enclosing function/class, for stable fingerprints
    #: Occurrence index among identical (rule, path, symbol, message)
    #: findings, assigned in source order by the engine. Without it,
    #: two identical findings in the same function would share one
    #: baseline fingerprint — and fixing one would silently hide the
    #: other behind the survivor's budget.
    occurrence: int = 0

    @property
    def fingerprint(self) -> str:
        """Baseline identity: stable across unrelated line drift."""
        return (
            f"{self.rule_id}::{self.path}::{self.symbol}::{self.message}"
            f"::{self.occurrence}"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
            "occurrence": self.occurrence,
        }


#: ``# lint: disable=DET001`` or ``# lint: disable=DET001,CON002`` or
#: ``# lint: disable`` (every rule).
_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*disable(?:=(?P<rules>[A-Z0-9, ]+))?", re.ASCII
)


def _parse_suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Line -> suppressed rule ids (``None`` means all rules).

    A directive on a code line covers that line; a directive on a
    standalone comment line covers the following line as well.
    """
    suppressed: Dict[int, Optional[Set[str]]] = {}

    def merge(lineno: int, rules: Optional[Set[str]]) -> None:
        current = suppressed.get(lineno, set())
        if rules is None or current is None:
            suppressed[lineno] = None
        else:
            suppressed[lineno] = set(current) | rules

    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        spec = match.group("rules")
        rules = (
            None
            if spec is None
            else {r.strip() for r in spec.split(",") if r.strip()}
        )
        merge(lineno, rules)
        if text.lstrip().startswith("#"):  # standalone comment: covers next line
            merge(lineno + 1, rules)
    return suppressed


class Module:
    """One parsed source file, shared by every rule.

    Attributes rules rely on:

    * ``tree`` — the AST, with ``.parent`` links on every node;
    * ``segments`` — path parts of the project-relative path (used for
      rule scoping, e.g. ``("src", "repro", "engines", "pregel.py")``);
    * ``stem`` — module basename without extension.
    """

    def __init__(self, path: Path, rel_path: str, source: str):
        self.path = path
        self.rel_path = rel_path
        self.segments: Tuple[str, ...] = tuple(Path(rel_path).parts)
        self.stem = Path(rel_path).stem
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                child.parent = node  # type: ignore[attr-defined]
        self.suppressions = _parse_suppressions(source)
        self._extend_suppressions_to_statement_spans()

    def _extend_suppressions_to_statement_spans(self) -> None:
        """A directive on a statement's first line (or on one of its
        decorators) covers the statement's full ``lineno..end_lineno``
        span — a multi-line call, a decorated ``def``, a ``with`` block.
        Without this, suppressing a finding that a rule reports two
        lines into the statement required knowing the rule's exact
        anchor line."""
        extensions: List[Tuple[int, int, Optional[Set[str]]]] = []
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.stmt):
                continue
            end = getattr(node, "end_lineno", None) or node.lineno
            if end <= node.lineno:
                continue
            heads = [node.lineno]
            heads += [
                d.lineno for d in getattr(node, "decorator_list", []) or []
            ]
            specs = [
                self.suppressions[line]
                for line in heads
                if line in self.suppressions
            ]
            if not specs:
                continue
            if any(spec is None for spec in specs):
                merged: Optional[Set[str]] = None
            else:
                merged = set().union(*specs)
            extensions.append((node.lineno, end, merged))
        for start, end, rules in extensions:
            for line in range(start, end + 1):
                current = self.suppressions.get(line, set())
                if rules is None or current is None:
                    self.suppressions[line] = None
                else:
                    self.suppressions[line] = set(current) | rules

    # -- helpers for rules -------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return getattr(node, "parent", None)

    def enclosing_function(self, node: ast.AST) -> str:
        """Dotted name of the enclosing def/class chain (may be '')."""
        names: List[str] = []
        current = self.parent(node)
        while current is not None:
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                names.append(current.name)
            current = self.parent(current)
        return ".".join(reversed(names))

    def finding(
        self, rule: "Rule", node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule_id=rule.rule_id,
            severity=rule.severity,
            path=self.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            symbol=self.enclosing_function(node),
        )

    def is_suppressed(self, finding: Finding) -> bool:
        if finding.line not in self.suppressions:
            return False
        rules = self.suppressions[finding.line]
        return rules is None or finding.rule_id in rules


class Rule:
    """Base class: one statically checkable benchmark invariant.

    Subclasses set ``rule_id``, ``severity``, ``description``, and an
    optional ``scope`` (path segments the rule fires in; ``None`` means
    everywhere), then implement :meth:`check`, :meth:`check_project`,
    or both. ``check`` sees one file at a time (phase 2a, the original
    API); ``check_project`` sees the assembled
    :class:`~repro.lint.project.ProjectModel` once per run (phase 2b)
    and is where interprocedural rules live — it runs only when the
    engine linted more than a lone snippet with the project phase
    enabled.
    """

    rule_id: str = ""
    severity: str = Severity.WARNING
    description: str = ""
    #: Path segments (directory or module names) this rule applies to.
    scope: Optional[Tuple[str, ...]] = None

    def applies_to(self, module: Module, scope: Optional[Sequence[str]]) -> bool:
        effective = tuple(scope) if scope is not None else self.scope
        if not effective:
            return True
        names = set(module.segments) | {module.stem}
        return any(part in names for part in effective)

    def check(self, module: Module) -> Iterator[Finding]:
        """Per-file pass; the default checks nothing."""
        return iter(())

    def check_project(self, project: "ProjectModel") -> Iterator[Finding]:
        """Whole-program pass; the default checks nothing."""
        return iter(())

    def project_finding(
        self, module: Module, node: ast.AST, message: str
    ) -> Finding:
        """A finding emitted from :meth:`check_project`, anchored to a
        node of one of the project's modules."""
        return module.finding(self, node, message)


_REGISTRY: Dict[str, Rule] = {}


def register_rule(cls):
    """Class decorator: instantiate and index a rule by its id."""
    rule = cls()
    if not rule.rule_id:
        raise ConfigurationError(f"rule {cls.__name__} has no rule_id")
    if rule.rule_id in _REGISTRY:
        raise ConfigurationError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return cls


def _load_builtin_rules() -> None:
    # Importing the package registers every built-in rule exactly once.
    from repro.lint import rules  # noqa: F401


def all_rules() -> Dict[str, Rule]:
    """Every registered rule, id -> instance (loads built-ins)."""
    _load_builtin_rules()
    return dict(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    _load_builtin_rules()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise ConfigurationError(f"unknown lint rule {rule_id!r}") from None


# -- shared AST helpers (used by the rule modules) ---------------------------

def call_name(node: ast.AST) -> str:
    """Dotted name of a call target: ``np.random.default_rng`` etc."""
    if isinstance(node, ast.Call):
        node = node.func
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def names_in(node: ast.AST) -> Set[str]:
    """All identifier fragments (names and attributes) under a node."""
    found: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            found.add(child.id)
        elif isinstance(child, ast.Attribute):
            found.add(child.attr)
    return found


class LintEngine:
    """Parses files and runs every enabled, in-scope rule over them."""

    def __init__(self, config=None):
        from repro.lint.config import LintConfig

        self.config = config or LintConfig()
        rules = all_rules()
        selected = self.config.select or sorted(rules)
        unknown = [r for r in selected if r not in rules]
        unknown += [r for r in self.config.ignore if r not in rules]
        if unknown:
            raise ConfigurationError(f"unknown lint rules: {sorted(set(unknown))}")
        self.rules: List[Rule] = [
            rules[rule_id]
            for rule_id in sorted(selected)
            if rule_id not in self.config.ignore
        ]

    # -- file collection ---------------------------------------------------

    def collect_files(self, paths: Sequence[Path]) -> List[Path]:
        files: List[Path] = []
        for path in paths:
            path = Path(path)
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            elif path.suffix == ".py":
                files.append(path)
        result = []
        for f in files:
            rel = self._rel_path(f)
            if any(
                Path(rel).match(pattern) for pattern in self.config.exclude
            ):
                continue
            result.append(f)
        return result

    def _rel_path(self, path: Path) -> str:
        path = Path(path).resolve()
        root = self.config.root
        if root is not None:
            try:
                return path.relative_to(Path(root).resolve()).as_posix()
            except ValueError:
                pass
        try:
            return path.relative_to(Path.cwd()).as_posix()
        except ValueError:
            return path.as_posix()

    # -- running -----------------------------------------------------------

    def _parse_module(self, path: Path):
        """(Module, None) on success, (None, SYNTAX finding) otherwise."""
        path = Path(path)
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(f"cannot read {path}: {exc}") from exc
        rel = self._rel_path(path)
        try:
            return Module(path, rel, source), None
        except SyntaxError as exc:
            return None, Finding(
                rule_id="SYNTAX",
                severity=Severity.ERROR,
                path=rel,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}",
            )

    def _module_findings(self, module: Module) -> List[Finding]:
        """Phase-2a findings: every per-file rule over one module."""
        findings: List[Finding] = []
        for rule in self.rules:
            scope_override = self.config.scopes.get(rule.rule_id)
            if not rule.applies_to(module, scope_override):
                continue
            for finding in rule.check(module):
                if not module.is_suppressed(finding):
                    findings.append(finding)
        return findings

    def _project_findings(self, modules: List[Module]) -> List[Finding]:
        """Phase 1 + 2b: build the project model, run project rules."""
        from repro.lint.project import ProjectModel

        project = ProjectModel.build(modules, scope_overrides=self.config.scopes)
        findings: List[Finding] = []
        for rule in self.rules:
            for finding in rule.check_project(project):
                module = project.module_for_path(finding.path)
                if module is None or not module.is_suppressed(finding):
                    findings.append(finding)
        return findings

    @staticmethod
    def _finalize(findings: List[Finding]) -> List[Finding]:
        """Sort, then assign occurrence indices in source order so
        identical findings get distinct baseline fingerprints."""
        findings.sort(
            key=lambda f: (f.path, f.line, f.col, f.rule_id, f.message)
        )
        seen: Counter = Counter()
        out: List[Finding] = []
        for finding in findings:
            key = (finding.rule_id, finding.path, finding.symbol, finding.message)
            out.append(replace(finding, occurrence=seen[key]))
            seen[key] += 1
        return out

    def lint_file(self, path: Path) -> List[Finding]:
        """Per-file rules over one file (no whole-program phase)."""
        module, syntax_finding = self._parse_module(path)
        if module is None:
            return [syntax_finding]
        return self._finalize(self._module_findings(module))

    def run(self, paths: Sequence[Path]) -> List[Finding]:
        """Lint every python file under the given paths, sorted.

        Phase 1 parses every file and (unless ``config.project`` is
        off) assembles the whole-program model; phase 2 runs per-file
        rules on each module and project rules on the model.
        """
        findings: List[Finding] = []
        modules: List[Module] = []
        for path in self.collect_files([Path(p) for p in paths]):
            module, syntax_finding = self._parse_module(path)
            if module is None:
                findings.append(syntax_finding)
                continue
            modules.append(module)
            findings.extend(self._module_findings(module))
        if modules and getattr(self.config, "project", True):
            findings.extend(self._project_findings(modules))
        return self._finalize(findings)
