"""Lint configuration, read from ``[tool.graphalytics.lint]``.

``pyproject.toml`` keys (all optional)::

    [tool.graphalytics.lint]
    baseline = "lint-baseline.json"   # relative to the project root
    select   = ["DET001", "DET002"]   # empty/absent = every rule
    ignore   = ["REP001"]
    exclude  = ["tests/*"]            # glob patterns on relative paths

    [tool.graphalytics.lint.scopes]
    DET001 = ["algorithms", "engines"]  # override a rule's scope

The reader uses :mod:`tomllib` on Python >= 3.11 and falls back to a
minimal parser (string/list-of-string keys only, which is all this
section uses) on older interpreters, keeping the linter dependency-free.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

__all__ = ["LintConfig", "load_config", "find_project_root"]


@dataclass
class LintConfig:
    """Resolved lint settings for one run."""

    root: Optional[Path] = None          # project root (baseline anchor)
    baseline: str = "lint-baseline.json"
    select: List[str] = field(default_factory=list)   # empty = all rules
    ignore: List[str] = field(default_factory=list)
    exclude: List[str] = field(default_factory=list)
    scopes: Dict[str, List[str]] = field(default_factory=dict)
    #: Whether to build the whole-program ProjectModel and run the
    #: interprocedural (check_project) phase. Off = per-file rules only.
    project: bool = True

    @property
    def baseline_path(self) -> Optional[Path]:
        if not self.baseline:
            return None
        path = Path(self.baseline)
        if not path.is_absolute() and self.root is not None:
            path = Path(self.root) / path
        return path


def find_project_root(start: Optional[Path] = None) -> Optional[Path]:
    """Nearest ancestor (of start or cwd) containing ``pyproject.toml``."""
    current = Path(start or Path.cwd()).resolve()
    if current.is_file():
        current = current.parent
    for candidate in [current, *current.parents]:
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return None


def _parse_toml(text: str) -> Dict[str, Dict[str, object]]:
    try:
        import tomllib

        return tomllib.loads(text)
    except ModuleNotFoundError:  # pragma: no cover - Python < 3.11
        return _parse_toml_minimal(text)


_SECTION_RE = re.compile(r"^\s*\[(?P<name>[^\]]+)\]\s*$")
_KEY_RE = re.compile(r"^\s*(?P<key>[A-Za-z0-9_\-\"']+)\s*=\s*(?P<value>.+?)\s*$")


def _parse_toml_minimal(text: str) -> Dict[str, object]:
    """Tiny TOML subset: [sections], string and [list-of-string] values.

    Only used on interpreters without :mod:`tomllib`; sufficient for the
    ``[tool.graphalytics.lint]`` table this module consumes.
    """
    result: Dict[str, object] = {}
    table: Dict[str, object] = result
    for raw in text.splitlines():
        line = raw.split("#", 1)[0] if not raw.lstrip().startswith("#") else ""
        if not line.strip():
            continue
        section = _SECTION_RE.match(line)
        if section:
            table = result
            for part in section.group("name").split("."):
                table = table.setdefault(part.strip().strip('"'), {})  # type: ignore[assignment]
            continue
        pair = _KEY_RE.match(line)
        if not pair:
            continue
        key = pair.group("key").strip('"').strip("'")
        value = pair.group("value")
        if value.startswith("["):
            items = re.findall(r"\"([^\"]*)\"|'([^']*)'", value)
            table[key] = [a or b for a, b in items]
        elif value.startswith(("\"", "'")):
            table[key] = value[1:-1]
        elif value in ("true", "false"):
            table[key] = value == "true"
        else:
            try:
                table[key] = int(value)
            except ValueError:
                table[key] = value
    return result


def load_config(start: Optional[Path] = None) -> LintConfig:
    """Read lint settings from the nearest ``pyproject.toml``.

    Returns defaults (no baseline anchor) when no project root exists —
    the engine still runs, just without a baseline or scope overrides.
    """
    root = find_project_root(start)
    if root is None:
        return LintConfig()
    data = _parse_toml((root / "pyproject.toml").read_text(encoding="utf-8"))
    section = (
        data.get("tool", {}).get("graphalytics", {}).get("lint", {})
        if isinstance(data.get("tool", {}), dict)
        else {}
    )
    scopes_raw = section.get("scopes", {})
    scopes = {
        str(rule): [str(s) for s in seg]
        for rule, seg in scopes_raw.items()
        if isinstance(seg, (list, tuple))
    }
    return LintConfig(
        root=root,
        baseline=str(section.get("baseline", "lint-baseline.json")),
        select=[str(r) for r in section.get("select", [])],
        ignore=[str(r) for r in section.get("ignore", [])],
        exclude=[str(p) for p in section.get("exclude", [])],
        scopes=scopes,
        project=bool(section.get("project", True)),
    )
