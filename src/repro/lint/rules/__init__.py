"""Built-in rule set; importing this package registers every rule.

===========  ========  ====================================================
rule id      severity  invariant
===========  ========  ====================================================
``DET001``   error     no unordered set/dict iteration in kernels/engines
``DET002``   error     every RNG takes an explicit seed
``DET003``   warning   no float accumulation over unordered iterables
``CON001``   error     vertex programs respect the Pregel/GAS state contract
``CON002``   error     drivers execute through the PlatformDriver lifecycle
``EXC001``   warning   no broad except swallowing benchmark failures
``RUN001``   error     runtime entrypoints convert exceptions into records
``ROB001``   error     run artifacts are written via ``atomic_write``
``ROB002``   error     service/runtime writes ride the fault-point plane
``ROB003``   error     ``sqlite3.connect`` only inside ``repro.resultsdb``
``REG001``   error     algorithm registry ↔ validation/experiment wiring
``REP001``   warning   reporters emit metered numbers via harness.metrics
``OBS001``   error     timing goes through the ``repro.trace`` clock
``RACE001``  error     worker-reachable code never mutates module globals
``RACE002``  error     job payloads / Pipe sends carry plain picklable data
``RACE003``  warning   no import-time fork-unsafe resources used in workers
``SRV001``   error     async request handlers never block the event loop
===========  ========  ====================================================

See ``docs/lint.md`` for rationale and suppression syntax.
"""

from repro.lint.rules.determinism import (  # noqa: F401
    UnorderedAccumulationRule,
    UnorderedIterationRule,
    UnseededRngRule,
)
from repro.lint.rules.contracts import (  # noqa: F401
    DriverBypassRule,
    VertexProgramStateRule,
)
from repro.lint.rules.robustness import (  # noqa: F401
    AtomicArtifactWriteRule,
    FaultPointRoutedWriteRule,
    RuntimeFailureRecordRule,
    SanctionedSqliteConnectRule,
    SwallowedExceptionRule,
)
from repro.lint.rules.consistency import RegistryConsistencyRule  # noqa: F401
from repro.lint.rules.observability import BareClockCallRule  # noqa: F401
from repro.lint.rules.reporting import UnmeteredRateRule  # noqa: F401
from repro.lint.rules.concurrency import (  # noqa: F401
    ForkUnsafeImportResourceRule,
    UnpicklablePayloadRule,
    WorkerGlobalMutationRule,
)
from repro.lint.rules.service import AsyncHandlerBlockingCallRule  # noqa: F401

__all__ = [
    "UnorderedIterationRule",
    "UnseededRngRule",
    "UnorderedAccumulationRule",
    "VertexProgramStateRule",
    "DriverBypassRule",
    "SwallowedExceptionRule",
    "RuntimeFailureRecordRule",
    "AtomicArtifactWriteRule",
    "FaultPointRoutedWriteRule",
    "SanctionedSqliteConnectRule",
    "RegistryConsistencyRule",
    "UnmeteredRateRule",
    "BareClockCallRule",
    "WorkerGlobalMutationRule",
    "UnpicklablePayloadRule",
    "ForkUnsafeImportResourceRule",
    "AsyncHandlerBlockingCallRule",
]
