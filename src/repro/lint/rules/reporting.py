"""Metered reporting: REP001.

Paper §2.3 defines the benchmark metrics (Tproc, EPS, EVPS, speedup,
CV) once, and :mod:`repro.harness.metrics` is their single
implementation — with input validation and the exact paper definitions.
A reporter or figure renderer that recomputes a rate inline (dividing
edge counts by seconds itself) emits *unmetered* numbers that can drift
from the published definitions.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, Module, Rule, Severity, names_in, register_rule

__all__ = ["UnmeteredRateRule"]

#: Modules whose job is presenting results.
_REPORTER_STEMS = {"report", "figures", "visualizer"}

#: Identifier fragments that mean "element counts" (rate numerators).
_ELEMENT_TOKENS = {"num_edges", "num_vertices", "edges", "vertices", "elements"}

#: Identifier fragments that mean "measured/modeled time" (denominators).
_TIME_TOKENS = {
    "tproc", "processing_time", "processing_seconds", "makespan",
    "seconds", "upload_time",
}


@register_rule
class UnmeteredRateRule(Rule):
    """REP001: reporters computing rates outside harness.metrics.

    Dividing element counts by measured time inside a reporter bypasses
    :func:`repro.harness.metrics.edges_per_second` /
    :func:`~repro.harness.metrics.edges_and_vertices_per_second` — the
    metered, validated implementations of the paper's §2.3 metrics.
    Compute the rate in the harness and pass it to the reporter.
    """

    rule_id = "REP001"
    severity = Severity.WARNING
    description = "reporter computes a rate inline instead of via harness.metrics"
    scope = ("harness", "granula")

    def check(self, module: Module) -> Iterator[Finding]:
        if module.stem not in _REPORTER_STEMS:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.BinOp) or not isinstance(
                node.op, (ast.Div, ast.FloorDiv)
            ):
                continue
            numerator = {n.lower() for n in names_in(node.left)}
            denominator = {n.lower() for n in names_in(node.right)}
            if (numerator & _ELEMENT_TOKENS) and (denominator & _TIME_TOKENS):
                yield module.finding(
                    self, node,
                    "inline rate (elements / time) in a reporter; use "
                    "repro.harness.metrics (edges_per_second / "
                    "edges_and_vertices_per_second) so reported numbers "
                    "stay metered",
                )
