"""Service-layer rules: the SRV family.

The benchmark service runs every request handler on one asyncio event
loop. A single blocking call inside a handler stalls *every* tenant at
once — submissions, SSE streams, artifact downloads — which silently
breaks the fairness property the queue exists to provide. The failure
is invisible to the test suite at small scale (a 10 ms blocking read
passes every assertion) and catastrophic under load, which is exactly
the profile static enforcement is for.

**SRV001** walks the async request handlers registered through the
service's route table (``_add_route`` — a call-graph *handler
entrypoint*, see :mod:`repro.lint.project`) plus every ``async def``
reachable from them, and flags the blocking idioms the codebase
actually has to offer:

* ``time.sleep(...)`` — stalls the loop outright (``asyncio.sleep`` is
  the async form);
* builtin ``open(...)`` / un-awaited ``.read()`` / ``.readlines()`` —
  synchronous, unbounded file IO on the loop thread; push it through
  ``asyncio.to_thread`` instead;
* un-awaited no-argument ``.join()`` — a thread/process/pool join that
  parks the loop until some other process exits (``str.join`` always
  takes an argument, so the no-argument shape is unambiguous).

Calls inside ``await`` expressions are exempt (an awaited
``reader.read()`` is the *non*-blocking stream API), as are nested
``def``\\ s inside handlers — those are thunks handed to
``asyncio.to_thread``, which is the sanctioned escape hatch.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.core import (
    Finding,
    Module,
    Rule,
    Severity,
    call_name,
    register_rule,
)

__all__ = ["AsyncHandlerBlockingCallRule"]

#: Method names that read a whole stream synchronously.
_READ_METHODS = frozenset({"read", "readlines"})


def _is_awaited(module: Module, call: ast.Call) -> bool:
    parent = module.parent(call)
    return isinstance(parent, ast.Await)


def _enclosing_async_def(
    module: Module, node: ast.AST
) -> Optional[ast.AsyncFunctionDef]:
    """The innermost enclosing ``async def`` — unless a plain ``def``
    intervenes (then the code runs off-loop, e.g. a to_thread thunk)."""
    current = module.parent(node)
    while current is not None:
        if isinstance(current, ast.FunctionDef):
            return None
        if isinstance(current, ast.AsyncFunctionDef):
            return current
        current = module.parent(current)
    return None


@register_rule
class AsyncHandlerBlockingCallRule(Rule):
    """SRV001: no blocking calls inside async request handlers.

    One blocked event loop is a whole blocked service: every tenant's
    stream and submission stops while the call runs. Route blocking
    work through ``asyncio.to_thread`` (pass the function, call it off
    the loop) or use the async counterpart.
    """

    rule_id = "SRV001"
    severity = Severity.ERROR
    description = (
        "async request handlers (and async code they call) must not "
        "block the event loop: no time.sleep, synchronous open/read, "
        "or bare .join() — use asyncio.to_thread or async APIs"
    )
    scope = ("service",)

    def check_project(self, project) -> Iterator[Finding]:
        scope = project.scope_overrides.get(self.rule_id)
        for key in sorted(project.handler_reachable):
            fn = project.call_graph.nodes.get(key)
            if fn is None or not isinstance(fn.node, ast.AsyncFunctionDef):
                continue
            module = fn.module.module
            if not self.applies_to(module, scope):
                continue
            root = project.handler_reachable[key]
            yield from self._check_handler(module, fn, root)

    def _check_handler(self, module: Module, fn, root: str) -> Iterator[Finding]:
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            if _enclosing_async_def(module, node) is not fn.node:
                continue  # nested def (off-loop thunk) or foreign scope
            blocking = self._blocking_kind(module, node)
            if blocking is None:
                continue
            root_name = root.rsplit(".", 1)[-1]
            if fn.qualname.rsplit(".", 1)[-1] == root_name:
                where = f"inside registered async handler `{fn.qualname}`"
            else:
                where = (
                    f"inside `{fn.qualname}`, reachable from registered "
                    f"async handler `{root_name}`"
                )
            yield module.finding(
                self, node,
                f"{blocking} {where} blocks the event loop for every "
                f"tenant at once; run it through asyncio.to_thread or use "
                f"the async counterpart",
            )

    def _blocking_kind(self, module: Module, call: ast.Call) -> Optional[str]:
        dotted = call_name(call)
        if dotted == "time.sleep" or dotted.endswith(".time.sleep"):
            return "`time.sleep()`"
        if dotted == "open":
            return "synchronous `open()`"
        if not isinstance(call.func, ast.Attribute):
            return None
        attr = call.func.attr
        if _is_awaited(module, call):
            return None  # awaited stream APIs are the async form
        if attr in _READ_METHODS:
            return f"un-awaited synchronous `.{attr}()`"
        if attr == "join" and not call.args:
            # str.join always takes the iterable positionally, so a
            # no-argument .join() is a thread/process/pool join.
            return "blocking `.join()`"
        return None
