"""Concurrency / fork-safety rules: the RACE family.

The runtime executes jobs in fork-spawned worker processes
(:mod:`repro.runtime.pool`). Fork semantics make three bug shapes easy
to write and nearly impossible to test for:

* **RACE001** — a module-level mutable (dict, list, instance) mutated
  by code reachable from a worker entrypoint. Each worker mutates its
  *own fork-inherited copy*; the dispatcher's copy never changes, so
  inline (``--workers 0``) and pooled runs silently diverge — the
  benchmark's serial/parallel bit-identity guarantee breaks without a
  single test failing.
* **RACE002** — an unpicklable or closure-capturing object placed into
  a job payload or ``Pipe`` send: lambdas, nested functions, generator
  expressions, open file handles. These either raise
  ``PicklingError`` at dispatch time or (worse) pickle a stale
  snapshot of captured state.
* **RACE003** — a fork-unsafe resource created at import time (open
  file handle, ``threading``/``multiprocessing`` lock or queue, a
  ``Tracer``) and referenced by worker-reachable code. The child
  inherits the parent's file offset, lock state, or span buffer; both
  sides then interleave on one kernel object or duplicate buffered
  records.

RACE001/003 are whole-program rules (:meth:`Rule.check_project`): they
need the call graph's worker-reachable closure and the cross-module
mutable-state inventory. RACE002 is a per-file rule: the payload
expression and the closure it captures are visible in one module.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.lint.core import (
    Finding,
    Module,
    Rule,
    Severity,
    call_name,
    register_rule,
)

__all__ = [
    "WorkerGlobalMutationRule",
    "UnpicklablePayloadRule",
    "ForkUnsafeImportResourceRule",
]

#: Methods that mutate their receiver in place.
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "sort", "reverse",
    "appendleft", "extendleft", "popleft",
})


def _assigned_names(node: ast.AST) -> Set[str]:
    """Plain-name binding targets of an assignment-like statement.

    Only direct ``Name`` targets count: ``X[k] = v`` mutates, it does
    not rebind, and is handled by the item-assignment check instead.
    """
    names: Set[str] = set()
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    for target in targets:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for sub in target.elts:
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return names


def _is_local(fn, name: str) -> bool:
    """Whether ``name`` is a parameter or plain local inside ``fn``
    (so a mutation of it is process-private, not module state)."""
    if name in fn.global_names:
        return False
    node = fn.node
    args = getattr(node, "args", None)
    if args is not None:
        every = (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
        if args.vararg is not None:
            every.append(args.vararg)
        if args.kwarg is not None:
            every.append(args.kwarg)
        if any(arg.arg == name for arg in every):
            return True
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign):
            for target in sub.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return True
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            for t in ast.walk(sub.target):
                if isinstance(t, ast.Name) and t.id == name:
                    return True
        elif isinstance(sub, (ast.With, ast.AsyncWith)):
            for item in sub.items:
                if item.optional_vars is not None:
                    for t in ast.walk(item.optional_vars):
                        if isinstance(t, ast.Name) and t.id == name:
                            return True
        elif isinstance(sub, ast.comprehension):
            for t in ast.walk(sub.target):
                if isinstance(t, ast.Name) and t.id == name:
                    return True
    return False


@register_rule
class WorkerGlobalMutationRule(Rule):
    """RACE001: module-level mutable state mutated on the worker side.

    After ``fork``, each worker owns a private copy-on-write snapshot
    of every module global. A mutation in worker-reachable code updates
    only that snapshot: the dispatcher (and every sibling worker) keeps
    the old value, so inline and pooled runs of the same matrix see
    different state. Move the state into the job payload/result, the
    content-addressed cache, or per-process objects built after fork.
    """

    rule_id = "RACE001"
    severity = Severity.ERROR
    description = (
        "module-level mutable state must not be mutated by code "
        "reachable from fork-pool worker entrypoints"
    )
    scope = None

    def check_project(self, project) -> Iterator[Finding]:
        for info in project.modules.values():
            module = info.module
            for node in ast.walk(module.tree):
                fn = info.function_at(node)
                if fn is None or fn.key not in project.worker_reachable:
                    continue
                root = project.worker_reachable[fn.key]
                for name, how, anchor in self._mutations(project, info, fn, node):
                    state = project.resolve_global(info, name)
                    owner = state.module.name if state is not None else info.name
                    yield module.finding(
                        self, anchor,
                        f"{how} of module-level mutable `{name}` (defined "
                        f"in {owner}) runs on the worker side of the fork "
                        f"(reachable from `{root}`); fork-inherited "
                        f"globals silently diverge between inline and "
                        f"pooled runs — carry this state in the job "
                        f"payload/result or rebuild it per process",
                    )

    def _mutations(
        self, project, info, fn, node
    ) -> Iterator[Tuple[str, str, ast.AST]]:
        # `global X` rebinding (or augmented assignment through it).
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            for name in _assigned_names(node) & fn.global_names:
                if name in info.module_assigns:
                    yield name, "rebinding (via `global`)", node
            # Subscript store: X[k] = v / X[k] += v.
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                name = self._subscript_root(target)
                if name is not None and self._is_module_state(
                    project, info, fn, name
                ):
                    yield name, "item assignment", node
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                name = self._subscript_root(target)
                if name is not None and self._is_module_state(
                    project, info, fn, name
                ):
                    yield name, "item deletion", node
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr not in _MUTATING_METHODS:
                return
            base = node.func.value
            if isinstance(base, ast.Name) and self._is_module_state(
                project, info, fn, base.id
            ):
                yield base.id, f"`.{node.func.attr}()` call", node

    @staticmethod
    def _subscript_root(target: ast.expr) -> Optional[str]:
        if isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Name
        ):
            return target.value.id
        return None

    @staticmethod
    def _is_module_state(project, info, fn, name: str) -> bool:
        if _is_local(fn, name):
            return False
        return project.resolve_global(info, name) is not None


#: Receiver-name fragments identifying pipe/queue channels: the
#: runtime's conventions (`result_conn`, `task_send`, `pipe`, ...).
_CHANNEL_TOKENS = ("conn", "pipe", "chan", "sock", "queue", "send")


@register_rule
class UnpicklablePayloadRule(Rule):
    """RACE002: unpicklable or closure-capturing object in a job payload.

    Everything crossing the dispatcher/worker boundary is pickled.
    Lambdas and nested functions do not pickle at all; generator
    expressions do not pickle; an ``open(...)`` handle pickles its
    *path* at best and loses its offset and buffer always. Even when a
    captured object sneaks through, the worker gets a snapshot — later
    mutations on either side are invisible to the other. Payloads must
    be plain data (dataclasses, dicts, tuples of primitives).
    """

    rule_id = "RACE002"
    severity = Severity.ERROR
    description = (
        "job payloads / Pipe sends must carry plain picklable data, "
        "not lambdas, nested functions, generators, or open handles"
    )
    # The two subsystems that marshal payloads across process forks:
    # the runtime pool/service plane and the partitioned shard engine.
    scope = ("runtime", "partitioned")

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            for payload, where in self._payload_exprs(node):
                yield from self._scan_payload(module, node, payload, where)

    def _payload_exprs(self, call: ast.Call):
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "send":
            receiver = call_name(func.value) or ""
            if any(token in receiver.lower() for token in _CHANNEL_TOKENS):
                for arg in call.args:
                    yield arg, "Pipe send"
            return
        last = call_name(call).rsplit(".", 1)[-1]
        if last == "Process":
            for keyword in call.keywords:
                if keyword.arg == "args":
                    yield keyword.value, "Process args"
        elif isinstance(func, ast.Attribute) and func.attr == "submit":
            for arg in call.args:
                yield arg, "pool submit"

    def _scan_payload(
        self, module: Module, call: ast.Call, payload: ast.AST, where: str
    ) -> Iterator[Finding]:
        nested_defs = self._enclosing_nested_defs(module, call)
        called = {
            id(sub.func) for sub in ast.walk(payload)
            if isinstance(sub, ast.Call)
        }
        for sub in ast.walk(payload):
            if isinstance(sub, ast.Lambda):
                yield module.finding(
                    self, sub,
                    f"lambda in a {where} payload: lambdas do not pickle "
                    f"and capture their defining scope by reference",
                )
            elif isinstance(sub, ast.GeneratorExp):
                yield module.finding(
                    self, sub,
                    f"generator expression in a {where} payload: "
                    f"generators are unpicklable — materialize a list",
                )
            elif isinstance(sub, ast.Call) and call_name(sub) == "open":
                yield module.finding(
                    self, sub,
                    f"open file handle in a {where} payload: handles do "
                    f"not survive pickling (offset and buffer are lost) "
                    f"— send the path and reopen on the worker side",
                )
            elif (
                isinstance(sub, ast.Name)
                and id(sub) not in called
                and sub.id in nested_defs
            ):
                yield module.finding(
                    self, sub,
                    f"nested function `{sub.id}` in a {where} payload: "
                    f"closures do not pickle — move it to module level "
                    f"and ship plain arguments",
                )

    @staticmethod
    def _enclosing_nested_defs(module: Module, node: ast.AST) -> Set[str]:
        """Names of functions defined inside any function enclosing node."""
        names: Set[str] = set()
        current = module.parent(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for sub in ast.walk(current):
                    if (
                        isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and sub is not current
                    ):
                        names.add(sub.name)
            current = module.parent(current)
        return names


@register_rule
class ForkUnsafeImportResourceRule(Rule):
    """RACE003: fork-unsafe resource created at import time and used in
    worker-reachable code.

    A file handle, lock/queue, or ``Tracer`` built when the module is
    imported exists *before* the fork, so parent and child share the
    kernel object behind it: writes interleave at one file offset, a
    lock held at fork time is held forever in the child, and a tracer's
    buffered spans are emitted twice. Construct such resources after
    the fork (inside the worker entrypoint) or guard them per-process.
    """

    rule_id = "RACE003"
    severity = Severity.WARNING
    description = (
        "fork-unsafe resources (files, locks, tracers) must not be "
        "created at import time and used on both sides of a fork"
    )
    scope = None

    def check_project(self, project) -> Iterator[Finding]:
        reported: Set[Tuple[str, str]] = set()
        for info in project.modules.values():
            for node in ast.walk(info.module.tree):
                if not isinstance(node, ast.Name) or not isinstance(
                    node.ctx, ast.Load
                ):
                    continue
                fn = info.function_at(node)
                if fn is None or fn.key not in project.worker_reachable:
                    continue
                state = project.resolve_global(info, node.id)
                if state is None or not state.fork_unsafe:
                    continue
                key = (state.module.name, state.name)
                if key in reported:
                    continue
                reported.add(key)
                root = project.worker_reachable[fn.key]
                yield state.module.module.finding(
                    self, state.node,
                    f"import-time {state.kind} `{state.name}` is used by "
                    f"`{fn.key}`, which runs on the worker side of the "
                    f"fork (reachable from `{root}`); both sides share "
                    f"the underlying kernel object — construct it after "
                    f"the fork or per process",
                )
