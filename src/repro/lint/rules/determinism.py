"""Determinism rules: DET001, DET002, DET003.

Graphalytics defines correctness as output equivalence against a
deterministic reference (paper §2.2.3); the spec makes determinism a
hard requirement. These rules catch the three classic ways Python code
silently loses it: iterating unordered containers where order feeds
output or tie-breaking, constructing RNGs without an explicit seed, and
accumulating floats in an unordered fashion.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.lint.core import Finding, Module, Rule, Severity, call_name, register_rule

__all__ = ["UnorderedIterationRule", "UnseededRngRule", "UnorderedAccumulationRule"]

#: Consumers for which element order cannot affect the result.
_ORDER_INSENSITIVE_CONSUMERS = {
    "sorted", "min", "max", "sum", "set", "frozenset",
    "any", "all", "len", "Counter", "collections.Counter", "dict",
}

_DICT_VIEWS = {"keys", "values", "items"}

_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a function/module scope without descending into nested scopes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_set_constructor(node: ast.AST, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and call_name(node) in ("set", "frozenset"):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return (
            _is_set_constructor(node.left, set_names)
            or _is_set_constructor(node.right, set_names)
        )
    return False


def _set_typed_names(scope: ast.AST) -> Set[str]:
    """Local names bound (at least once) to a set in this scope.

    Two passes so ``a = set(); b = a | other`` marks ``b`` as well.
    """
    names: Set[str] = set()
    for _ in range(2):
        for node in _scope_nodes(scope):
            if isinstance(node, ast.Assign):
                if _is_set_constructor(node.value, names):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name) and (
                    isinstance(node.op, _SET_BINOPS)
                    and _is_set_constructor(node.value, names)
                ):
                    names.add(node.target.id)
    return names


def _is_unordered(node: ast.AST, set_names: Set[str]) -> bool:
    """Is iterating this expression order-unstable (set / dict view)?"""
    if _is_set_constructor(node, set_names):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _DICT_VIEWS and not node.args:
            return True
    return False


def _function_scopes(module: Module) -> Iterator[ast.AST]:
    yield module.tree
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            yield node


def _consumed_order_insensitively(module: Module, comp: ast.AST) -> bool:
    """True when a comprehension's result cannot depend on element order."""
    if isinstance(comp, ast.SetComp):
        return True
    parent = module.parent(comp)
    if isinstance(parent, ast.Call) and comp in parent.args:
        name = call_name(parent)
        if name in _ORDER_INSENSITIVE_CONSUMERS or (
            name.split(".")[-1] in _ORDER_INSENSITIVE_CONSUMERS
        ):
            return True
    return False


def _describe(node: ast.AST) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return "<expression>"
    return text if len(text) <= 40 else text[:37] + "..."


@register_rule
class UnorderedIterationRule(Rule):
    """DET001: unordered iteration in kernel/engine code.

    Iterating a ``set`` or a dict view in an algorithm kernel or engine
    makes visit order an accident of hashing/insertion; when that order
    feeds output values, message order, or tie-breaking, two platforms
    can produce validation-equivalent-but-different results — exactly
    the divergence the benchmark's determinism requirement forbids.
    Wrap the iterable in ``sorted(...)`` or use an explicit min-id
    tie-break.
    """

    rule_id = "DET001"
    severity = Severity.ERROR
    description = "unordered set/dict iteration feeding kernel output or ordering"
    scope = ("algorithms", "engines")

    def check(self, module: Module) -> Iterator[Finding]:
        for scope in _function_scopes(module):
            set_names = _set_typed_names(scope)
            for node in _scope_nodes(scope):
                if isinstance(node, ast.For):
                    if _is_unordered(node.iter, set_names):
                        yield module.finding(
                            self, node,
                            f"iteration over unordered "
                            f"`{_describe(node.iter)}`; wrap in sorted() "
                            f"to keep kernel order deterministic",
                        )
                elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                    for gen in node.generators:
                        if _is_unordered(gen.iter, set_names) and (
                            not _consumed_order_insensitively(module, node)
                        ):
                            yield module.finding(
                                self, node,
                                f"comprehension over unordered "
                                f"`{_describe(gen.iter)}`; wrap in sorted() "
                                f"to keep kernel order deterministic",
                            )


# -- DET002 ------------------------------------------------------------------

#: ``random.<fn>`` calls that use the global, implicitly-seeded state.
_STDLIB_GLOBAL_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "vonmisesvariate", "seed", "getrandbits",
}

#: Legacy ``np.random.<fn>`` calls against the global numpy state.
_NUMPY_GLOBAL_FNS = {
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "seed", "standard_normal", "uniform",
    "normal", "exponential", "poisson", "binomial",
}

_BIT_GENERATORS = {"PCG64", "MT19937", "Philox", "SFC64"}


def _first_arg_is_missing_or_none(node: ast.Call) -> bool:
    if not node.args and not node.keywords:
        return True
    if node.args and isinstance(node.args[0], ast.Constant) and (
        node.args[0].value is None
    ):
        return True
    for kw in node.keywords:
        if kw.arg == "seed" and isinstance(kw.value, ast.Constant) and (
            kw.value.value is None
        ):
            return True
    return False


@register_rule
class UnseededRngRule(Rule):
    """DET002: RNG without an explicit seed.

    A benchmark run must be reproducible bit for bit from its configured
    seed (paper §2.5: deterministic drivers and datagen). Unseeded
    generators — ``random.Random()``, ``np.random.default_rng()``, or
    module-level ``random.*`` calls against hidden global state — make
    run-to-run output diverge. Thread an explicit seed from the
    benchmark config instead.
    """

    rule_id = "DET002"
    severity = Severity.ERROR
    description = "RNG constructed or used without an explicit seed"
    scope = None  # seeds matter everywhere

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            parts = name.split(".")
            if name in ("random.Random", "Random"):
                if _first_arg_is_missing_or_none(node):
                    yield module.finding(
                        self, node,
                        "random.Random() without a seed; pass the config seed",
                    )
            elif parts[-1] == "default_rng" and parts[0] in (
                "np", "numpy", "default_rng"
            ):
                if _first_arg_is_missing_or_none(node):
                    yield module.finding(
                        self, node,
                        "default_rng() without a seed; pass the config seed",
                    )
            elif parts[-1] in _BIT_GENERATORS and parts[0] in ("np", "numpy"):
                if _first_arg_is_missing_or_none(node):
                    yield module.finding(
                        self, node,
                        f"{parts[-1]}() without a seed; pass the config seed",
                    )
            elif len(parts) == 2 and parts[0] == "random" and (
                parts[1] in _STDLIB_GLOBAL_FNS
            ):
                yield module.finding(
                    self, node,
                    f"module-level random.{parts[1]}() uses hidden global "
                    f"state; use a seeded random.Random/Generator instance",
                )
            elif len(parts) == 3 and parts[0] in ("np", "numpy") and (
                parts[1] == "random" and parts[2] in _NUMPY_GLOBAL_FNS
            ):
                yield module.finding(
                    self, node,
                    f"legacy np.random.{parts[2]}() uses hidden global "
                    f"state; use np.random.default_rng(seed)",
                )


# -- DET003 ------------------------------------------------------------------

@register_rule
class UnorderedAccumulationRule(Rule):
    """DET003: float accumulation over an unordered iterable.

    Floating-point addition is not associative: summing PageRank mass,
    LCC counts, or SSSP distances in set/dict-view order makes the last
    few ulps (and therefore epsilon-validation near the tolerance edge)
    depend on hash order. Sort the operands or use a vectorized
    reduction with a fixed order.
    """

    rule_id = "DET003"
    severity = Severity.WARNING
    description = "sum()/fsum() over an unordered iterable in a float kernel"
    scope = ("algorithms", "engines")

    def check(self, module: Module) -> Iterator[Finding]:
        for scope in _function_scopes(module):
            set_names = _set_typed_names(scope)
            for node in _scope_nodes(scope):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                if name not in ("sum", "fsum", "math.fsum"):
                    continue
                if not node.args:
                    continue
                arg = node.args[0]
                unordered: Optional[ast.AST] = None
                if _is_unordered(arg, set_names):
                    unordered = arg
                elif isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                    for gen in arg.generators:
                        if _is_unordered(gen.iter, set_names):
                            unordered = gen.iter
                            break
                if unordered is not None:
                    yield module.finding(
                        self, node,
                        f"float accumulation over unordered "
                        f"`{_describe(unordered)}`; fix the order before "
                        f"summing (float addition is not associative)",
                    )
