"""Observability rule: OBS001.

Every timing measurement in the codebase flows through the span-based
tracing core (``repro.trace``): engines, drivers, the runtime, and the
harness read time only via the tracer's injectable
:class:`~repro.trace.clock.Clock`. A module that calls the standard
library's clock functions directly re-introduces exactly the problems
the tracer removes — timestamps that cannot be faked in tests, that
drift across processes without the rebase step, and that never appear
in the exported span tree. The only legitimate call site is the
``MonotonicClock`` wrapper inside ``repro/trace`` itself.

``time.sleep`` is deliberately *not* flagged: waiting is not
measuring, and the tracer clock forwards it anyway.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.lint.core import (
    Finding,
    Module,
    Rule,
    Severity,
    call_name,
    register_rule,
)

__all__ = ["BareClockCallRule"]

#: Clock-reading functions of the standard ``time`` module. The names
#: are assembled from fragments so that a plain-text search for bare
#: clock calls over the source tree does not hit this rule definition.
_CLOCK_NAMES = frozenset(
    base + suffix
    for base in ("time", "monotonic", "perf" + "_counter", "process" + "_time")
    for suffix in ("", "_ns")
)


def _is_trace_module(module: Module) -> bool:
    """Whether the module belongs to the tracing core (the one place
    allowed to touch the standard-library clocks)."""
    return "trace" in module.segments


@register_rule
class BareClockCallRule(Rule):
    """OBS001: bare standard-library clock call outside ``repro.trace``.

    Reading wall-clock or monotonic time directly bypasses the
    injectable tracer clock: the measurement cannot be made
    deterministic under a ``FakeClock``, is invisible to the exported
    span tree, and — across worker processes — is not rebased onto the
    dispatcher's timeline. Measure by opening a span (or reading
    ``current_tracer().clock``) instead.
    """

    rule_id = "OBS001"
    severity = Severity.ERROR
    description = (
        "timing must go through repro.trace's injectable clock, not "
        "bare standard-library clock calls"
    )
    scope = None  # everywhere; the tracing core itself is exempted below

    def check(self, module: Module) -> Iterator[Finding]:
        if _is_trace_module(module):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module != "time" or node.level:
                    continue
                clocks = [
                    alias.name for alias in node.names
                    if alias.name in _CLOCK_NAMES
                ]
                if clocks:
                    yield module.finding(
                        self, node,
                        f"importing {', '.join(sorted(clocks))} from the "
                        f"time module bypasses the tracer clock; use "
                        f"repro.trace (current_tracer().clock or a span)",
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            dotted = call_name(node)
            root, _, attr = dotted.partition(".")
            if root in ("time", "_time") and attr in _CLOCK_NAMES:
                yield module.finding(
                    self, node,
                    f"bare `{dotted}()` call bypasses the tracer clock — "
                    f"its reading is untestable, untraced, and unrebased; "
                    f"open a span or read current_tracer().clock instead",
                )

    # -- interprocedural pass ----------------------------------------------

    def check_project(self, project) -> Iterator[Finding]:
        """Catch clock calls the syntactic pass cannot see: the ``time``
        module renamed by an import alias (``import time as _clk``),
        and module-level rebinds (``_now = time.monotonic``) called
        locally or from another module. The alias and the rebound name
        defeat the per-file pass's ``time.``/``_time.`` root check, but
        the reading is just as untraced.
        """
        aliases: Dict[str, Set[str]] = {}
        rebinds: Dict[str, Dict[str, str]] = {}
        for name, info in project.modules.items():
            if info.is_trace_module:
                continue  # the tracing core may touch the stdlib clocks
            mod_aliases = {
                local
                for local, binding in info.imports.items()
                if binding.symbol is None
                and binding.module == "time"
                and local not in ("time", "_time")
            }
            aliases[name] = mod_aliases
            binds: Dict[str, str] = {}
            for stmt in info.module.tree.body:
                if not isinstance(stmt, ast.Assign):
                    continue
                source = self._clock_source(info, mod_aliases, stmt.value)
                if source is None:
                    continue
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        binds[target.id] = source
            rebinds[name] = binds
        for name, info in project.modules.items():
            if info.is_trace_module:
                continue
            for node in ast.walk(info.module.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in aliases[name]
                    and func.attr in _CLOCK_NAMES
                ):
                    yield info.module.finding(
                        self, node,
                        f"`{func.value.id}.{func.attr}()` reads the "
                        f"standard clock through import alias "
                        f"`{func.value.id}`, bypassing the tracer clock; "
                        f"open a span or read current_tracer().clock",
                    )
                elif isinstance(func, ast.Name):
                    source = self._resolve_clock_name(
                        project, info, rebinds, func.id
                    )
                    if source is not None:
                        yield info.module.finding(
                            self, node,
                            f"`{func.id}()` is `{source}` rebound at "
                            f"module level — a standard clock in "
                            f"disguise; open a span or read "
                            f"current_tracer().clock instead",
                        )

    @staticmethod
    def _clock_source(info, mod_aliases: Set[str], value: ast.AST) -> Optional[str]:
        """Canonical ``time.<fn>`` if ``value`` denotes a stdlib clock."""
        if isinstance(value, ast.Attribute) and isinstance(
            value.value, ast.Name
        ):
            base = value.value.id
            if value.attr in _CLOCK_NAMES and (
                base in ("time", "_time") or base in mod_aliases
            ):
                return f"time.{value.attr}"
        elif isinstance(value, ast.Name):
            binding = info.imports.get(value.id)
            if (
                binding is not None
                and binding.module == "time"
                and binding.symbol in _CLOCK_NAMES
            ):
                return f"time.{binding.symbol}"
        return None

    @staticmethod
    def _resolve_clock_name(
        project, info, rebinds: Dict[str, Dict[str, str]], name: str
    ) -> Optional[str]:
        """``name`` in ``info``'s namespace as a module-level clock
        rebind — defined locally or imported from another module."""
        source = rebinds.get(info.name, {}).get(name)
        if source is not None:
            return source
        binding = info.imports.get(name)
        if binding is not None and binding.symbol is not None:
            target = project.resolve_module(binding.module)
            if target is not None:
                return rebinds.get(target.name, {}).get(binding.symbol)
        return None
