"""Observability rule: OBS001.

Every timing measurement in the codebase flows through the span-based
tracing core (``repro.trace``): engines, drivers, the runtime, and the
harness read time only via the tracer's injectable
:class:`~repro.trace.clock.Clock`. A module that calls the standard
library's clock functions directly re-introduces exactly the problems
the tracer removes — timestamps that cannot be faked in tests, that
drift across processes without the rebase step, and that never appear
in the exported span tree. The only legitimate call site is the
``MonotonicClock`` wrapper inside ``repro/trace`` itself.

``time.sleep`` is deliberately *not* flagged: waiting is not
measuring, and the tracer clock forwards it anyway.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import (
    Finding,
    Module,
    Rule,
    Severity,
    call_name,
    register_rule,
)

__all__ = ["BareClockCallRule"]

#: Clock-reading functions of the standard ``time`` module. The names
#: are assembled from fragments so that a plain-text search for bare
#: clock calls over the source tree does not hit this rule definition.
_CLOCK_NAMES = frozenset(
    base + suffix
    for base in ("time", "monotonic", "perf" + "_counter", "process" + "_time")
    for suffix in ("", "_ns")
)


def _is_trace_module(module: Module) -> bool:
    """Whether the module belongs to the tracing core (the one place
    allowed to touch the standard-library clocks)."""
    return "trace" in module.segments


@register_rule
class BareClockCallRule(Rule):
    """OBS001: bare standard-library clock call outside ``repro.trace``.

    Reading wall-clock or monotonic time directly bypasses the
    injectable tracer clock: the measurement cannot be made
    deterministic under a ``FakeClock``, is invisible to the exported
    span tree, and — across worker processes — is not rebased onto the
    dispatcher's timeline. Measure by opening a span (or reading
    ``current_tracer().clock``) instead.
    """

    rule_id = "OBS001"
    severity = Severity.ERROR
    description = (
        "timing must go through repro.trace's injectable clock, not "
        "bare standard-library clock calls"
    )
    scope = None  # everywhere; the tracing core itself is exempted below

    def check(self, module: Module) -> Iterator[Finding]:
        if _is_trace_module(module):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module != "time" or node.level:
                    continue
                clocks = [
                    alias.name for alias in node.names
                    if alias.name in _CLOCK_NAMES
                ]
                if clocks:
                    yield module.finding(
                        self, node,
                        f"importing {', '.join(sorted(clocks))} from the "
                        f"time module bypasses the tracer clock; use "
                        f"repro.trace (current_tracer().clock or a span)",
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            dotted = call_name(node)
            root, _, attr = dotted.partition(".")
            if root in ("time", "_time") and attr in _CLOCK_NAMES:
                yield module.finding(
                    self, node,
                    f"bare `{dotted}()` call bypasses the tracer clock — "
                    f"its reading is untestable, untraced, and unrebased; "
                    f"open a span or read current_tracer().clock instead",
                )
