"""Registry consistency: REG001.

Paper §2.2: the benchmark is the *closed* set of six core algorithms,
each with a validation rule and experiment wiring. An algorithm added
to :mod:`repro.algorithms.registry` without a validator (or never wired
into an experiment/dataset) would run unvalidated — the exact failure
mode the Graphalytics process forbids. This rule cross-checks the live
registries whenever the registry module itself is linted.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Mapping, Optional, Sequence

from repro.lint.core import Finding, Module, Rule, Severity, register_rule

__all__ = ["RegistryConsistencyRule", "registry_gaps"]


def registry_gaps(
    algorithms: Sequence[str],
    validators: Mapping[str, object],
    experiment_algorithms: Sequence[str],
    dataset_parameters: Optional[Mapping[str, Optional[str]]] = None,
) -> List[str]:
    """Pure consistency check; returns one message per gap.

    ``dataset_parameters`` maps each algorithm to ``None`` (parameters
    resolve) or an error string (no dataset could provide parameters).
    """
    messages: List[str] = []
    wired = set(experiment_algorithms)
    for acronym in algorithms:
        if acronym not in validators:
            messages.append(
                f"algorithm '{acronym}' has no validation rule in "
                f"algorithms.validation; every registered kernel must be "
                f"output-validated (paper §2.2.3)"
            )
        if acronym not in wired:
            messages.append(
                f"algorithm '{acronym}' is wired into no experiment in "
                f"harness.experiments; registered kernels must be part of "
                f"the benchmark workload"
            )
        if dataset_parameters is not None:
            error = dataset_parameters.get(acronym)
            if error:
                messages.append(
                    f"algorithm '{acronym}' gets no benchmark-description "
                    f"parameters from any dataset: {error}"
                )
    return messages


def _live_gaps() -> List[str]:
    from repro.algorithms.registry import ALGORITHMS
    from repro.algorithms.validation import VALIDATION_RULES
    from repro.harness.datasets import DATASETS
    from repro.harness.experiments import EXPERIMENTS

    experiment_algorithms = [
        a for exp in EXPERIMENTS.values() for a in exp.algorithms
    ]
    dataset_parameters = {}
    sample = next(iter(DATASETS.values()))
    for acronym in ALGORITHMS:
        try:
            sample.algorithm_parameters(acronym)
            dataset_parameters[acronym] = None
        except Exception as exc:  # defensive: report, don't crash the lint run
            dataset_parameters[acronym] = str(exc)
    return registry_gaps(
        list(ALGORITHMS), VALIDATION_RULES, experiment_algorithms,
        dataset_parameters,
    )


@register_rule
class RegistryConsistencyRule(Rule):
    """REG001: every registered algorithm validated and wired.

    Fires only on ``repro/algorithms/registry.py`` (the module that owns
    ``ALGORITHMS``), anchored at the ``ALGORITHMS`` assignment, and
    compares the *live* registries: algorithm list vs validation rules
    vs experiment wiring vs dataset parameter resolution.
    """

    rule_id = "REG001"
    severity = Severity.ERROR
    description = "algorithm registry out of sync with validation/experiment wiring"
    scope = ("algorithms",)

    def check(self, module: Module) -> Iterator[Finding]:
        if module.stem != "registry":
            return
        anchor: Optional[ast.AST] = None
        for node in module.tree.body:
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                if any(
                    isinstance(t, ast.Name) and t.id == "ALGORITHMS"
                    for t in targets
                ):
                    anchor = node
                    break
        if anchor is None:
            return  # not the algorithm registry (e.g. platforms/registry.py)
        for message in _live_gaps():
            yield module.finding(self, anchor, message)
