"""Harness robustness rules: EXC001, RUN001.

The harness records modeled failures (OOM, crash, SLA breach) as data;
what it must never do is *swallow* them. An over-broad ``except`` in a
retry or orchestration path can turn a failed job into a silently
missing row, corrupting the benchmark's failure statistics (paper §4.6
stress test counts failures explicitly). The concurrent runtime
sharpens the contract (RUN001): its worker and job entrypoints may
catch broadly — that is how a crashing job becomes a ``harness-*`` row
— but only if the handler demonstrably converts the exception into a
structured failure record or re-raises.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.lint.core import (
    Finding,
    Module,
    Rule,
    Severity,
    names_in,
    register_rule,
)

__all__ = ["SwallowedExceptionRule", "RuntimeFailureRecordRule"]

#: Exception names considered over-broad for a silent handler: the
#: builtins plus the library's own base class (catching a *specific*
#: GraphalyticsError subclass is legitimate harness behavior).
_BROAD_NAMES = {"Exception", "BaseException", "GraphalyticsError"}


def _handler_names(handler: ast.ExceptHandler) -> List[str]:
    if handler.type is None:
        return []
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names = []
    for t in types:
        if isinstance(t, ast.Name):
            names.append(t.id)
        elif isinstance(t, ast.Attribute):
            names.append(t.attr)
    return names


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


@register_rule
class SwallowedExceptionRule(Rule):
    """EXC001: broad except swallowing benchmark failures.

    A bare ``except:``, ``except Exception``, or ``except
    GraphalyticsError`` that neither re-raises nor narrows the type can
    absorb SLA violations, validation failures, and driver errors in
    harness retry paths. Catch the specific subclass you can handle, or
    re-raise after recording.
    """

    rule_id = "EXC001"
    severity = Severity.WARNING
    description = "broad except swallows GraphalyticsError in harness paths"
    scope = ("harness", "platforms", "granula")

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _reraises(node):
                continue
            if node.type is None:
                yield module.finding(
                    self, node,
                    "bare `except:` swallows every failure, including "
                    "benchmark errors; catch a specific exception",
                )
                continue
            broad = [n for n in _handler_names(node) if n in _BROAD_NAMES]
            if broad:
                yield module.finding(
                    self, node,
                    f"`except {'/'.join(broad)}` without re-raise can "
                    f"swallow benchmark failures; catch the specific "
                    f"subclass or re-raise after recording",
                )


#: Function-name tokens identifying runtime worker/job entrypoints: the
#: paths where an exception IS a job outcome and must become data.
_ENTRYPOINT_TOKENS = (
    "worker", "job", "dispatch", "task", "attempt", "envelope", "run_",
)

#: Identifier fragments that show the handler produces a structured
#: failure record (JobFailure, AttemptRecord, failure envelopes, the
#: scheduler's record_attempt / attempt_failed transitions).
_RECORD_TOKENS = ("fail", "attempt")


def _innermost_function(module: Module, node: ast.AST) -> Optional[str]:
    current = module.parent(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current.name
        current = module.parent(current)
    return None


def _records_failure(handler: ast.ExceptHandler) -> bool:
    found = names_in(handler)
    return any(
        token in name.lower() for name in found for token in _RECORD_TOKENS
    )


@register_rule
class RuntimeFailureRecordRule(Rule):
    """RUN001: runtime entrypoint drops an exception without a record.

    In ``repro.runtime``, a worker loop or job-execution function that
    catches broadly must turn the exception into a structured failure
    record (an :class:`~repro.runtime.jobs.AttemptRecord` /
    :class:`~repro.runtime.jobs.JobFailure` / failure envelope) or
    re-raise. Anything else silently loses a job — the exact failure
    mode the runtime exists to make impossible.
    """

    rule_id = "RUN001"
    severity = Severity.ERROR
    description = (
        "runtime worker/job entrypoint must re-raise or convert "
        "exceptions into structured failure records"
    )
    scope = ("runtime",)

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            function = _innermost_function(module, node)
            if function is None or not any(
                token in function.lower() for token in _ENTRYPOINT_TOKENS
            ):
                continue
            handled = _handler_names(node)
            if node.type is not None and not any(
                name in _BROAD_NAMES for name in handled
            ):
                continue  # narrow handler: not a job-outcome path
            if _reraises(node) or _records_failure(node):
                continue
            caught = "/".join(handled) if handled else "bare except"
            yield module.finding(
                self, node,
                f"`{caught}` in runtime entrypoint `{function}` neither "
                f"re-raises nor produces a structured failure record "
                f"(AttemptRecord/JobFailure/failure envelope); the job "
                f"would be silently lost",
            )
