"""Harness robustness rules: EXC001.

The harness records modeled failures (OOM, crash, SLA breach) as data;
what it must never do is *swallow* them. An over-broad ``except`` in a
retry or orchestration path can turn a failed job into a silently
missing row, corrupting the benchmark's failure statistics (paper §4.6
stress test counts failures explicitly).
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.core import Finding, Module, Rule, Severity, register_rule

__all__ = ["SwallowedExceptionRule"]

#: Exception names considered over-broad for a silent handler: the
#: builtins plus the library's own base class (catching a *specific*
#: GraphalyticsError subclass is legitimate harness behavior).
_BROAD_NAMES = {"Exception", "BaseException", "GraphalyticsError"}


def _handler_names(handler: ast.ExceptHandler) -> List[str]:
    if handler.type is None:
        return []
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names = []
    for t in types:
        if isinstance(t, ast.Name):
            names.append(t.id)
        elif isinstance(t, ast.Attribute):
            names.append(t.attr)
    return names


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


@register_rule
class SwallowedExceptionRule(Rule):
    """EXC001: broad except swallowing benchmark failures.

    A bare ``except:``, ``except Exception``, or ``except
    GraphalyticsError`` that neither re-raises nor narrows the type can
    absorb SLA violations, validation failures, and driver errors in
    harness retry paths. Catch the specific subclass you can handle, or
    re-raise after recording.
    """

    rule_id = "EXC001"
    severity = Severity.WARNING
    description = "broad except swallows GraphalyticsError in harness paths"
    scope = ("harness", "platforms", "granula")

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _reraises(node):
                continue
            if node.type is None:
                yield module.finding(
                    self, node,
                    "bare `except:` swallows every failure, including "
                    "benchmark errors; catch a specific exception",
                )
                continue
            broad = [n for n in _handler_names(node) if n in _BROAD_NAMES]
            if broad:
                yield module.finding(
                    self, node,
                    f"`except {'/'.join(broad)}` without re-raise can "
                    f"swallow benchmark failures; catch the specific "
                    f"subclass or re-raise after recording",
                )
