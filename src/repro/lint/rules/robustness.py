"""Harness robustness rules: EXC001, RUN001, ROB001, ROB002, ROB003.

The harness records modeled failures (OOM, crash, SLA breach) as data;
what it must never do is *swallow* them. An over-broad ``except`` in a
retry or orchestration path can turn a failed job into a silently
missing row, corrupting the benchmark's failure statistics (paper §4.6
stress test counts failures explicitly). The concurrent runtime
sharpens the contract (RUN001): its worker and job entrypoints may
catch broadly — that is how a crashing job becomes a ``harness-*`` row
— but only if the handler demonstrably converts the exception into a
structured failure record or re-raises.

Crash-safety extends the same discipline to persistence (ROB001): a
run artifact written with ``open(..., "w")`` or ``write_text`` is
truncated before the new bytes land, so a crash mid-write destroys the
previous good copy. Every run artifact must go through
:func:`repro.ioutil.atomic_write` (write-to-temp, fsync, rename);
append-mode writes — the journal's own medium — are exempt.

The fault-injection plane tightens it once more for the service and
the concurrent runtime (ROB002): chaos testing can only exercise
writes that flow through the registered fault points in
:mod:`repro.ioutil` and :mod:`repro.runtime.journal`. A raw ``open``
write in those layers — even an append — is invisible to every seeded
chaos plan, so its ENOSPC/EIO handling is never tested and the
supervision invariants (quarantine after N attempts, bounded
re-enqueues) cannot be asserted over it.

The results store closes the set (ROB003): SQLite connections carry
their own durability contract — WAL, ``synchronous=FULL``, ``BEGIN
IMMEDIATE`` writer serialization, the ``resultsdb.commit`` fault point
— and that contract lives in exactly one place,
:class:`repro.resultsdb.store.ResultsStore`. A ``sqlite3.connect``
anywhere else is a second, incompatible opinion about the same
database file.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.core import (
    Finding,
    Module,
    Rule,
    Severity,
    names_in,
    register_rule,
)

__all__ = [
    "SwallowedExceptionRule",
    "RuntimeFailureRecordRule",
    "AtomicArtifactWriteRule",
    "FaultPointRoutedWriteRule",
    "SanctionedSqliteConnectRule",
]

#: Exception names considered over-broad for a silent handler: the
#: builtins plus the library's own base class (catching a *specific*
#: GraphalyticsError subclass is legitimate harness behavior).
_BROAD_NAMES = {"Exception", "BaseException", "GraphalyticsError"}


def _handler_names(handler: ast.ExceptHandler) -> List[str]:
    if handler.type is None:
        return []
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names = []
    for t in types:
        if isinstance(t, ast.Name):
            names.append(t.id)
        elif isinstance(t, ast.Attribute):
            names.append(t.attr)
    return names


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


@register_rule
class SwallowedExceptionRule(Rule):
    """EXC001: broad except swallowing benchmark failures.

    A bare ``except:``, ``except Exception``, or ``except
    GraphalyticsError`` that neither re-raises nor narrows the type can
    absorb SLA violations, validation failures, and driver errors in
    harness retry paths. Catch the specific subclass you can handle, or
    re-raise after recording.
    """

    rule_id = "EXC001"
    severity = Severity.WARNING
    description = "broad except swallows GraphalyticsError in harness paths"
    scope = ("harness", "platforms", "granula")

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _reraises(node):
                continue
            if node.type is None:
                yield module.finding(
                    self, node,
                    "bare `except:` swallows every failure, including "
                    "benchmark errors; catch a specific exception",
                )
                continue
            broad = [n for n in _handler_names(node) if n in _BROAD_NAMES]
            if broad:
                yield module.finding(
                    self, node,
                    f"`except {'/'.join(broad)}` without re-raise can "
                    f"swallow benchmark failures; catch the specific "
                    f"subclass or re-raise after recording",
                )


#: Function-name tokens identifying runtime worker/job entrypoints: the
#: paths where an exception IS a job outcome and must become data.
_ENTRYPOINT_TOKENS = (
    "worker", "job", "dispatch", "task", "attempt", "envelope", "run_",
)

#: Identifier fragments that show the handler produces a structured
#: failure record (JobFailure, AttemptRecord, failure envelopes, the
#: scheduler's record_attempt / attempt_failed transitions).
_RECORD_TOKENS = ("fail", "attempt")


def _innermost_function(module: Module, node: ast.AST) -> Optional[str]:
    current = module.parent(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current.name
        current = module.parent(current)
    return None


def _records_failure(handler: ast.ExceptHandler) -> bool:
    found = names_in(handler)
    return any(
        token in name.lower() for name in found for token in _RECORD_TOKENS
    )


@register_rule
class RuntimeFailureRecordRule(Rule):
    """RUN001: runtime entrypoint drops an exception without a record.

    In ``repro.runtime``, a worker loop or job-execution function that
    catches broadly must turn the exception into a structured failure
    record (an :class:`~repro.runtime.jobs.AttemptRecord` /
    :class:`~repro.runtime.jobs.JobFailure` / failure envelope) or
    re-raise. Anything else silently loses a job — the exact failure
    mode the runtime exists to make impossible.
    """

    rule_id = "RUN001"
    severity = Severity.ERROR
    description = (
        "runtime worker/job entrypoint must re-raise or convert "
        "exceptions into structured failure records"
    )
    scope = ("runtime",)

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            function = _innermost_function(module, node)
            if function is None or not any(
                token in function.lower() for token in _ENTRYPOINT_TOKENS
            ):
                continue
            handled = _handler_names(node)
            if node.type is not None and not any(
                name in _BROAD_NAMES for name in handled
            ):
                continue  # narrow handler: not a job-outcome path
            if _reraises(node) or _records_failure(node):
                continue
            caught = "/".join(handled) if handled else "bare except"
            yield module.finding(
                self, node,
                f"`{caught}` in runtime entrypoint `{function}` neither "
                f"re-raises nor produces a structured failure record "
                f"(AttemptRecord/JobFailure/failure envelope); the job "
                f"would be silently lost",
            )


#: Path-like methods that replace a file's contents in place.
_WRITE_METHODS = ("write_text", "write_bytes")


def _open_mode(call: ast.Call, *, is_method: bool) -> Optional[ast.expr]:
    """The mode expression of an ``open``-shaped call, if present.

    Builtin ``open(path, mode)`` takes the mode second; the
    ``Path.open(mode)`` method takes it first.
    """
    index = 0 if is_method else 1
    if len(call.args) > index:
        return call.args[index]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            return keyword.value
    return None


def _is_truncating_mode(mode: Optional[ast.expr]) -> bool:
    # Only constant modes are decidable; "w" and "x" truncate/replace,
    # append and read modes do not.
    return (
        isinstance(mode, ast.Constant)
        and isinstance(mode.value, str)
        and any(flag in mode.value for flag in ("w", "x"))
    )


def _truncating_writes(tree: ast.AST) -> Iterator[Tuple[ast.Call, str]]:
    """Every in-place truncating write under ``tree``, with a short
    description of the offending call — shared by the per-file pass and
    the interprocedural taint pass."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _WRITE_METHODS:
            yield node, f".{func.attr}()"
            continue
        is_open = (
            isinstance(func, ast.Name) and func.id == "open"
        ) or (
            isinstance(func, ast.Attribute) and func.attr == "open"
        )
        if not is_open:
            continue
        mode = _open_mode(node, is_method=isinstance(func, ast.Attribute))
        if _is_truncating_mode(mode):
            yield node, f"open(..., {mode.value!r})"  # type: ignore[union-attr]


@register_rule
class AtomicArtifactWriteRule(Rule):
    """ROB001: run artifact written without ``atomic_write``.

    ``open(path, "w")`` truncates the destination before the new bytes
    are written, and ``Path.write_text`` is the same operation spelled
    differently: a crash (SIGKILL, OOM) between truncate and close
    leaves a torn or empty file where the last good artifact used to
    be. Resumable runs depend on every results database, report,
    baseline, and journal checkpoint surviving a crash, so run
    artifacts must be produced via :func:`repro.ioutil.atomic_write`
    (temp file + fsync + atomic rename). Append-mode opens are exempt:
    appends never destroy prior records, and the write-ahead journal
    itself is an append-only file.
    """

    rule_id = "ROB001"
    severity = Severity.ERROR
    description = (
        "run artifacts must be written via repro.ioutil.atomic_write, "
        "not in-place open('w')/write_text"
    )
    scope = ("harness", "runtime", "granula", "lint")

    def check(self, module: Module) -> Iterator[Finding]:
        for node, desc in _truncating_writes(module.tree):
            if desc.startswith("."):
                yield module.finding(
                    self, node,
                    f"`{desc}` replaces the file non-atomically; "
                    f"a crash mid-write leaves a torn artifact — use "
                    f"repro.ioutil.atomic_write",
                )
            else:
                yield module.finding(
                    self, node,
                    f"`{desc}` truncates in place; a "
                    f"crash mid-write leaves a torn run artifact — use "
                    f"repro.ioutil.atomic_write (append modes are exempt)",
                )

    def check_project(self, project) -> Iterator[Finding]:
        """Interprocedural pass: an in-scope module that routes its
        write through a helper in an *out-of-scope* module (``from
        repro.util import dump_json``) still tears the artifact on
        crash — the per-file pass never sees the helper's ``open``.
        Taint every out-of-scope function containing a truncating
        write, close over reverse call edges, and flag the in-scope
        call sites that cross into the tainted region.
        """
        scope = project.scope_overrides.get(self.rule_id)
        tainted: Dict[str, str] = {}
        for info in project.modules.values():
            if self.applies_to(info.module, scope):
                continue  # in-scope writes are the per-file pass's job
            for node, desc in _truncating_writes(info.module.tree):
                fn = info.function_at(node)
                if fn is not None:
                    tainted.setdefault(fn.key, desc)
        if not tainted:
            return
        sink = self._sink_origins(project.call_graph, tainted)
        for site in project.call_graph.call_sites:
            callee = project.call_graph.nodes.get(site.callee)
            caller = project.call_graph.nodes.get(site.caller)
            if callee is None or caller is None or site.callee not in sink:
                continue
            if self.applies_to(callee.module.module, scope):
                continue  # the callee's own write is flagged directly
            if not self.applies_to(caller.module.module, scope):
                continue  # only flag where the taint enters scoped code
            root = sink[site.callee]
            yield caller.module.module.finding(
                self, site.node,
                f"call to `{site.callee}` ends in a non-atomic "
                f"`{tainted[root]}` (inside `{root}`); the artifact is "
                f"torn on crash exactly as if written here — route the "
                f"write through repro.ioutil.atomic_write",
            )

    @staticmethod
    def _sink_origins(graph, tainted: Dict[str, str]) -> Dict[str, str]:
        """Every function from which a tainted writer is reachable,
        mapped to the tainted function it first reaches."""
        origin = {key: key for key in tainted}
        queue = deque(sorted(tainted))
        while queue:
            current = queue.popleft()
            for prev in sorted(graph.reverse.get(current, ())):
                if prev not in origin:
                    origin[prev] = origin[current]
                    queue.append(prev)
        return origin


#: Modules whose file writes ARE the fault-injection plane: the
#: ``atomic_write`` helper (every write/fsync/replace is a registered
#: fault point) and the run journal (its append path routes through
#: ``journal.append.*``). Everything else must call into them.
_PLANE_MODULE_STEMS = frozenset({"ioutil", "journal"})


def _is_write_mode(mode: Optional[ast.expr]) -> bool:
    # Any constant mode that can emit bytes: truncate ("w"), create
    # ("x"), append ("a"), or update ("+"). Dynamic modes stay
    # undecidable and unflagged, as in ROB001.
    return (
        isinstance(mode, ast.Constant)
        and isinstance(mode.value, str)
        and any(flag in mode.value for flag in ("w", "x", "a", "+"))
    )


def _raw_writes(tree: ast.AST) -> Iterator[Tuple[ast.Call, str]]:
    """Every file-writing call under ``tree`` — including appends —
    with a short description of the offending call."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _WRITE_METHODS:
            yield node, f".{func.attr}()"
            continue
        is_open = (
            isinstance(func, ast.Name) and func.id == "open"
        ) or (
            isinstance(func, ast.Attribute) and func.attr == "open"
        )
        if not is_open:
            continue
        mode = _open_mode(node, is_method=isinstance(func, ast.Attribute))
        if _is_write_mode(mode):
            yield node, f"open(..., {mode.value!r})"  # type: ignore[union-attr]


#: The one package allowed to open SQLite connections: the results
#: store owns the pragmas (WAL, synchronous=FULL), the BEGIN IMMEDIATE
#: transaction discipline, and the ``resultsdb.commit`` fault point. A
#: connection opened anywhere else silently opts out of all three.
_SQLITE_SANCTUARY = "resultsdb"


def _in_resultsdb(module: Module) -> bool:
    return _SQLITE_SANCTUARY in module.segments


def _sqlite_connect_calls(tree: ast.AST) -> Iterator[Tuple[ast.Call, str]]:
    """Every call under ``tree`` that resolves to ``sqlite3.connect``,
    with a short description — shared by the per-file pass and the
    interprocedural taint pass. Tracks ``import sqlite3`` aliases and
    ``from sqlite3 import connect`` (with renames); attribute calls on
    other receivers (``client.connect()``) are not sqlite."""
    module_aliases = {"sqlite3"}
    connect_aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "sqlite3":
                    module_aliases.add(alias.asname or "sqlite3")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "sqlite3":
                for alias in node.names:
                    if alias.name == "connect":
                        connect_aliases.add(alias.asname or "connect")
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "connect"
            and isinstance(func.value, ast.Name)
            and func.value.id in module_aliases
        ):
            yield node, f"{func.value.id}.connect(...)"
        elif isinstance(func, ast.Name) and func.id in connect_aliases:
            yield node, f"{func.id}(...)"


@register_rule
class SanctionedSqliteConnectRule(Rule):
    """ROB003: SQLite connection opened outside ``repro.resultsdb``.

    The results store is *one* database with one durability contract:
    WAL mode, ``synchronous=FULL``, writers serialized by ``BEGIN
    IMMEDIATE``, and every COMMIT threaded through the registered
    ``resultsdb.commit`` fault point. A ``sqlite3.connect`` anywhere
    else produces a connection with none of those properties — default
    journal mode, autocommit surprises, and writes no chaos plan can
    reach — silently forking the store's semantics. Like ROB002, the
    rule is interprocedural: handing the path to an out-of-scope helper
    that opens the connection for you is the same hole.
    """

    rule_id = "ROB003"
    severity = Severity.ERROR
    description = (
        "sqlite3 connections may only be opened inside repro.resultsdb; "
        "everywhere else must go through ResultsStore"
    )
    scope = (
        "harness", "service", "granula", "runtime", "cli", "faults",
        "engines", "benchmarks",
    )

    def check(self, module: Module) -> Iterator[Finding]:
        if _in_resultsdb(module):
            return  # the sanctioned layer: connections live here
        for node, desc in _sqlite_connect_calls(module.tree):
            yield module.finding(
                self, node,
                f"`{desc}` opens a raw SQLite connection outside "
                f"repro.resultsdb: it skips the store's WAL/synchronous "
                f"pragmas, its BEGIN IMMEDIATE writer discipline, and "
                f"the resultsdb.commit fault point — go through "
                f"repro.resultsdb.ResultsStore",
            )

    def check_project(self, project) -> Iterator[Finding]:
        """Interprocedural pass: an in-scope module that opens its
        connection through a helper in an out-of-scope module (``from
        repro.util.db import open_db``) forks the store's semantics
        just the same — the per-file pass never sees the helper's
        ``connect``. Same taint closure as ROB001/ROB002; helpers
        inside ``repro.resultsdb`` are the sanctioned surface and never
        taint their callers.
        """
        scope = project.scope_overrides.get(self.rule_id)
        tainted: Dict[str, str] = {}
        for info in project.modules.values():
            if _in_resultsdb(info.module):
                continue  # ResultsStore's own connect is the point
            if self.applies_to(info.module, scope):
                continue  # in-scope connects are the per-file pass's job
            for node, desc in _sqlite_connect_calls(info.module.tree):
                fn = info.function_at(node)
                if fn is not None:
                    tainted.setdefault(fn.key, desc)
        if not tainted:
            return
        sink = AtomicArtifactWriteRule._sink_origins(
            project.call_graph, tainted
        )
        for site in project.call_graph.call_sites:
            callee = project.call_graph.nodes.get(site.callee)
            caller = project.call_graph.nodes.get(site.caller)
            if callee is None or caller is None or site.callee not in sink:
                continue
            if self.applies_to(callee.module.module, scope):
                continue  # the callee's own connect is flagged directly
            caller_module = caller.module.module
            if not self.applies_to(caller_module, scope):
                continue  # only flag where the connection enters scoped code
            if _in_resultsdb(caller_module):
                continue
            root = sink[site.callee]
            yield caller_module.finding(
                self, site.node,
                f"call to `{site.callee}` ends in a raw "
                f"`{tainted[root]}` (inside `{root}`) outside "
                f"repro.resultsdb — the connection skips the store's "
                f"pragmas, transactions, and the resultsdb.commit fault "
                f"point; go through repro.resultsdb.ResultsStore",
            )


@register_rule
class FaultPointRoutedWriteRule(Rule):
    """ROB002: service/runtime write that bypasses the fault plane.

    The chaos harness can only inject ENOSPC/EIO/failed-fsync at the
    *registered fault points* — the ones ``atomic_write`` and the run
    journal thread every byte through. A raw ``open(..., "w")`` (or
    append, or ``write_text``) in service or runtime code is a write
    the seeded fault plans can never reach: its error handling is
    untestable, and a full disk or flaky device hits it in production
    as the first-ever exercise of that path. Unlike ROB001, append
    modes are **not** exempt here — an unreachable append is just as
    untested as an unreachable truncate. The sanctioned media are
    :func:`repro.ioutil.atomic_write` (pass ``fault_point=`` for spool
    artifacts) and :class:`repro.runtime.journal.RunJournal`.
    """

    rule_id = "ROB002"
    severity = Severity.ERROR
    description = (
        "service/runtime file writes must route through the "
        "fault-point-aware ioutil helpers or the run journal"
    )
    scope = ("service", "runtime")

    def check(self, module: Module) -> Iterator[Finding]:
        if module.stem in _PLANE_MODULE_STEMS:
            return  # the plane itself: its writes carry the fault points
        for node, desc in _raw_writes(module.tree):
            yield module.finding(
                self, node,
                f"`{desc}` bypasses the fault-injection plane: no chaos "
                f"plan can reach it, so its ENOSPC/EIO handling is never "
                f"exercised — route the write through "
                f"repro.ioutil.atomic_write (with fault_point=...) or "
                f"the run journal",
            )

    def check_project(self, project) -> Iterator[Finding]:
        """Interprocedural pass: a service/runtime module that hands
        its bytes to a helper in an out-of-scope module still leaves
        the plane — the helper's raw ``open`` is exactly as unreachable
        for a chaos plan as one written inline. Same taint closure as
        ROB001, over the broader any-write matcher.
        """
        scope = project.scope_overrides.get(self.rule_id)
        tainted: Dict[str, str] = {}
        for info in project.modules.values():
            if info.module.stem in _PLANE_MODULE_STEMS:
                continue  # atomic_write's own temp-file write is the plane
            if self.applies_to(info.module, scope):
                continue  # in-scope writes are the per-file pass's job
            for node, desc in _raw_writes(info.module.tree):
                fn = info.function_at(node)
                if fn is not None:
                    tainted.setdefault(fn.key, desc)
        if not tainted:
            return
        sink = AtomicArtifactWriteRule._sink_origins(
            project.call_graph, tainted
        )
        for site in project.call_graph.call_sites:
            callee = project.call_graph.nodes.get(site.callee)
            caller = project.call_graph.nodes.get(site.caller)
            if callee is None or caller is None or site.callee not in sink:
                continue
            if self.applies_to(callee.module.module, scope):
                continue  # the callee's own write is flagged directly
            caller_module = caller.module.module
            if not self.applies_to(caller_module, scope):
                continue  # only flag where bytes leave scoped code
            if caller_module.stem in _PLANE_MODULE_STEMS:
                continue
            root = sink[site.callee]
            yield caller_module.finding(
                self, site.node,
                f"call to `{site.callee}` ends in a raw "
                f"`{tainted[root]}` (inside `{root}`) that no chaos plan "
                f"can reach — route the write through "
                f"repro.ioutil.atomic_write or the run journal",
            )
