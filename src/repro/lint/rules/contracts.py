"""Programming-model contract rules: CON001, CON002.

The engines in :mod:`repro.engines` are only faithful miniatures of
Pregel/GAS if vertex programs respect the model's state contract — all
cross-vertex communication flows through messages, gather sums, and
engine-managed aggregators. Likewise the platform drivers are only a
benchmark harness if every algorithm execution goes through the
:class:`~repro.platforms.base.PlatformDriver` lifecycle, where modeled
failures, memory checks, and Granula events are produced.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.lint.core import Finding, Module, Rule, Severity, call_name, register_rule

__all__ = ["VertexProgramStateRule", "DriverBypassRule"]

#: Function names that form the vertex-program contract surface.
_CONTRACT_FUNCTIONS = {"compute", "gather", "apply", "scatter"}

#: Method calls that mutate their receiver.
_MUTATING_METHODS = {
    "append", "add", "update", "extend", "insert", "setdefault",
    "pop", "popitem", "clear", "discard", "remove", "sort", "reverse",
}


def _base_name(node: ast.AST) -> Optional[str]:
    """Root Name of a Subscript/Attribute chain (``a`` in ``a[k].b``)."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    stack: List[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _local_names(func: ast.AST) -> Set[str]:
    """Parameters plus names bound inside the function body."""
    names: Set[str] = set()
    args = func.args
    for group in (args.posonlyargs, args.args, args.kwonlyargs):
        names.update(a.arg for a in group)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    declared_outer: Set[str] = set()
    for node in _scope_nodes(func):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            declared_outer.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, ast.comprehension):
            for target in ast.walk(node.target):
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names - declared_outer


def _contract_functions(module: Module) -> Iterator[ast.AST]:
    """Defs/lambdas named (or bound to) compute/gather/apply/scatter."""
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name in _CONTRACT_FUNCTIONS:
                yield node
        elif isinstance(node, ast.Lambda):
            parent = module.parent(node)
            if isinstance(parent, ast.keyword) and (
                parent.arg in _CONTRACT_FUNCTIONS
            ):
                yield node
            elif isinstance(parent, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id in _CONTRACT_FUNCTIONS
                for t in parent.targets
            ):
                yield node


@register_rule
class VertexProgramStateRule(Rule):
    """CON001: vertex programs mutating state outside the contract.

    In Pregel/GAS, ``compute``/``gather``/``apply``/``scatter`` may only
    touch their own vertex state and the message/aggregator API. Writing
    to closures or module globals smuggles cross-vertex communication
    past the superstep barrier: the result then depends on vertex visit
    order, which a real distributed runtime does not guarantee. Use the
    engine's aggregator API (``ctx.aggregate``/``ctx.aggregated``)
    instead.
    """

    rule_id = "CON001"
    severity = Severity.ERROR
    description = "vertex program writes closure/global state outside the model contract"
    scope = ("engines",)

    def check(self, module: Module) -> Iterator[Finding]:
        for func in _contract_functions(module):
            local = _local_names(func)
            symbol = (
                func.name
                if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
                else "<lambda>"
            )
            for node in _scope_nodes(func):
                if isinstance(node, (ast.Global, ast.Nonlocal)):
                    yield module.finding(
                        self, node,
                        f"{symbol} declares {'/'.join(node.names)} "
                        f"{'global' if isinstance(node, ast.Global) else 'nonlocal'}; "
                        f"vertex programs must not rebind outer state",
                    )
                elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if not isinstance(target, (ast.Subscript, ast.Attribute)):
                            continue
                        base = _base_name(target)
                        if base is not None and base not in local:
                            yield module.finding(
                                self, node,
                                f"{symbol} writes to closure/global "
                                f"`{base}` outside the message/apply "
                                f"contract; use the engine aggregator API",
                            )
                elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    if node.func.attr in _MUTATING_METHODS and isinstance(
                        node.func.value, ast.Name
                    ):
                        base = node.func.value.id
                        if base not in local:
                            yield module.finding(
                                self, node,
                                f"{symbol} mutates closure/global `{base}` "
                                f"via .{node.func.attr}(); use the engine "
                                f"aggregator API",
                            )


# -- CON002 ------------------------------------------------------------------

#: Reference kernel entry points that drivers must not call directly.
_KERNEL_NAMES = {
    "breadth_first_search", "pagerank", "weakly_connected_components",
    "community_detection_lp", "local_clustering_coefficient",
    "single_source_shortest_paths", "run_reference",
}

#: Driver hooks in which direct execution is the implementation itself.
_LIFECYCLE_HOOKS = {"_native_runner", "_run_algorithm"}

#: Modules that *are* the lifecycle (base driver, registry wiring).
_EXEMPT_STEMS = {"base", "registry"}


def _enclosing_def_names(module: Module, node: ast.AST) -> Set[str]:
    names: Set[str] = set()
    current = module.parent(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(current.name)
        current = module.parent(current)
    return names


def _get_algorithm_bindings(module: Module) -> Set[str]:
    """Names assigned from ``get_algorithm(...)`` anywhere in the file."""
    bound: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if call_name(node.value).split(".")[-1] == "get_algorithm":
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
    return bound


@register_rule
class DriverBypassRule(Rule):
    """CON002: platform code bypassing the driver lifecycle.

    A driver that calls a reference kernel (or ``Algorithm.run``)
    directly skips the upload/execute contract of
    :class:`~repro.platforms.base.PlatformDriver` — capability checks,
    modeled memory/crash failures, and the Granula event log — so its
    results are unmetered and incomparable. Execute through
    ``self._run_algorithm`` (or provide a ``_native_runner``).
    """

    rule_id = "CON002"
    severity = Severity.ERROR
    description = "platform driver executes kernels outside the driver lifecycle"
    scope = ("platforms",)

    def check(self, module: Module) -> Iterator[Finding]:
        if module.stem in _EXEMPT_STEMS:
            return
        spec_names = _get_algorithm_bindings(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if _enclosing_def_names(module, node) & _LIFECYCLE_HOOKS:
                continue
            name = call_name(node)
            parts = name.split(".")
            direct_kernel = parts[-1] in _KERNEL_NAMES and len(parts) <= 2
            run_on_spec = (
                parts[-1] == "run"
                and len(parts) == 2
                and parts[0] in spec_names
            )
            run_on_get = (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "run"
                and isinstance(node.func.value, ast.Call)
                and call_name(node.func.value).split(".")[-1] == "get_algorithm"
            )
            if direct_kernel or run_on_spec or run_on_get:
                yield module.finding(
                    self, node,
                    f"direct kernel execution `{name or 'get_algorithm(...).run'}`"
                    f" bypasses the driver lifecycle; route through "
                    f"PlatformDriver._run_algorithm",
                )
