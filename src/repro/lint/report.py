"""Finding reporters: human text and machine JSON.

Text output is one line per finding in the familiar
``path:line:col: RULE message`` shape, followed by a per-rule summary.
JSON output is a stable document (version, findings, per-rule counts,
new/baselined split) for CI consumers.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Optional, Sequence

from repro.lint.core import Finding

__all__ = ["render_text", "render_json"]


def render_text(
    new: Sequence[Finding],
    baselined: Sequence[Finding] = (),
    *,
    verbose_baseline: bool = False,
    stale: Sequence[str] = (),
) -> str:
    """One line per new finding + summary; '' when everything is clean."""
    lines: List[str] = []
    for finding in new:
        suffix = f" [{finding.symbol}]" if finding.symbol else ""
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule_id} {finding.message}{suffix}"
        )
    if verbose_baseline:
        for finding in baselined:
            lines.append(
                f"{finding.path}:{finding.line}:{finding.col}: "
                f"{finding.rule_id} (baselined) {finding.message}"
            )
    if stale:
        for fingerprint in stale:
            lines.append(f"stale baseline entry (finding fixed): {fingerprint}")
        lines.append(
            f"note: {len(stale)} stale baseline "
            f"entr{'ies' if len(stale) != 1 else 'y'} — regenerate with "
            f"--write-baseline to drop them"
        )
    if not new and not baselined:
        lines.append("lint: clean (0 findings)")
        return "\n".join(lines)
    counts = Counter(f.rule_id for f in new)
    summary = ", ".join(f"{rule}: {n}" for rule, n in sorted(counts.items()))
    lines.append(
        f"lint: {len(new)} new finding{'s' if len(new) != 1 else ''}"
        + (f" ({summary})" if summary else "")
        + (f", {len(baselined)} baselined" if baselined else "")
    )
    return "\n".join(lines)


def render_json(
    new: Sequence[Finding],
    baselined: Sequence[Finding] = (),
    *,
    stale: Sequence[str] = (),
) -> str:
    """Stable JSON document covering both new and baselined findings."""
    def rows(findings: Sequence[Finding], is_baselined: bool):
        return [
            dict(f.as_dict(), baselined=is_baselined) for f in findings
        ]

    counts: Dict[str, int] = dict(Counter(f.rule_id for f in new))
    payload = {
        "version": 1,
        "new": len(new),
        "baselined": len(baselined),
        "stale": list(stale),
        "counts": {k: counts[k] for k in sorted(counts)},
        "findings": rows(new, False) + rows(baselined, True),
    }
    return json.dumps(payload, indent=2)
