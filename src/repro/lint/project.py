"""Phase 1 of the whole-program analyzer: the :class:`ProjectModel`.

Per-file AST rules cannot see a module-level dict mutated three calls
away from a worker entrypoint, a truncating write hidden behind a
helper in another module, or a clock call renamed by an import alias.
The project model gives phase-2 rules that visibility:

* a **symbol table per module** — top-level and nested functions with
  dotted qualnames, every import binding (``from repro.x import f as
  g`` records ``g -> repro.x.f``), and module aliases;
* the **import graph** over the linted modules, resolved by dotted-name
  suffix so the model works for ``src/repro`` and for test fixture
  trees alike;
* an approximate **call graph** (see :mod:`repro.lint.callgraph`)
  resolved over those symbol tables, including fork/worker entrypoints
  (``Process(target=...)`` and callables shipped through ``.send``)
  and the async request handlers registered through ``*add_route``
  (the event-loop entrypoint family SRV001 polices);
* a **module-level mutable-state inventory** — names bound at import
  time to dicts/lists/sets/instances — plus a fork-unsafety
  classification (open file handles, locks/queues, ``Tracer``
  instances) for the RACE rule family.

Resolution is deliberately *approximate*: it follows names, aliased
imports, one-level re-exports, and ``self.``/``cls.`` methods of the
enclosing class. It does not track values through containers,
attributes of arbitrary objects, ``getattr``, decorators that replace
functions, or dynamic dispatch — ``docs/lint.md`` documents the limits.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.core import Module, call_name

__all__ = [
    "ImportBinding",
    "ClassInfo",
    "FunctionInfo",
    "MutableGlobal",
    "ModuleInfo",
    "ProjectModel",
]

#: Constructors that produce a mutable container.
_MUTABLE_FACTORIES = frozenset({
    "dict", "list", "set", "bytearray", "defaultdict", "Counter",
    "deque", "OrderedDict", "ChainMap",
})

#: Constructors whose product is unsafe to share across a fork: the
#: child inherits the parent's lock state / file offset / buffered
#: bytes, and the two sides then interleave on one kernel object.
_LOCK_FACTORIES = frozenset({
    "Lock", "RLock", "Semaphore", "BoundedSemaphore", "Condition",
    "Event", "Barrier", "Queue", "SimpleQueue", "JoinableQueue",
})


@dataclass(frozen=True)
class ImportBinding:
    """One name bound by an import statement.

    ``import repro.runtime as rt``    -> ImportBinding("rt", "repro.runtime", None)
    ``from repro.trace import set_tracer`` -> ("set_tracer", "repro.trace", "set_tracer")
    ``from x import f as g``          -> ("g", "x", "f")
    """

    local: str
    module: str
    symbol: Optional[str] = None


@dataclass
class ClassInfo:
    """One class definition: its methods live in ``module.functions``
    under ``qualname.<method>``; ``bases`` hold the base-class names as
    written (resolved through imports on demand)."""

    module: "ModuleInfo"
    qualname: str
    node: ast.AST
    bases: List[str] = field(default_factory=list)
    #: ``self.<attr> = SomeClass(...)`` assignments seen in methods,
    #: attr name -> class name as written at the construction site.
    attr_types: Dict[str, str] = field(default_factory=dict)

    @property
    def key(self) -> str:
        return f"{self.module.name}.{self.qualname}"


@dataclass
class FunctionInfo:
    """One function or method, addressable project-wide by ``key``."""

    module: "ModuleInfo"
    qualname: str                       # "WorkerPool._spawn", "outer.inner"
    node: ast.AST
    nested: bool = False                # defined inside another function
    global_names: Set[str] = field(default_factory=set)

    @property
    def key(self) -> str:
        return f"{self.module.name}.{self.qualname}"


@dataclass
class MutableGlobal:
    """A module-level name bound at import time to mutable state."""

    module: "ModuleInfo"
    name: str
    node: ast.AST                       # the binding statement's value
    kind: str                           # container | instance | file | lock | tracer | pipe

    @property
    def fork_unsafe(self) -> bool:
        return self.kind in ("file", "lock", "tracer", "pipe")


def _dotted_name(node: ast.AST) -> str:
    """``a.b.C`` for a Name/Attribute chain, '' for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _classify_binding(value: ast.AST) -> Optional[str]:
    """Mutable-state classification of a module-level bound value."""
    if isinstance(value, (ast.Dict, ast.List, ast.Set,
                          ast.DictComp, ast.ListComp, ast.SetComp)):
        return "container"
    if isinstance(value, ast.Call):
        dotted = call_name(value)
        last = dotted.rsplit(".", 1)[-1]
        if last == "open":
            return "file"
        if last in _LOCK_FACTORIES:
            return "lock"
        if last == "Tracer":
            return "tracer"
        if last == "Pipe":
            return "pipe"
        if last in _MUTABLE_FACTORIES:
            return "container"
        if last[:1].isupper():
            # Approximation: a Capitalized call is an instantiation of
            # some class; treat the instance as mutable state.
            return "instance"
    return None


class ModuleInfo:
    """Symbol table and inventories for one parsed module."""

    def __init__(self, name: str, module: Module):
        self.name = name
        self.module = module
        self.imports: Dict[str, ImportBinding] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.mutable_globals: Dict[str, MutableGlobal] = {}
        #: Every module-level name bound by assignment (mutable or not);
        #: the ``global X`` rebinding check needs the full set.
        self.module_assigns: Set[str] = set()
        self._fn_by_node: Dict[int, FunctionInfo] = {}
        self._collect_imports()
        self._collect_functions(module.tree.body, prefix="", nested=False)
        self._collect_module_state()
        self._collect_global_decls()
        self._collect_attr_types()

    # -- collection ----------------------------------------------------

    def _collect_imports(self) -> None:
        for node in ast.walk(self.module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    self.imports[local] = ImportBinding(local, alias.name)
            elif isinstance(node, ast.ImportFrom):
                target = self._absolute_import(node)
                if target is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = ImportBinding(
                        local, target, alias.name
                    )

    def _absolute_import(self, node: ast.ImportFrom) -> Optional[str]:
        if not node.level:
            return node.module
        # Relative import: climb `level` packages from this module.
        parts = self.name.split(".")
        if node.level > len(parts):
            return None
        base = parts[: len(parts) - node.level]
        if node.module:
            base += node.module.split(".")
        return ".".join(base) if base else None

    def _collect_functions(
        self, body: List[ast.stmt], prefix: str, nested: bool
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{node.name}"
                info = FunctionInfo(self, qual, node, nested=nested)
                self.functions[qual] = info
                self._fn_by_node[id(node)] = info
                self._collect_functions(node.body, f"{qual}.", nested=True)
            elif isinstance(node, ast.ClassDef):
                qual = f"{prefix}{node.name}"
                bases = [
                    base_name
                    for base in node.bases
                    if (base_name := _dotted_name(base))
                ]
                self.classes[qual] = ClassInfo(self, qual, node, bases=bases)
                self._collect_functions(
                    node.body, f"{qual}.", nested=nested
                )
            elif isinstance(node, (ast.If, ast.Try)):
                # Conditional definitions (version guards) still count.
                for attr in ("body", "orelse", "finalbody"):
                    self._collect_functions(
                        getattr(node, attr, []) or [], prefix, nested
                    )
                for handler in getattr(node, "handlers", []) or []:
                    self._collect_functions(handler.body, prefix, nested)

    def _collect_module_state(self) -> None:
        for stmt in self.module.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                self.module_assigns.add(name)
                if name.startswith("__"):
                    continue  # __all__ and friends are metadata
                kind = _classify_binding(value)
                if kind is not None:
                    self.mutable_globals[name] = MutableGlobal(
                        self, name, value, kind
                    )

    def _collect_global_decls(self) -> None:
        for node in ast.walk(self.module.tree):
            if not isinstance(node, ast.Global):
                continue
            fn = self.function_at(node)
            if fn is not None:
                fn.global_names.update(node.names)

    def _collect_attr_types(self) -> None:
        """``self.x = SomeClass(...)`` in a method types attribute x."""
        for cls in self.classes.values():
            for node in ast.walk(cls.node):
                if not isinstance(node, ast.Assign) or not isinstance(
                    node.value, ast.Call
                ):
                    continue
                constructed = _dotted_name(node.value.func)
                if not constructed or not constructed.rsplit(".", 1)[-1][:1].isupper():
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        cls.attr_types.setdefault(target.attr, constructed)

    # -- queries ---------------------------------------------------------

    def function_at(self, node: ast.AST) -> Optional[FunctionInfo]:
        """The innermost function enclosing ``node`` (for a function
        definition node: the function it is nested in)."""
        current: Optional[ast.AST]
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            current = self.module.parent(node)
        else:
            current = node
        while current is not None:
            info = self._fn_by_node.get(id(current))
            if info is not None:
                return info
            current = self.module.parent(current)
        return None

    @property
    def is_trace_module(self) -> bool:
        return "trace" in self.module.segments


class ProjectModel:
    """The assembled whole-program view handed to phase-2 rules."""

    def __init__(self, scope_overrides: Optional[Dict[str, List[str]]] = None):
        self.modules: Dict[str, ModuleInfo] = {}
        self._by_rel_path: Dict[str, ModuleInfo] = {}
        self.scope_overrides: Dict[str, List[str]] = dict(scope_overrides or {})
        self._suffix_cache: Dict[str, Optional[ModuleInfo]] = {}
        self.import_graph: Dict[str, Set[str]] = {}
        self.call_graph = None                      # set by build()
        self.worker_entrypoints: Dict[str, str] = {}
        self.worker_reachable: Dict[str, str] = {}  # key -> entrypoint key
        #: Registered async request handlers (the service route table)
        #: and their call-graph closure — the SRV001 root set.
        self.handler_entrypoints: Dict[str, str] = {}
        self.handler_reachable: Dict[str, str] = {}  # key -> handler key

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        modules: List[Module],
        scope_overrides: Optional[Dict[str, List[str]]] = None,
    ) -> "ProjectModel":
        from repro.lint.callgraph import CallGraph

        project = cls(scope_overrides)
        for module in modules:
            info = ModuleInfo(cls.module_name(module.rel_path), module)
            project.modules[info.name] = info
            project._by_rel_path[module.rel_path] = info
        project._build_import_graph()
        project.call_graph = CallGraph.build(project)
        project.worker_entrypoints = dict(project.call_graph.entrypoints)
        project.worker_reachable = project.call_graph.reachable(
            set(project.worker_entrypoints)
        )
        project.handler_entrypoints = dict(
            project.call_graph.handler_entrypoints
        )
        project.handler_reachable = project.call_graph.reachable(
            set(project.handler_entrypoints)
        )
        return project

    @staticmethod
    def module_name(rel_path: str) -> str:
        """Dotted module name from a project-relative path.

        ``src/repro/runtime/pool.py`` -> ``repro.runtime.pool``;
        package ``__init__`` files name the package itself. Leading
        ``src`` components are dropped so names match import syntax.
        """
        parts = [p for p in rel_path.split("/") if p]
        if parts and parts[0] == "src":
            parts = parts[1:]
        if parts and parts[-1].endswith(".py"):
            parts[-1] = parts[-1][:-3]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def _build_import_graph(self) -> None:
        for info in self.modules.values():
            edges: Set[str] = set()
            for binding in info.imports.values():
                target = self.resolve_module(binding.module)
                if target is not None and target is not info:
                    edges.add(target.name)
            self.import_graph[info.name] = edges

    # -- resolution ----------------------------------------------------------

    def module_for_path(self, rel_path: str) -> Optional[Module]:
        info = self._by_rel_path.get(rel_path)
        return info.module if info is not None else None

    def info_for_path(self, rel_path: str) -> Optional[ModuleInfo]:
        return self._by_rel_path.get(rel_path)

    def resolve_module(self, dotted: str) -> Optional[ModuleInfo]:
        """The linted module a dotted import path refers to, if any.

        Exact name match first; otherwise a unique dotted-suffix match,
        which lets fixture trees (``raceproj.jobs``) resolve the same
        way ``repro.runtime.pool`` does under ``src/``.
        """
        if dotted in self._suffix_cache:
            return self._suffix_cache[dotted]
        result = self.modules.get(dotted)
        if result is None:
            suffix = "." + dotted
            candidates = [
                info for name, info in self.modules.items()
                if name.endswith(suffix)
            ]
            if len(candidates) == 1:
                result = candidates[0]
        self._suffix_cache[dotted] = result
        return result

    def resolve_function(
        self, module_dotted: str, symbol: str, _depth: int = 4
    ) -> Optional[FunctionInfo]:
        """A function by (module, name), following re-exports.

        ``from repro.trace import set_tracer`` resolves through the
        package ``__init__`` to ``repro.trace.tracer.set_tracer``.
        """
        if _depth <= 0:
            return None
        info = self.resolve_module(module_dotted)
        if info is None:
            return None
        fn = info.functions.get(symbol)
        if fn is not None:
            return fn
        binding = info.imports.get(symbol)
        if binding is not None and binding.symbol is not None:
            return self.resolve_function(
                binding.module, binding.symbol, _depth - 1
            )
        return None

    def resolve_class(
        self, info: ModuleInfo, dotted: str, _depth: int = 4
    ) -> Optional[ClassInfo]:
        """A class named in ``info``'s namespace (``Runner``,
        ``jobs.JobSpec``), following imports and re-exports."""
        if _depth <= 0 or not dotted:
            return None
        head, _, rest = dotted.partition(".")
        cls = info.classes.get(dotted)
        if cls is not None:
            return cls
        binding = info.imports.get(head)
        if binding is None:
            return None
        if binding.symbol is None:
            # `import repro.runtime.jobs as jobs; jobs.JobSpec`
            target = self.resolve_module(binding.module)
            if target is not None and rest:
                return self.resolve_class(target, rest, _depth - 1)
            return None
        # `from repro.runtime.jobs import JobSpec [as J]`
        target = self.resolve_module(binding.module)
        if target is None:
            return None
        inner = binding.symbol + (("." + rest) if rest else "")
        return self.resolve_class(target, inner, _depth - 1)

    def find_method(
        self, cls: ClassInfo, method: str, _depth: int = 6
    ) -> Optional[FunctionInfo]:
        """``cls.method``, walking base classes across modules."""
        if _depth <= 0:
            return None
        fn = cls.module.functions.get(f"{cls.qualname}.{method}")
        if fn is not None:
            return fn
        for base in cls.bases:
            base_cls = self.resolve_class(cls.module, base)
            if base_cls is not None:
                fn = self.find_method(base_cls, method, _depth - 1)
                if fn is not None:
                    return fn
        return None

    def class_of_expr(
        self, info: ModuleInfo, fn: Optional["FunctionInfo"], expr: ast.AST
    ) -> Optional[ClassInfo]:
        """Best-effort static type of an expression.

        Understands ``SomeClass(...)`` construction, names bound by a
        local ``x = SomeClass(...)`` or an annotated parameter/variable
        inside ``fn``, and ``self.attr`` where the enclosing class
        recorded ``self.attr = SomeClass(...)``.
        """
        if isinstance(expr, ast.Call):
            return self.resolve_class(info, _dotted_name(expr.func))
        if isinstance(expr, ast.Name) and fn is not None:
            annotation = self._local_type(fn, expr.id)
            if annotation:
                return self.resolve_class(info, annotation)
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and fn is not None
            and "." in fn.qualname
        ):
            cls = info.classes.get(fn.qualname.rsplit(".", 1)[0])
            if cls is not None:
                constructed = cls.attr_types.get(expr.attr)
                if constructed:
                    return self.resolve_class(info, constructed)
        return None

    @staticmethod
    def _local_type(fn: "FunctionInfo", name: str) -> str:
        """Annotation or construction class of a local name in ``fn``."""
        node = fn.node
        args = getattr(node, "args", None)
        if args is not None:
            every = (
                list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)
            )
            for arg in every:
                if arg.arg == name and arg.annotation is not None:
                    annotation = arg.annotation
                    if isinstance(annotation, ast.Constant) and isinstance(
                        annotation.value, str
                    ):
                        return annotation.value
                    return _dotted_name(annotation)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Call):
                for target in sub.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        return _dotted_name(sub.value.func)
            elif (
                isinstance(sub, ast.AnnAssign)
                and isinstance(sub.target, ast.Name)
                and sub.target.id == name
            ):
                return _dotted_name(sub.annotation)
        return ""

    def resolve_global(
        self, info: ModuleInfo, name: str
    ) -> Optional[MutableGlobal]:
        """A name in ``info``'s namespace as a module-level mutable —
        local to the module or imported from another linted module."""
        state = info.mutable_globals.get(name)
        if state is not None:
            return state
        binding = info.imports.get(name)
        if binding is not None and binding.symbol is not None:
            target = self.resolve_module(binding.module)
            if target is not None:
                state = target.mutable_globals.get(binding.symbol)
                if state is not None:
                    return state
                reexport = target.imports.get(binding.symbol)
                if reexport is not None and reexport.symbol is not None:
                    deeper = self.resolve_module(reexport.module)
                    if deeper is not None:
                        return deeper.mutable_globals.get(reexport.symbol)
        return None

    def functions(self) -> List[FunctionInfo]:
        out: List[FunctionInfo] = []
        for info in self.modules.values():
            out.extend(info.functions.values())
        return out
