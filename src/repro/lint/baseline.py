"""Baseline handling: grandfathered findings.

The baseline is a committed JSON file mapping finding *fingerprints*
(rule + path + enclosing symbol + message + occurrence index — line
numbers excluded, so unrelated edits do not invalidate it) to allowed
counts. A lint run fails only on findings **beyond** the baselined
counts; regenerating the baseline (``graphalytics lint
--write-baseline``) is an explicit, reviewable act.

Format history:

* **v1** keyed fingerprints *without* the occurrence index, so two
  identical findings in one function shared a single entry with count
  2 — and fixing one silently hid the other behind the survivor's
  budget. :func:`load_baseline` migrates v1 files on read by expanding
  each count into indexed fingerprints (``fp::0``, ``fp::1``, ...).
* **v2** (current) keys each occurrence individually; every count is 1.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.ioutil import atomic_write
from repro.lint.core import Finding

__all__ = [
    "load_baseline",
    "write_baseline",
    "partition_findings",
    "stale_entries",
]

_VERSION = 2


def _migrate_v1(fingerprints: Dict[str, int]) -> Dict[str, int]:
    """v1 entries lack the trailing occurrence index: expand each
    count-N entry into N indexed fingerprints with count 1."""
    migrated: Dict[str, int] = {}
    for fingerprint, count in fingerprints.items():
        for occurrence in range(max(int(count), 0)):
            migrated[f"{fingerprint}::{occurrence}"] = 1
    return migrated


def load_baseline(path: Optional[Path]) -> Dict[str, int]:
    """Fingerprint -> allowed count; empty when the file is absent."""
    if path is None or not Path(path).is_file():
        return {}
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"unreadable lint baseline {path}: {exc}") from exc
    version = payload.get("version")
    fingerprints = payload.get("fingerprints", {})
    entries = {str(k): int(v) for k, v in fingerprints.items()}
    if version == 1:
        return _migrate_v1(entries)
    if version != _VERSION:
        raise ConfigurationError(
            f"lint baseline {path} has unsupported version "
            f"{version!r} (expected {_VERSION})"
        )
    return entries


def write_baseline(path: Path, findings: Sequence[Finding]) -> Path:
    """Persist the current findings as the new baseline."""
    counts = Counter(f.fingerprint for f in findings)
    payload = {
        "version": _VERSION,
        "fingerprints": {k: counts[k] for k in sorted(counts)},
    }
    return atomic_write(Path(path), json.dumps(payload, indent=2) + "\n")


def partition_findings(
    findings: Sequence[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (new, baselined).

    Each fingerprint consumes baseline budget in source order; findings
    past the allowed count for their fingerprint are *new*.
    """
    remaining = dict(baseline)
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in findings:
        budget = remaining.get(finding.fingerprint, 0)
        if budget > 0:
            remaining[finding.fingerprint] = budget - 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    return new, grandfathered


def stale_entries(
    findings: Sequence[Finding], baseline: Dict[str, int]
) -> List[str]:
    """Baseline fingerprints with unconsumed budget: findings that were
    grandfathered but no longer occur. Stale entries are harmless in
    the short term but hide regressions — a fixed finding that comes
    back would be silently re-absorbed — so the CLI reports them and
    ``--write-baseline`` drops them."""
    remaining = Counter(baseline)
    remaining.subtract(Counter(f.fingerprint for f in findings))
    return sorted(k for k, v in remaining.items() if v > 0)
