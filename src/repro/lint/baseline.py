"""Baseline handling: grandfathered findings.

The baseline is a committed JSON file mapping finding *fingerprints*
(rule + path + enclosing symbol + message — line numbers excluded, so
unrelated edits do not invalidate it) to occurrence counts. A lint run
fails only on findings **beyond** the baselined counts; regenerating the
baseline (``graphalytics lint --write-baseline``) is an explicit,
reviewable act.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.ioutil import atomic_write
from repro.lint.core import Finding

__all__ = ["load_baseline", "write_baseline", "partition_findings"]

_VERSION = 1


def load_baseline(path: Optional[Path]) -> Dict[str, int]:
    """Fingerprint -> allowed count; empty when the file is absent."""
    if path is None or not Path(path).is_file():
        return {}
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"unreadable lint baseline {path}: {exc}") from exc
    if payload.get("version") != _VERSION:
        raise ConfigurationError(
            f"lint baseline {path} has unsupported version "
            f"{payload.get('version')!r} (expected {_VERSION})"
        )
    fingerprints = payload.get("fingerprints", {})
    return {str(k): int(v) for k, v in fingerprints.items()}


def write_baseline(path: Path, findings: Sequence[Finding]) -> Path:
    """Persist the current findings as the new baseline."""
    counts = Counter(f.fingerprint for f in findings)
    payload = {
        "version": _VERSION,
        "fingerprints": {k: counts[k] for k in sorted(counts)},
    }
    return atomic_write(Path(path), json.dumps(payload, indent=2) + "\n")


def partition_findings(
    findings: Sequence[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (new, baselined).

    Each fingerprint consumes baseline budget in source order; findings
    past the allowed count for their fingerprint are *new*.
    """
    remaining = dict(baseline)
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in findings:
        budget = remaining.get(finding.fingerprint, 0)
        if budget > 0:
            remaining[finding.fingerprint] = budget - 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    return new, grandfathered
