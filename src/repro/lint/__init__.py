"""repro.lint — determinism & benchmark-conformance static analysis.

Graphalytics' validity rests on invariants no unit test can observe
from the outside: the six kernels must be deterministic (paper §2.2),
vertex programs must respect the Pregel/GAS state contract, drivers
must execute through the harness lifecycle, and reported numbers must
come from the metered §2.3 metric implementations. This package
enforces those invariants as an AST-based lint pass over the repro
sources:

    >>> from repro.lint import LintEngine, load_config
    >>> engine = LintEngine(load_config())
    >>> findings = engine.run(["src/repro"])

Exposed on the command line as ``graphalytics lint`` (exit code 1 on
findings beyond the committed baseline) and as the ``lint`` probe of
``graphalytics selfcheck``. See ``docs/lint.md``.
"""

from repro.lint.baseline import (
    load_baseline,
    partition_findings,
    stale_entries,
    write_baseline,
)
from repro.lint.config import LintConfig, find_project_root, load_config
from repro.lint.core import (
    Finding,
    LintEngine,
    Module,
    Rule,
    Severity,
    all_rules,
    get_rule,
    register_rule,
)
from repro.lint.project import ProjectModel
from repro.lint.report import render_json, render_text

__all__ = [
    "Finding",
    "LintEngine",
    "LintConfig",
    "Module",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "register_rule",
    "load_config",
    "find_project_root",
    "load_baseline",
    "write_baseline",
    "partition_findings",
    "stale_entries",
    "ProjectModel",
    "render_text",
    "render_json",
]
