"""The approximate call graph over a :class:`~repro.lint.project.ProjectModel`.

Nodes are project functions keyed by ``module.qualname``
(``repro.runtime.pool._worker_main``). Edges come from one walk over
every module's AST, resolving each call through the per-module symbol
tables:

* ``helper(...)``          — sibling nested function, then module-level
  function, then an imported symbol (re-exports followed);
* ``mod.helper(...)``      — ``mod`` bound by ``import``;
* ``self.meth(...)`` / ``cls.meth(...)`` — method of the enclosing class;
* a nested ``def`` adds an edge from the definer to the nested function
  (if the outer function runs, the inner one may).

The graph also records **worker entrypoints** — the fork boundary the
RACE rules reason about: any function passed as ``target=`` to a
``*.Process(...)`` call, and any function shipped through a
``*.send(...)`` pipe payload (a callable dispatched to the other side).

It separately records **handler entrypoints** — async request handlers
registered through a ``*_add_route(...)``/``add_route(...)`` call (the
service's route table). Handlers are reachability roots of a different
kind than fork entrypoints: they run *inside* the server's event loop,
so the SRV001 rule polices them for blocking calls rather than for
fork-divergent state.

What the resolver deliberately does *not* see: calls through
containers or arbitrary object attributes, ``getattr``-style dynamic
dispatch, decorators that swap the function object, and methods called
on values whose class it cannot name. Rules built on the graph are
therefore under-approximate — they miss exotic call paths rather than
invent false ones.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.lint.core import call_name
from repro.lint.project import FunctionInfo, ModuleInfo, ProjectModel

__all__ = ["CallSite", "CallGraph"]


@dataclass
class CallSite:
    """One resolved call expression inside a project function."""

    caller: str            # FunctionInfo.key
    callee: str            # FunctionInfo.key
    node: ast.Call


class CallGraph:
    """Adjacency over project functions plus the fork-entrypoint set."""

    def __init__(self) -> None:
        self.nodes: Dict[str, FunctionInfo] = {}
        self.edges: Dict[str, Set[str]] = {}
        self.reverse: Dict[str, Set[str]] = {}
        self.call_sites: List[CallSite] = []
        #: entrypoint key -> how it was detected ("Process target" /
        #: "pipe-dispatched callable").
        self.entrypoints: Dict[str, str] = {}
        #: async request handlers registered via *add_route: key -> how.
        self.handler_entrypoints: Dict[str, str] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, project: ProjectModel) -> "CallGraph":
        graph = cls()
        for info in project.modules.values():
            for fn in info.functions.values():
                graph.nodes[fn.key] = fn
                graph.edges.setdefault(fn.key, set())
                graph.reverse.setdefault(fn.key, set())
        for info in project.modules.values():
            graph._walk_module(project, info)
        return graph

    def _add_edge(self, caller: Optional[FunctionInfo], callee: FunctionInfo,
                  node: Optional[ast.Call] = None) -> None:
        if caller is None:
            return
        self.edges.setdefault(caller.key, set()).add(callee.key)
        self.reverse.setdefault(callee.key, set()).add(caller.key)
        if node is not None:
            self.call_sites.append(CallSite(caller.key, callee.key, node))

    def _walk_module(self, project: ProjectModel, info: ModuleInfo) -> None:
        for node in ast.walk(info.module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                outer = info.function_at(node)
                inner = info.functions.get(
                    self._qualname_of(info, node)
                ) if outer is not None else None
                if outer is not None and inner is not None:
                    self._add_edge(outer, inner)
                continue
            if not isinstance(node, ast.Call):
                continue
            caller = info.function_at(node)
            callee = self.resolve_call(project, info, caller, node)
            if callee is not None:
                self._add_edge(caller, callee, node)
            self._detect_entrypoints(project, info, caller, node)

    @staticmethod
    def _qualname_of(info: ModuleInfo, node: ast.AST) -> str:
        """Recover a def node's qualname via its registered FunctionInfo."""
        for qual, fn in info.functions.items():
            if fn.node is node:
                return qual
        return getattr(node, "name", "")

    # -- resolution ------------------------------------------------------

    def resolve_call(
        self,
        project: ProjectModel,
        info: ModuleInfo,
        caller: Optional[FunctionInfo],
        call: ast.Call,
    ) -> Optional[FunctionInfo]:
        func = call.func
        if isinstance(func, ast.Name):
            return self.resolve_name(project, info, caller, func.id)
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        if isinstance(func.value, ast.Name):
            base = func.value.id
            if base in ("self", "cls") and caller is not None:
                prefix = caller.qualname.rsplit(".", 1)[0]
                if prefix and prefix != caller.qualname:
                    cls = info.classes.get(prefix)
                    if cls is not None:
                        method = project.find_method(cls, attr)
                        if method is not None:
                            return method
                    return info.functions.get(f"{prefix}.{attr}")
                return None
            binding = info.imports.get(base)
            if binding is not None and binding.symbol is None:
                resolved = project.resolve_function(binding.module, attr)
                if resolved is not None:
                    return resolved
        # Typed receiver: `runner.run_job(...)` where the resolver knows
        # runner's class from an annotation, a local construction, or a
        # recorded `self.attr = Class(...)`.
        receiver = project.class_of_expr(info, caller, func.value)
        if receiver is not None:
            return project.find_method(receiver, attr)
        return None

    def resolve_name(
        self,
        project: ProjectModel,
        info: ModuleInfo,
        caller: Optional[FunctionInfo],
        name: str,
    ) -> Optional[FunctionInfo]:
        """A bare name in ``caller``'s scope, as a project function."""
        if caller is not None:
            parts = caller.qualname.split(".")
            for cut in range(len(parts), 0, -1):
                candidate = ".".join(parts[:cut] + [name])
                fn = info.functions.get(candidate)
                if fn is not None:
                    return fn
        fn = info.functions.get(name)
        if fn is not None:
            return fn
        binding = info.imports.get(name)
        if binding is not None and binding.symbol is not None:
            return project.resolve_function(binding.module, binding.symbol)
        return None

    # -- entrypoints -------------------------------------------------------

    def _detect_entrypoints(
        self,
        project: ProjectModel,
        info: ModuleInfo,
        caller: Optional[FunctionInfo],
        call: ast.Call,
    ) -> None:
        dotted = call_name(call)
        last = dotted.rsplit(".", 1)[-1]
        if last in ("_add_route", "add_route"):
            # Route registration: the handler is the last positional
            # argument (or an explicit handler= keyword). Registered
            # handlers are the async-entrypoint family SRV001 roots on.
            candidates: List[ast.AST] = []
            if call.args:
                candidates.append(call.args[-1])
            for keyword in call.keywords:
                if keyword.arg == "handler":
                    candidates.append(keyword.value)
            for candidate in candidates:
                fn = self._resolve_function_ref(
                    project, info, caller, candidate
                )
                if fn is not None:
                    self.handler_entrypoints.setdefault(
                        fn.key, "registered request handler"
                    )
            return
        if last == "Process":
            for keyword in call.keywords:
                if keyword.arg != "target":
                    continue
                target = keyword.value
                if isinstance(target, ast.Name):
                    fn = self.resolve_name(project, info, caller, target.id)
                    if fn is not None:
                        self.entrypoints.setdefault(fn.key, "Process target")
            return
        if isinstance(call.func, ast.Attribute) and call.func.attr == "send":
            for arg in call.args:
                # A name that is itself *called* inside the payload is
                # not dispatched — only bare function references are.
                called = {
                    id(sub.func)
                    for sub in ast.walk(arg)
                    if isinstance(sub, ast.Call)
                }
                for sub in ast.walk(arg):
                    if not isinstance(sub, ast.Name) or id(sub) in called:
                        continue
                    fn = self.resolve_name(project, info, caller, sub.id)
                    if fn is not None:
                        self.entrypoints.setdefault(
                            fn.key, "pipe-dispatched callable"
                        )

    def _resolve_function_ref(
        self,
        project: ProjectModel,
        info: ModuleInfo,
        caller: Optional[FunctionInfo],
        expr: ast.AST,
    ) -> Optional[FunctionInfo]:
        """A *reference* (not a call) to a project function: a bare
        name, or ``self.method``/``cls.method`` of the enclosing class."""
        if isinstance(expr, ast.Name):
            return self.resolve_name(project, info, caller, expr.id)
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id in ("self", "cls")
            and caller is not None
        ):
            prefix = caller.qualname.rsplit(".", 1)[0]
            if prefix and prefix != caller.qualname:
                cls = info.classes.get(prefix)
                if cls is not None:
                    method = project.find_method(cls, expr.attr)
                    if method is not None:
                        return method
                return info.functions.get(f"{prefix}.{expr.attr}")
        return None

    # -- traversal ---------------------------------------------------------

    def reachable(self, roots: Set[str]) -> Dict[str, str]:
        """Every function reachable from ``roots`` (roots included),
        mapped to the root it was first discovered from."""
        origin: Dict[str, str] = {}
        queue = deque()
        for root in sorted(roots):
            if root in self.nodes and root not in origin:
                origin[root] = root
                queue.append(root)
        while queue:
            current = queue.popleft()
            for nxt in sorted(self.edges.get(current, ())):
                if nxt not in origin:
                    origin[nxt] = origin[current]
                    queue.append(nxt)
        return origin

    def reaches(self, targets: Set[str]) -> Set[str]:
        """Every function from which some target is reachable
        (targets included) — reverse-edge closure."""
        seen: Set[str] = set()
        queue = deque(t for t in sorted(targets) if t in self.nodes)
        seen.update(queue)
        while queue:
            current = queue.popleft()
            for prev in sorted(self.reverse.get(current, ())):
                if prev not in seen:
                    seen.add(prev)
                    queue.append(prev)
        return seen
