"""Programming-model engines (paper requirement R1).

"For platforms, we do not distinguish between programming model and
support different models, including vertex-centric, gather-apply-
scatter, and sparse matrix operations." (§2.1)

The six simulated platforms *model* those systems; this package makes
the programming models themselves executable, in miniature:

* :mod:`repro.engines.pregel` — Giraph's model: superstep-synchronous
  vertex programs exchanging messages, voting to halt;
* :mod:`repro.engines.gas` — PowerGraph's model: gather / apply /
  scatter over vertex neighborhoods with selective activation;
* :mod:`repro.engines.spmv` — GraphMat's model: iterated generalized
  sparse-matrix–vector products over algebraic semirings.

Every engine implements the applicable core algorithms, and the test
suite proves each implementation output-equivalent to the reference
kernels under the Graphalytics validation rules — the concrete meaning
of "the definition of the algorithms of Graphalytics is abstract"
(§2.2.3): one abstract task, three programming models, identical output.
"""

from repro.engines.pregel import PregelEngine, VertexProgram
from repro.engines.gas import GASEngine, GASProgram
from repro.engines.spmv import SpMVEngine, Semiring

__all__ = [
    "PregelEngine",
    "VertexProgram",
    "GASEngine",
    "GASProgram",
    "SpMVEngine",
    "Semiring",
]
