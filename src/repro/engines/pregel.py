"""A miniature Pregel engine: Giraph's vertex-centric model.

Execution follows Malewicz et al. (SIGMOD 2010): computation proceeds in
synchronous *supersteps*; in each superstep every active vertex runs the
same ``compute`` function, reading the messages sent to it in the
previous superstep and sending messages along out-edges; a vertex votes
to halt and is re-activated only by incoming messages. The job ends when
every vertex has halted and no messages are in flight (or a superstep
limit is reached, for fixed-iteration algorithms like PageRank).

The engine is sequential but semantically faithful: per-superstep
message delivery, halting, and re-activation behave exactly like the
distributed original, which is what makes the bundled vertex programs
(BFS, SSSP, WCC, CDLP, PR) legitimate examples of the programming model.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, GraphFormatError
from repro.graph.graph import Graph

__all__ = [
    "Aggregator",
    "Combiner",
    "MIN_COMBINER",
    "HISTOGRAM_COMBINER",
    "VertexContext",
    "VertexProgram",
    "PregelEngine",
    "bfs_program",
    "sssp_program",
    "wcc_program",
    "cdlp_program",
    "pagerank_program",
]


@dataclass(frozen=True)
class Aggregator:
    """A Pregel aggregator (Malewicz et al. §3.3).

    Values a vertex contributes via :meth:`VertexContext.aggregate`
    during superstep S are combined with ``combine`` (which must be
    commutative and associative) and become visible to every vertex via
    :meth:`VertexContext.aggregated` in superstep S+1. This is the
    *only* sanctioned global channel for vertex programs — writing to
    closures or globals from ``compute`` breaks the superstep barrier
    (enforced by lint rule CON001).
    """

    initial: object
    combine: Callable[[object, object], object]


@dataclass(frozen=True)
class Combiner:
    """A Pregel message combiner (Malewicz et al. §3.2).

    A combiner lets the system merge the messages bound for one vertex
    *before* they cross a process boundary, cutting exchange volume.
    ``merge`` must be commutative and associative **and exact** (bit-for-
    bit independent of merge order): min over numbers and integer
    histogram addition qualify; float summation does not — a program
    whose message reduction is inexact (PageRank) declares no combiner
    and its messages travel individually, delivered in the canonical
    (sender, emission) order.

    ``lift`` maps one message onto the combined ("wire") representation;
    ``expand`` maps a wire value back to the message list the vertex
    program observes. The contract: for any message multiset M and any
    partition/merge tree over it, ``compute`` must behave identically on
    ``expand(merge-fold(lift(M)))`` and on M itself.
    """

    name: str
    lift: Callable[[object], object]
    merge: Callable[[object, object], object]
    expand: Callable[[object], List[object]]


def _expand_histogram(wire: object) -> List[object]:
    counts: Counter = wire  # type: ignore[assignment]
    expanded: List[object] = []
    for label in sorted(counts):
        expanded.extend([label] * counts[label])
    return expanded


#: Exact min-combining: BFS depths, SSSP distances, WCC labels.
MIN_COMBINER = Combiner(
    name="min",
    lift=lambda message: message,
    merge=min,
    expand=lambda wire: [wire],
)

#: Exact histogram-combining: CDLP label counts (integer addition).
HISTOGRAM_COMBINER = Combiner(
    name="histogram",
    lift=lambda message: Counter({message: 1}),
    merge=lambda a, b: a + b,
    expand=_expand_histogram,
)


@dataclass
class VertexContext:
    """Everything a vertex program may touch during one superstep."""

    graph: Graph
    vertex: int                     # dense index
    vertex_id: int                  # external id
    superstep: int
    value: object
    num_vertices: int
    out_neighbors: np.ndarray       # dense indices
    out_weights: Optional[np.ndarray]
    _outbox: List[Tuple[int, object]] = field(default_factory=list)
    _halted: bool = False
    _aggregator_defs: Dict[str, Aggregator] = field(default_factory=dict)
    _aggregated_prev: Dict[str, object] = field(default_factory=dict)
    _aggregated_next: Dict[str, object] = field(default_factory=dict)

    def send_message_to(self, target: int, message: object) -> None:
        """Queue a message for delivery in the next superstep."""
        self._outbox.append((int(target), message))

    def send_message_to_all_neighbors(self, message: object) -> None:
        for target in self.out_neighbors:
            self._outbox.append((int(target), message))

    def vote_to_halt(self) -> None:
        self._halted = True

    def aggregate(self, name: str, value: object) -> None:
        """Contribute a value to an aggregator for the *next* superstep."""
        try:
            combine = self._aggregator_defs[name].combine
        except KeyError:
            raise ConfigurationError(
                f"program declares no aggregator {name!r}"
            ) from None
        self._aggregated_next[name] = combine(
            self._aggregated_next[name], value
        )

    def aggregated(self, name: str) -> object:
        """An aggregator's value as of the end of the previous superstep."""
        try:
            return self._aggregated_prev[name]
        except KeyError:
            raise ConfigurationError(
                f"program declares no aggregator {name!r}"
            ) from None


@dataclass(frozen=True)
class VertexProgram:
    """One vertex-centric algorithm.

    ``init`` produces each vertex's initial value; ``compute`` is the
    per-superstep kernel (mutates ``ctx.value``, sends messages, votes
    to halt). ``max_supersteps`` bounds fixed-iteration programs.
    ``aggregators`` declares the engine-managed global channels
    available through ``ctx.aggregate``/``ctx.aggregated``.
    """

    name: str
    init: Callable[[Graph, int], object]
    compute: Callable[[VertexContext, List[object]], None]
    max_supersteps: Optional[int] = None
    aggregators: Dict[str, Aggregator] = field(default_factory=dict)
    #: Optional exact message combiner a distributed executor may apply
    #: before the wire; the sequential engine ignores it (delivering the
    #: raw messages is observationally identical, per the contract).
    combiner: Optional[Combiner] = None


class PregelEngine:
    """Superstep-synchronous executor for vertex programs.

    After :meth:`run`, :attr:`superstep_seconds` holds the measured
    wall-clock of each superstep — the raw material for Granula's
    per-superstep processing breakdown (see
    :func:`repro.granula.archiver.attach_superstep_breakdown`).
    """

    def __init__(self, graph: Graph):
        self.graph = graph
        self._reverse_indptr = graph.in_indptr
        self._reverse_indices = graph.in_indices
        self.superstep_seconds: List[float] = []

    def run(self, program: VertexProgram, *, superstep_limit: int = 10_000):
        """Execute to global halt; returns (values array, supersteps run)."""
        from repro.trace import current_tracer

        tracer = current_tracer()
        graph = self.graph
        n = graph.num_vertices
        values: List[object] = [
            program.init(graph, v) for v in range(n)
        ]
        active = np.ones(n, dtype=bool)
        inbox: Dict[int, List[object]] = defaultdict(list)
        limit = program.max_supersteps or superstep_limit
        supersteps = 0
        self.superstep_seconds = []
        aggregated = {
            name: agg.initial for name, agg in sorted(program.aggregators.items())
        }
        for superstep in range(limit):
            if not active.any() and not inbox:
                break
            supersteps += 1
            superstep_span = tracer.start_span(
                "superstep", attributes={"engine": "pregel", "index": superstep}
            )
            outbox: Dict[int, List[object]] = defaultdict(list)
            next_active = np.zeros(n, dtype=bool)
            # Aggregator values contributed this superstep; the engine
            # swaps them in at the superstep barrier below.
            aggregating = {
                name: agg.initial for name, agg in sorted(program.aggregators.items())
            }
            workset = set(np.nonzero(active)[0].tolist()) | set(inbox)
            for v in sorted(workset):
                messages = inbox.get(v, [])
                nbrs, weights = graph.out_edges(v)
                ctx = VertexContext(
                    graph=graph,
                    vertex=v,
                    vertex_id=int(graph.vertex_ids[v]),
                    superstep=superstep,
                    value=values[v],
                    num_vertices=n,
                    out_neighbors=nbrs,
                    out_weights=weights,
                    _aggregator_defs=program.aggregators,
                    _aggregated_prev=aggregated,
                    _aggregated_next=aggregating,
                )
                program.compute(ctx, messages)
                values[v] = ctx.value
                for target, message in ctx._outbox:
                    outbox[target].append(message)
                if not ctx._halted:
                    next_active[v] = True
            inbox = outbox
            active = next_active
            aggregated = aggregating
            tracer.end_span(superstep_span)
            self.superstep_seconds.append(superstep_span.duration)
        return values, supersteps


def _as_array(values: Iterable, dtype) -> np.ndarray:
    return np.array(list(values), dtype=dtype)


# -- vertex programs ---------------------------------------------------------

def bfs_program(graph: Graph, source: int) -> Tuple[VertexProgram, Callable]:
    """Frontier-by-message BFS; value = hop count (max int64 = unreached)."""
    if not graph.has_vertex(source):
        raise GraphFormatError(f"BFS source vertex {source} not in graph")
    root = graph.index_of(source)
    unreached = np.iinfo(np.int64).max

    def init(g: Graph, v: int):
        return 0 if v == root else unreached

    def compute(ctx: VertexContext, messages: List[object]) -> None:
        if ctx.superstep == 0:
            if ctx.value == 0:
                ctx.send_message_to_all_neighbors(1)
            ctx.vote_to_halt()
            return
        if messages:
            depth = min(messages)
            if depth < ctx.value:
                ctx.value = depth
                ctx.send_message_to_all_neighbors(depth + 1)
        ctx.vote_to_halt()

    program = VertexProgram("bfs", init, compute, combiner=MIN_COMBINER)
    return program, lambda values: _as_array(values, np.int64)


def sssp_program(graph: Graph, source: int) -> Tuple[VertexProgram, Callable]:
    """Pregel SSSP: relax on message, propagate distance + edge weight."""
    if not graph.is_weighted:
        raise GraphFormatError("SSSP requires a weighted graph")
    if not graph.has_vertex(source):
        raise GraphFormatError(f"SSSP source vertex {source} not in graph")
    root = graph.index_of(source)

    def init(g: Graph, v: int):
        return 0.0 if v == root else float("inf")

    def compute(ctx: VertexContext, messages: List[object]) -> None:
        best = min(messages) if messages else float("inf")
        if ctx.superstep == 0 and ctx.value == 0.0:
            best = 0.0
        if best < ctx.value or (ctx.superstep == 0 and ctx.value == 0.0):
            ctx.value = min(ctx.value, best)
            for nbr, weight in zip(ctx.out_neighbors, ctx.out_weights):
                ctx.send_message_to(int(nbr), ctx.value + float(weight))
        ctx.vote_to_halt()

    program = VertexProgram("sssp", init, compute, combiner=MIN_COMBINER)
    return program, lambda values: _as_array(values, np.float64)


def wcc_program(graph: Graph) -> Tuple[VertexProgram, Callable]:
    """HashMin WCC: propagate the smallest known id (both directions)."""

    def init(g: Graph, v: int):
        return int(g.vertex_ids[v])

    # Symmetric neighbor lists (cached): messages flow along both edge
    # directions so direction is ignored (weak connectivity).
    symmetric: Dict[int, np.ndarray] = {}

    def neighbors_of(g: Graph, v: int) -> np.ndarray:
        if v not in symmetric:
            symmetric[v] = np.union1d(g.out_neighbors(v), g.in_neighbors(v))
        return symmetric[v]

    def compute(ctx: VertexContext, messages: List[object]) -> None:
        candidate = min(messages) if messages else ctx.value
        if ctx.superstep == 0 or candidate < ctx.value:
            ctx.value = min(ctx.value, candidate)
            for nbr in neighbors_of(ctx.graph, ctx.vertex):
                ctx.send_message_to(int(nbr), ctx.value)
        ctx.vote_to_halt()

    program = VertexProgram("wcc", init, compute, combiner=MIN_COMBINER)
    return program, lambda values: _as_array(values, np.int64)


def cdlp_program(graph: Graph, iterations: int) -> Tuple[VertexProgram, Callable]:
    """Synchronous label propagation with the deterministic tie-break."""

    def init(g: Graph, v: int):
        return int(g.vertex_ids[v])

    symmetric: Dict[int, List[int]] = {}

    def targets_of(g: Graph, v: int) -> List[int]:
        # Send to everyone who should hear this vertex's label: out- and
        # in-neighbors (bidirectional pairs receive twice, per the spec).
        if v not in symmetric:
            symmetric[v] = (
                g.out_neighbors(v).tolist() + g.in_neighbors(v).tolist()
                if g.directed
                else g.out_neighbors(v).tolist()
            )
        return symmetric[v]

    def compute(ctx: VertexContext, messages: List[object]) -> None:
        if ctx.superstep > 0 and messages:
            counts = Counter(messages)
            best = max(counts.values())
            ctx.value = min(
                label for label, count in counts.items() if count == best
            )
        if ctx.superstep < iterations:
            for target in targets_of(ctx.graph, ctx.vertex):
                ctx.send_message_to(int(target), ctx.value)
        else:
            ctx.vote_to_halt()

    program = VertexProgram(
        "cdlp", init, compute, max_supersteps=iterations + 1,
        combiner=HISTOGRAM_COMBINER,
    )
    return program, lambda values: _as_array(values, np.int64)


def pagerank_program(
    graph: Graph, iterations: int, damping: float = 0.85
) -> Tuple[VertexProgram, Callable]:
    """Fixed-superstep PageRank with dangling-mass redistribution.

    Dangling vertices cannot message "everyone" cheaply in Pregel, so —
    exactly like Giraph implementations — their mass flows through an
    engine-managed :class:`Aggregator` and is folded in during the next
    superstep.
    """
    n = graph.num_vertices

    def init(g: Graph, v: int):
        return 1.0 / n

    def compute(ctx: VertexContext, messages: List[object]) -> None:
        if ctx.superstep > 0:
            incoming = sum(messages)
            dangling_share = ctx.aggregated("dangling") / n
            ctx.value = (1.0 - damping) / n + damping * (
                incoming + dangling_share
            )
        if ctx.superstep < iterations:
            degree = len(ctx.out_neighbors)
            if degree:
                share = ctx.value / degree
                ctx.send_message_to_all_neighbors(share)
            else:
                ctx.aggregate("dangling", ctx.value)
        else:
            ctx.vote_to_halt()

    program = VertexProgram(
        "pr", init, compute, max_supersteps=iterations + 1,
        aggregators={"dangling": Aggregator(0.0, lambda a, b: a + b)},
    )
    return program, lambda values: _as_array(values, np.float64)


# -- convenience front-ends -------------------------------------------------------

def run_bfs(graph: Graph, source: int) -> np.ndarray:
    program, finalize = bfs_program(graph, source)
    values, _ = PregelEngine(graph).run(program)
    return finalize(values)


def run_sssp(graph: Graph, source: int) -> np.ndarray:
    program, finalize = sssp_program(graph, source)
    values, _ = PregelEngine(graph).run(program)
    return finalize(values)


def run_wcc(graph: Graph) -> np.ndarray:
    program, finalize = wcc_program(graph)
    values, _ = PregelEngine(graph).run(program)
    return finalize(values)


def run_cdlp(graph: Graph, iterations: int = 10) -> np.ndarray:
    program, finalize = cdlp_program(graph, iterations)
    values, _ = PregelEngine(graph).run(program)
    return finalize(values)


def run_pagerank(graph: Graph, iterations: int = 30, damping: float = 0.85) -> np.ndarray:
    program, finalize = pagerank_program(graph, iterations, damping)
    values, _ = PregelEngine(graph).run(program)
    return finalize(values)
