"""Picklable program specs and their per-process builders.

Vertex programs and GAS programs are built from closures (a BFS program
closes over its root index), so the program *objects* cannot cross a
``Pipe`` (lint rule RACE002 forbids unpicklable payloads in sends). The
partitioned engine therefore ships a :class:`ProgramSpec` — pure data:
execution model, algorithm acronym, parameters — and every shard
rebuilds its program locally from the spec and its own copy of the
graph. Determinism is free: the builders are pure functions of
(graph, spec), so every shard and the coordinator agree on the program
byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.engines import gas, pregel
from repro.exceptions import ConfigurationError
from repro.graph.graph import Graph

__all__ = [
    "PREGEL_ALGORITHMS",
    "GAS_ALGORITHMS",
    "ProgramSpec",
    "GasPlan",
    "build_pregel_program",
    "build_gas_plan",
    "spec_for",
]

#: Algorithms each model can execute in partitioned mode.
PREGEL_ALGORITHMS = ("bfs", "pr", "wcc", "cdlp", "sssp")
GAS_ALGORITHMS = ("bfs", "pr", "wcc", "cdlp", "sssp")


@dataclass(frozen=True)
class ProgramSpec:
    """One partitioned-execution request, as pure picklable data.

    ``params`` is a sorted tuple of (name, value) pairs so specs hash
    and compare structurally (and survive pickling unchanged).
    """

    model: str                # "pregel" | "gas" | "lcc"
    algorithm: str            # Graphalytics acronym
    params: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(cls, model: str, algorithm: str, **params: object) -> "ProgramSpec":
        return cls(
            model=model,
            algorithm=algorithm.lower(),
            params=tuple(sorted(params.items())),
        )

    def param(self, name: str, default: object = None) -> object:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def require(self, name: str) -> object:
        value = self.param(name, default=None)
        if value is None:
            raise ConfigurationError(
                f"{self.model}/{self.algorithm} requires parameter {name!r}"
            )
        return value


def build_pregel_program(
    spec: ProgramSpec, graph: Graph
) -> Tuple[pregel.VertexProgram, Callable]:
    """(VertexProgram, finalize) for a spec — identical on every process."""
    algorithm = spec.algorithm
    if algorithm == "bfs":
        return pregel.bfs_program(graph, int(spec.require("source_vertex")))
    if algorithm == "sssp":
        return pregel.sssp_program(graph, int(spec.require("source_vertex")))
    if algorithm == "wcc":
        return pregel.wcc_program(graph)
    if algorithm == "cdlp":
        return pregel.cdlp_program(graph, int(spec.param("iterations", 10)))
    if algorithm == "pr":
        return pregel.pagerank_program(
            graph,
            int(spec.param("iterations", 30)),
            float(spec.param("damping", 0.85)),
        )
    raise ConfigurationError(
        f"pregel model cannot execute algorithm {algorithm!r}; "
        f"known: {', '.join(PREGEL_ALGORITHMS)}"
    )


@dataclass(frozen=True)
class GasPlan:
    """A GAS execution plan: the program plus how to drive it.

    ``mode`` selects the engine loop — ``active`` (label-correcting
    rounds until the active set drains) or ``sync`` (fixed synchronous
    sweeps). PageRank is coordinator-driven (``mode="pr"``): the global
    dangling-mass fold between sweeps belongs to the coordinator, so
    shards only run the gather kernel and carry no program.
    """

    mode: str                                  # "active" | "sync" | "pr"
    program: Optional[gas.GASProgram]
    iterations: int
    finalize: Callable


def build_gas_plan(spec: ProgramSpec, graph: Graph) -> GasPlan:
    algorithm = spec.algorithm
    if algorithm == "bfs":
        program, finalize = gas.bfs_gas_program(
            graph, int(spec.require("source_vertex"))
        )
        return GasPlan("active", program, 0, finalize)
    if algorithm == "sssp":
        program, finalize = gas.sssp_gas_program(
            graph, int(spec.require("source_vertex"))
        )
        return GasPlan("active", program, 0, finalize)
    if algorithm == "wcc":
        program, finalize = gas.wcc_gas_program(graph)
        return GasPlan("active", program, 0, finalize)
    if algorithm == "cdlp":
        iterations = int(spec.param("iterations", 10))
        program, finalize = gas.cdlp_gas_program(graph, iterations)
        return GasPlan("sync", program, iterations, finalize)
    if algorithm == "pr":
        return GasPlan(
            "pr", None, int(spec.param("iterations", 30)),
            lambda values: np.asarray(values, dtype=np.float64),
        )
    raise ConfigurationError(
        f"gas model cannot execute algorithm {algorithm!r}; "
        f"known: {', '.join(GAS_ALGORITHMS)}"
    )


def spec_for(algorithm: str, params: Optional[Dict[str, object]] = None,
             *, model: str = "auto") -> ProgramSpec:
    """Default spec for an algorithm acronym (CLI/driver entry path)."""
    algorithm = algorithm.lower()
    if model == "auto":
        model = "lcc" if algorithm == "lcc" else "pregel"
    return ProgramSpec.make(model, algorithm, **dict(params or {}))
