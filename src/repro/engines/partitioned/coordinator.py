"""The partitioned coordinator: barriers, routing, merge, supervision.

:class:`PartitionedEngine` drives shards through superstep-synchronous
barriers. Each barrier:

1. **compute** — every shard runs its slice (a ``shard-compute`` span,
   rebased onto the coordinator's timeline via the clock-offset
   handshake);
2. **exchange** — the coordinator routes outbound message batches to
   their destination shards and folds aggregator contributions in
   global sorted order (an ``exchange`` span);
3. **barrier-wait** — per shard, the gap between its reply and the
   slowest shard's reply (one ``barrier-wait`` span per shard): the
   straggler cost that strong-scaling curves are made of.

Two transports run the same :class:`~repro.engines.partitioned.shard.
ShardState` logic: ``inline`` (in-process, for fast deterministic
tests) and ``pipes`` (real fork-context worker processes with the
runtime pool's private-pipe discipline). The pipes transport is
supervised: every reply carries a barrier-time snapshot, so when a
shard dies mid-superstep (crash, OOM kill, chaos plan) the coordinator
respawns it, restores the last snapshot, re-sends the in-flight
command — bounded by a :class:`~repro.service.supervise.RetryPolicy`
budget — and the run completes bit-identically.
"""

from __future__ import annotations

import multiprocessing.connection
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engines.partitioned.exchange import MessageBatch
from repro.engines.partitioned.partition import PartitionSet, partition_graph
from repro.engines.partitioned.programs import (
    ProgramSpec,
    build_gas_plan,
    build_pregel_program,
)
from repro.engines.partitioned.shard import (
    ShardState,
    graph_payload,
    shard_main,
)
from repro.exceptions import ConfigurationError, GraphalyticsError
from repro.graph.graph import Graph
from repro.runtime.pool import default_mp_context
from repro.service.supervise import RetryPolicy
from repro.trace import Span, current_tracer, rebase_spans

__all__ = ["PartitionedEngine", "ShardFailure"]


class ShardFailure(GraphalyticsError):
    """A shard failed permanently (bug, or supervision budget spent)."""


class _InlineTransport:
    """Shards as in-process objects: same logic, no processes.

    The parity matrix runs through this — partition, exchange, merge,
    and termination behavior are identical to pipes; only the process
    boundary (and therefore supervision) is elided.
    """

    def __init__(self, graph: Graph, partition_set: PartitionSet, spec: ProgramSpec):
        self.shards: Dict[int, ShardState] = {
            p.shard_id: ShardState(
                graph, p.shard_id, p.owned, partition_set.owner,
                partition_set.num_shards, spec,
            )
            for p in partition_set.shards
        }

    def exchange(
        self, commands: Dict[int, Dict[str, object]], parent_span=None
    ) -> Dict[int, Dict[str, object]]:
        tracer = current_tracer()
        bodies: Dict[int, Dict[str, object]] = {}
        for shard_id in sorted(commands):
            with tracer.span(
                "shard-compute", shard=shard_id,
                cmd=commands[shard_id]["cmd"],
                superstep=commands[shard_id].get("superstep"),
            ):
                bodies[shard_id] = self.shards[shard_id].apply_command(
                    commands[shard_id]
                )
        return bodies

    def shutdown(self) -> None:
        self.shards.clear()


class _ShardHandle:
    """Bookkeeping for one shard worker process."""

    def __init__(self, shard_id: int):
        self.shard_id = shard_id
        self.process = None
        self.task_send = None
        self.result_recv = None
        self.attempts = 1

    def close(self) -> None:
        for conn_name in ("task_send", "result_recv"):
            conn = getattr(self, conn_name)
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
                setattr(self, conn_name, None)


class _PipesTransport:
    """Shards as worker processes behind private pipes, supervised."""

    def __init__(
        self,
        graph: Graph,
        partition_set: PartitionSet,
        spec: ProgramSpec,
        *,
        retry: RetryPolicy,
        chaos_plan: Optional[Dict[str, object]] = None,
        context=None,
    ):
        self.partition_set = partition_set
        self.spec = spec
        self.retry = retry
        self.chaos_plan = chaos_plan
        self.clock = current_tracer().clock
        self._ctx = context or default_mp_context()
        self._graph_payload = graph_payload(graph)
        self._handles: Dict[int, _ShardHandle] = {}
        self._snapshots: Dict[int, Dict[str, object]] = {}
        self.respawns = 0
        for p in partition_set.shards:
            handle = _ShardHandle(p.shard_id)
            self._handles[p.shard_id] = handle
            self._spawn(handle)
            # First launch arms the chaos plan; relaunches never re-arm
            # it (fault counters are per-process — re-arming would kill
            # every attempt and defeat supervision).
            self._send(p.shard_id, self._init_payload(p.shard_id, chaos=chaos_plan))
        self._await_replies(dict.fromkeys(self._handles, None), parent_span=None)

    # -- process lifecycle -------------------------------------------------

    def _spawn(self, handle: _ShardHandle) -> None:
        handle.close()
        result_recv, result_send = self._ctx.Pipe(duplex=False)
        task_recv, task_send = self._ctx.Pipe(duplex=False)
        handle.task_send = task_send
        handle.result_recv = result_recv
        handle.process = self._ctx.Process(
            target=shard_main,
            name=f"graphalytics-shard-{handle.shard_id}",
            args=(handle.shard_id, task_recv, result_send),
            daemon=True,
        )
        handle.process.start()
        # Close the parent's copies of the child-held ends so EOF is
        # observable on both sides (same discipline as the worker pool).
        result_send.close()
        task_recv.close()

    def _init_payload(
        self, shard_id: int, *, chaos=None, restore=None
    ) -> Dict[str, object]:
        partition = self.partition_set.shards[shard_id]
        return {
            "cmd": "init",
            "graph": self._graph_payload,
            "owned": partition.owned,
            "owner": self.partition_set.owner,
            "num_shards": self.partition_set.num_shards,
            "spec": self.spec,
            "chaos": chaos,
            "restore": restore,
        }

    def _send(self, shard_id: int, payload: Dict[str, object]) -> None:
        # The coordinator-clock send stamp; the shard subtracts its own
        # receive stamp to produce the rebase offset for its spans.
        self._handles[shard_id].task_send.send((payload, self.clock.now()))

    # -- supervised exchange ----------------------------------------------

    def exchange(
        self, commands: Dict[int, Dict[str, object]], parent_span=None
    ) -> Dict[int, Dict[str, object]]:
        for shard_id in sorted(commands):
            self._send(shard_id, commands[shard_id])
        return self._await_replies(commands, parent_span=parent_span)

    def _await_replies(
        self,
        outstanding: Dict[int, Optional[Dict[str, object]]],
        *,
        parent_span,
    ) -> Dict[int, Dict[str, object]]:
        """Collect one reply per shard, supervising deaths.

        ``outstanding`` maps shard id -> the in-flight command (``None``
        during init, which needs no resend payload — a shard that dies
        in init is re-inited directly). Emits per-shard ``barrier-wait``
        spans once the last reply lands.
        """
        tracer = current_tracer()
        outstanding = dict(outstanding)
        bodies: Dict[int, Dict[str, object]] = {}
        arrivals: Dict[int, float] = {}
        while outstanding:
            conns = {
                handle.result_recv: shard_id
                for shard_id, handle in sorted(self._handles.items())
                if shard_id in outstanding and handle.result_recv is not None
            }
            ready = multiprocessing.connection.wait(list(conns), timeout=0.25)
            for conn in ready:
                shard_id = conns[conn]
                try:
                    envelope = conn.recv()
                except (EOFError, OSError):
                    self._handles[shard_id].close()
                    continue  # death handled by the liveness sweep below
                self._ingest(
                    shard_id, envelope, bodies, arrivals, outstanding,
                    parent_span, tracer,
                )
            for shard_id in sorted(outstanding):
                handle = self._handles[shard_id]
                if handle.process is not None and handle.process.is_alive():
                    continue
                # Dead — but drain any reply that beat the death.
                drained = False
                if handle.result_recv is not None and handle.result_recv.poll(0):
                    try:
                        envelope = handle.result_recv.recv()
                    except (EOFError, OSError):
                        envelope = None
                    if envelope is not None:
                        self._ingest(
                            shard_id, envelope, bodies, arrivals,
                            outstanding, parent_span, tracer,
                        )
                        drained = True
                if not drained:
                    self._supervise(shard_id, outstanding.get(shard_id))
        if parent_span is not None and arrivals:
            barrier_end = max(arrivals.values())
            for shard_id, arrived in sorted(arrivals.items()):
                tracer.record(
                    Span(
                        name="barrier-wait",
                        span_id=tracer._new_id(),
                        trace_id=tracer.trace_id,
                        parent_id=parent_span.span_id,
                        start=arrived,
                        end=barrier_end,
                        process=tracer.process,
                        attributes={"shard": shard_id},
                    )
                )
        return bodies

    def _ingest(
        self, shard_id, envelope, bodies, arrivals, outstanding,
        parent_span, tracer,
    ) -> None:
        if envelope.get("event") == "fail":
            raise ShardFailure(
                f"shard {shard_id} failed: {envelope.get('detail')}\n"
                f"{envelope.get('traceback', '')}"
            )
        if envelope.get("cmd") != "init":
            self._snapshots[shard_id] = envelope.get("snapshot") or {}
        elif shard_id not in self._snapshots:
            # The post-init snapshot covers a death during superstep 0.
            self._snapshots[shard_id] = envelope.get("snapshot") or {}
        offset = float(envelope.get("clock_offset", 0.0))
        shard_spans = [
            Span.from_dict(record) for record in envelope.get("spans", [])
        ]
        for span in rebase_spans(shard_spans, offset, parent=parent_span):
            tracer.record(span)
        bodies[shard_id] = envelope.get("body") or {}
        arrivals[shard_id] = tracer.clock.now()
        outstanding.pop(shard_id, None)

    def _supervise(self, shard_id: int, inflight: Optional[Dict[str, object]]) -> None:
        """A shard died holding a command: respawn, restore, resend."""
        handle = self._handles[shard_id]
        handle.attempts += 1
        if self.retry.exhausted(handle.attempts):
            raise ShardFailure(
                f"shard {shard_id} died {handle.attempts} times; "
                f"supervision budget ({self.retry.max_attempts}) spent"
            )
        self.clock.sleep(self.retry.backoff(handle.attempts - 1))
        self.respawns += 1
        self._spawn(handle)
        self._send(
            shard_id,
            self._init_payload(
                shard_id, chaos=None, restore=self._snapshots.get(shard_id),
            ),
        )
        # Block for the init ack, then re-send the in-flight command;
        # the outer loop keeps waiting for its reply as usual.
        while True:
            if handle.result_recv.poll(0.25):
                try:
                    ack = handle.result_recv.recv()
                except (EOFError, OSError):
                    ack = None
                if ack is not None and ack.get("event") == "fail":
                    raise ShardFailure(
                        f"shard {shard_id} failed during supervised re-init: "
                        f"{ack.get('detail')}"
                    )
                if ack is not None:
                    break
            if handle.process is None or not handle.process.is_alive():
                # Died again before acking init — recurse into the
                # budget-bounded path.
                self._supervise(shard_id, inflight)
                return
        if inflight is not None:
            self._send(shard_id, inflight)

    def shutdown(self) -> None:
        for shard_id in sorted(self._handles):
            handle = self._handles[shard_id]
            if handle.process is not None and handle.process.is_alive():
                try:
                    handle.task_send.send(None)
                except (OSError, ValueError):
                    handle.process.terminate()
        for shard_id in sorted(self._handles):
            handle = self._handles[shard_id]
            if handle.process is not None:
                handle.process.join(timeout=5.0)
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=5.0)
            handle.close()
        self._handles.clear()


class PartitionedEngine:
    """Vertex-partitioned execution of the Pregel/GAS/LCC kernels.

    Bit-identity contract: for any ``partitions`` count and either
    partition ``strategy``, the returned array is byte-for-byte equal to
    the corresponding single-process engine's (enforced by
    ``tests/engines/test_partitioned_parity.py``).
    """

    def __init__(
        self,
        graph: Graph,
        *,
        partitions: int = 2,
        strategy: str = "hash",
        transport: str = "pipes",
        chaos_plan: Optional[Dict[str, object]] = None,
        retry: Optional[RetryPolicy] = None,
        context=None,
    ):
        self.graph = graph
        self.partition_set = partition_graph(graph, partitions, strategy)
        self.transport_kind = transport
        self.chaos_plan = chaos_plan
        self.retry = retry or RetryPolicy(max_attempts=3, backoff_base=0.05)
        self._context = context
        if transport not in ("pipes", "inline"):
            raise ConfigurationError(
                f"unknown partitioned transport {transport!r}"
            )
        #: Superstep/round count of the last run (parity with the
        #: sequential engines' second return value).
        self.supersteps = 0
        #: Supervised shard relaunches during the last run.
        self.respawns = 0

    # -- entry point -------------------------------------------------------

    def run(self, spec: ProgramSpec, *, superstep_limit: int = 10_000) -> np.ndarray:
        tracer = current_tracer()
        transport = self._make_transport(spec)
        try:
            with tracer.span(
                "partitioned",
                model=spec.model,
                algorithm=spec.algorithm,
                shards=self.partition_set.num_shards,
                strategy=self.partition_set.strategy,
                transport=self.transport_kind,
            ):
                if spec.model == "pregel":
                    return self._run_pregel(spec, transport, superstep_limit)
                if spec.model == "lcc":
                    return self._run_lcc(transport)
                plan = build_gas_plan(spec, self.graph)
                if plan.mode == "active":
                    return self._run_gas_active(plan, transport)
                if plan.mode == "sync":
                    return self._run_gas_sync(plan, transport)
                return self._run_gas_pr(spec, plan, transport)
        finally:
            self.respawns = getattr(transport, "respawns", 0)
            transport.shutdown()

    def _make_transport(self, spec: ProgramSpec):
        if self.transport_kind == "inline":
            return _InlineTransport(self.graph, self.partition_set, spec)
        return _PipesTransport(
            self.graph, self.partition_set, spec,
            retry=self.retry, chaos_plan=self.chaos_plan,
            context=self._context,
        )

    # -- pregel ------------------------------------------------------------

    def _run_pregel(self, spec, transport, superstep_limit: int) -> np.ndarray:
        graph = self.graph
        tracer = current_tracer()
        program, finalize = build_pregel_program(spec, graph)
        shard_ids = sorted(s.shard_id for s in self.partition_set.shards)
        aggregated = {
            name: agg.initial for name, agg in sorted(program.aggregators.items())
        }
        pending: Dict[int, List[MessageBatch]] = {}
        shard_active = dict.fromkeys(shard_ids, True)
        limit = program.max_supersteps or superstep_limit
        self.supersteps = 0
        for superstep in range(limit):
            if not any(shard_active.values()) and not pending:
                break
            self.supersteps += 1
            superstep_span = tracer.start_span(
                "superstep",
                attributes={
                    "engine": "partitioned-pregel", "index": superstep,
                    "shards": len(shard_ids),
                },
                push=True,
            )
            commands = {
                shard_id: {
                    "cmd": "step",
                    "superstep": superstep,
                    "aggregated": aggregated,
                    "batches": pending.get(shard_id, []),
                }
                for shard_id in shard_ids
            }
            bodies = transport.exchange(commands, parent_span=superstep_span)
            with tracer.span("exchange", index=superstep) as exchange_span:
                pending = {}
                contributions = []
                messages = 0
                for shard_id in shard_ids:
                    body = bodies[shard_id]
                    shard_active[shard_id] = bool(body.get("active"))
                    messages += int(body.get("messages_sent", 0))
                    for batch in body.get("batches", []):
                        pending.setdefault(batch.dst_shard, []).append(batch)
                    contributions.extend(body.get("contributions", []))
                # Canonical batch order (redundant given deliver()'s
                # order-independence, but it keeps wire traffic and
                # traces reproducible byte for byte).
                for dst_shard in sorted(pending):
                    pending[dst_shard].sort(key=lambda b: b.src_shard)
                aggregated = self._fold_aggregators(program, contributions)
                exchange_span.attributes["messages"] = messages
                exchange_span.attributes["batches"] = sum(
                    len(pending[dst_shard]) for dst_shard in sorted(pending)
                )
            tracer.end_span(superstep_span)
        return finalize(self._collect(transport))

    @staticmethod
    def _fold_aggregators(program, contributions) -> Dict[str, object]:
        """Fold raw per-vertex contributions in the sequential order.

        Sorted by (vertex, seq) per aggregator and folded left from the
        initial value — exactly the order the single-process engine
        folds in (vertices ascending, emissions in call order), so even
        non-associative float addition lands on identical bits.
        """
        aggregated = {
            name: agg.initial for name, agg in sorted(program.aggregators.items())
        }
        per_name: Dict[str, List[Tuple[int, int, object]]] = {}
        for name, vertex, seq, value in contributions:
            per_name.setdefault(name, []).append((vertex, seq, value))
        for name, records in sorted(per_name.items()):
            records.sort(key=lambda record: (record[0], record[1]))
            combine = program.aggregators[name].combine
            folded = aggregated[name]
            for _, _, value in records:
                folded = combine(folded, value)
            aggregated[name] = folded
        return aggregated

    # -- gas ---------------------------------------------------------------

    def _run_gas_active(self, plan, transport) -> np.ndarray:
        graph = self.graph
        tracer = current_tracer()
        shard_ids = sorted(s.shard_id for s in self.partition_set.shards)
        owner = self.partition_set.owner
        values = [plan.program.init(graph, v) for v in range(graph.num_vertices)]
        updates: List[Tuple[int, object]] = []
        activate: Dict[int, List[int]] = {}
        self.supersteps = 0
        first = True
        while first or activate:
            round_index = self.supersteps
            self.supersteps += 1
            round_span = tracer.start_span(
                "superstep",
                attributes={
                    "engine": "partitioned-gas", "index": round_index,
                    "shards": len(shard_ids),
                },
                push=True,
            )
            commands = {
                shard_id: {
                    "cmd": "gas-round",
                    "round": round_index,
                    "updates": updates,
                    "activate": activate.get(shard_id, []),
                }
                for shard_id in shard_ids
            }
            bodies = transport.exchange(commands, parent_span=round_span)
            with tracer.span("exchange", index=round_index) as exchange_span:
                updates = []
                activations = set()
                for shard_id in shard_ids:
                    body = bodies[shard_id]
                    updates.extend(body.get("changes", []))
                    activations.update(body.get("activations", []))
                updates.sort(key=lambda change: change[0])
                for v, value in updates:
                    values[int(v)] = value
                activate = {}
                for v in sorted(activations):
                    activate.setdefault(int(owner[v]), []).append(int(v))
                exchange_span.attributes["updates"] = len(updates)
                exchange_span.attributes["activations"] = len(activations)
            tracer.end_span(round_span)
            first = False
        return plan.finalize(values)

    def _run_gas_sync(self, plan, transport) -> np.ndarray:
        graph = self.graph
        tracer = current_tracer()
        shard_ids = sorted(s.shard_id for s in self.partition_set.shards)
        values = [plan.program.init(graph, v) for v in range(graph.num_vertices)]
        updates: List[Tuple[int, object]] = []
        self.supersteps = 0
        for iteration in range(plan.iterations):
            self.supersteps += 1
            round_span = tracer.start_span(
                "superstep",
                attributes={
                    "engine": "partitioned-gas", "index": iteration,
                    "shards": len(shard_ids),
                },
                push=True,
            )
            commands = {
                shard_id: {
                    "cmd": "gas-sweep",
                    "iteration": iteration,
                    "updates": updates,
                }
                for shard_id in shard_ids
            }
            bodies = transport.exchange(commands, parent_span=round_span)
            with tracer.span("exchange", index=iteration) as exchange_span:
                updates = []
                for shard_id in shard_ids:
                    updates.extend(bodies[shard_id].get("changes", []))
                updates.sort(key=lambda change: change[0])
                for v, value in updates:
                    values[int(v)] = value
                exchange_span.attributes["updates"] = len(updates)
            tracer.end_span(round_span)
        return plan.finalize(values)

    def _run_gas_pr(self, spec, plan, transport) -> np.ndarray:
        """Coordinator-driven PageRank sweeps (the GAS front-end's loop).

        The shards run only the in-edge gather fold; the numpy rank
        update and the dangling-mass fold happen here with the exact
        operations of :func:`repro.engines.gas.run_pagerank` — which is
        what makes the output bit-identical.
        """
        graph = self.graph
        tracer = current_tracer()
        n = graph.num_vertices
        if n == 0:
            return np.empty(0, dtype=np.float64)
        damping = float(spec.param("damping", 0.85))
        shard_ids = sorted(s.shard_id for s in self.partition_set.shards)
        out_degree = graph.out_degrees().astype(np.float64)
        dangling = out_degree == 0
        rank = np.full(n, 1.0 / n, dtype=np.float64)
        base = (1.0 - damping) / n
        self.supersteps = 0
        for iteration in range(plan.iterations):
            self.supersteps += 1
            round_span = tracer.start_span(
                "superstep",
                attributes={
                    "engine": "partitioned-gas", "index": iteration,
                    "shards": len(shard_ids),
                },
                push=True,
            )
            contrib = np.zeros(n, dtype=np.float64)
            np.divide(rank, out_degree, out=contrib, where=~dangling)
            commands = {
                shard_id: {"cmd": "pr-gather", "contrib": contrib.tolist()}
                for shard_id in shard_ids
            }
            bodies = transport.exchange(commands, parent_span=round_span)
            with tracer.span("exchange", index=iteration):
                gathered = [0.0] * n
                for shard_id in shard_ids:
                    for v, total in bodies[shard_id].get("gathered", []):
                        gathered[int(v)] = total
                dangling_share = rank[dangling].sum() / n
                rank = base + damping * (np.array(gathered) + dangling_share)
            tracer.end_span(round_span)
        return rank

    # -- lcc / merge -------------------------------------------------------

    def _run_lcc(self, transport) -> np.ndarray:
        shard_ids = sorted(s.shard_id for s in self.partition_set.shards)
        commands = {shard_id: {"cmd": "lcc"} for shard_id in shard_ids}
        bodies = transport.exchange(commands, parent_span=None)
        result = np.zeros(self.graph.num_vertices, dtype=np.float64)
        for shard_id in shard_ids:
            for v, value in bodies[shard_id].get("values", []):
                result[int(v)] = value
        self.supersteps = 1
        return result

    def _collect(self, transport) -> List[object]:
        """Deterministic merge: every vertex from exactly its owner."""
        shard_ids = sorted(s.shard_id for s in self.partition_set.shards)
        commands = {shard_id: {"cmd": "collect"} for shard_id in shard_ids}
        bodies = transport.exchange(commands, parent_span=None)
        values: List[object] = [None] * self.graph.num_vertices
        for shard_id in shard_ids:
            for v, value in bodies[shard_id].get("values", []):
                values[int(v)] = value
        return values
