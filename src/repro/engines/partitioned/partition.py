"""Edge-cut vertex partitioning for the sharded execution mode.

The modeled partitioners in :mod:`repro.platforms.partitioning` answer
"how would a cluster place this graph?" for the calibrated performance
models; this module answers the operational question the partitioned
*engine* asks: which shard owns each vertex, which edges cross shards,
and which remote vertices each shard must hear about. Two strategies
hide behind one interface:

* **hash** — a vertex is owned by ``mix64(external_id) % shards``
  (Giraph's default placement). Ownership depends only on the external
  identifier and the shard count, so it is stable across processes,
  runs, and Python hash randomization.
* **range** — contiguous blocks of the dense index space, sized within
  one vertex of each other (GraphMat-style blocked placement; best
  locality for generator-ordered vertex ids).

Both produce a :class:`PartitionSet` whose invariants are enforced by
the parity suite's property tests: every vertex owned exactly once,
every cut edge mirrored on both incident shards, and shard sizes within
the strategy's balance bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graph.graph import Graph

__all__ = [
    "PARTITION_STRATEGIES",
    "Partition",
    "PartitionSet",
    "partition_graph",
]

#: Strategy names accepted by :func:`partition_graph`.
PARTITION_STRATEGIES = ("hash", "range")

#: splitmix64 multipliers: a fast, well-mixed integer hash whose output
#: is a pure function of the input (no per-process salt).
_MIX_M1 = 0xBF58476D1CE4E5B9
_MIX_M2 = 0x94D049BB133111EB
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _mix64(value: int) -> int:
    """splitmix64 finalizer: deterministic, salt-free 64-bit mixing."""
    value = (value ^ (value >> 30)) * _MIX_M1 & _MASK64
    value = (value ^ (value >> 27)) * _MIX_M2 & _MASK64
    return (value ^ (value >> 31)) & _MASK64


@dataclass(frozen=True)
class Partition:
    """One shard's slice of the vertex space.

    ``owned`` holds the shard's vertices as sorted **dense** indices of
    the full graph; ``mirrors`` the sorted dense indices of remote
    vertices adjacent (either direction) to an owned vertex — exactly
    the vertices whose state or messages this shard exchanges across
    the cut.
    """

    shard_id: int
    num_shards: int
    strategy: str
    owned: np.ndarray
    mirrors: np.ndarray

    @property
    def size(self) -> int:
        return int(len(self.owned))


@dataclass(frozen=True)
class PartitionSet:
    """A complete edge-cut partitioning of one graph."""

    strategy: str
    num_shards: int
    #: dense index -> owning shard, for every vertex.
    owner: np.ndarray
    shards: Tuple[Partition, ...]
    #: Logical edges whose endpoints live on different shards.
    cut_edges: int
    #: Logical edge count of the partitioned graph.
    num_edges: int

    def owner_of(self, vertex: int) -> int:
        return int(self.owner[vertex])

    @property
    def cut_fraction(self) -> float:
        return float(self.cut_edges / self.num_edges) if self.num_edges else 0.0

    def balance_bound(self) -> int:
        """Largest shard size the strategy guarantees (enforced by tests).

        ``range`` packs shards within one vertex of each other. ``hash``
        is statistical: the bound is the mean plus a generous deviation
        allowance — seeded test graphs either satisfy it deterministically
        or the strategy's mixing is broken.
        """
        n = len(self.owner)
        mean = n / self.num_shards if self.num_shards else 0
        if self.strategy == "range":
            return int(np.ceil(mean)) if n else 0
        return int(np.ceil(mean + 4.0 * np.sqrt(max(mean, 1.0)) + 1.0))

    def as_dict(self) -> Dict[str, object]:
        """Summary payload for traces, benches, and reports."""
        sizes = [shard.size for shard in self.shards]
        return {
            "strategy": self.strategy,
            "shards": self.num_shards,
            "sizes": sizes,
            "cut_edges": self.cut_edges,
            "mirrors": [int(len(shard.mirrors)) for shard in self.shards],
        }


def _owners_hash(graph: Graph, num_shards: int) -> np.ndarray:
    ids = graph.vertex_ids
    owners = np.empty(len(ids), dtype=np.int64)
    for index in range(len(ids)):
        owners[index] = _mix64(int(ids[index])) % num_shards
    return owners


def _owners_range(graph: Graph, num_shards: int) -> np.ndarray:
    n = graph.num_vertices
    # Blocks within one vertex of each other: the first (n % shards)
    # blocks take the extra vertex.
    base, extra = divmod(n, num_shards)
    owners = np.empty(n, dtype=np.int64)
    start = 0
    for shard in range(num_shards):
        size = base + (1 if shard < extra else 0)
        owners[start:start + size] = shard
        start += size
    return owners


def partition_graph(
    graph: Graph, num_shards: int, strategy: str = "hash"
) -> PartitionSet:
    """Assign every vertex to a shard and derive the cut structure."""
    if num_shards < 1:
        raise ConfigurationError("num_shards must be >= 1")
    if strategy not in PARTITION_STRATEGIES:
        raise ConfigurationError(
            f"unknown partition strategy {strategy!r}; "
            f"known: {', '.join(PARTITION_STRATEGIES)}"
        )
    if strategy == "hash":
        owners = _owners_hash(graph, num_shards)
    else:
        owners = _owners_range(graph, num_shards)

    src, dst = graph.edge_src, graph.edge_dst
    cut_mask = owners[src] != owners[dst] if len(src) else np.zeros(0, dtype=bool)
    cut_edges = int(np.count_nonzero(cut_mask))

    # Mirrors: for each shard, the remote endpoints of its cut edges —
    # computed once over the edge list (both directions: a shard owning
    # either endpoint mirrors the other).
    mirror_sets: List[set] = [set() for _ in range(num_shards)]
    if cut_edges:
        cut_src = src[cut_mask]
        cut_dst = dst[cut_mask]
        for u, v in zip(cut_src.tolist(), cut_dst.tolist()):
            mirror_sets[int(owners[u])].add(int(v))
            mirror_sets[int(owners[v])].add(int(u))

    shards = []
    for shard_id in range(num_shards):
        owned = np.nonzero(owners == shard_id)[0].astype(np.int64)
        mirrors = np.array(sorted(mirror_sets[shard_id]), dtype=np.int64)
        shards.append(
            Partition(
                shard_id=shard_id,
                num_shards=num_shards,
                strategy=strategy,
                owned=owned,
                mirrors=mirrors,
            )
        )
    return PartitionSet(
        strategy=strategy,
        num_shards=num_shards,
        owner=owners,
        shards=tuple(shards),
        cut_edges=cut_edges,
        num_edges=graph.num_edges,
    )
