"""One shard: per-partition execution state and the worker entrypoint.

:class:`ShardState` is the whole of a shard's behavior — build the
local program from the spec, run one Pregel superstep / GAS round /
GAS sweep / PR gather / LCC slice over the *owned* vertices, and pack
the results for the barrier. It is transport-agnostic: the inline
transport calls it in-process (fast deterministic tests), and
:func:`shard_main` wraps it in the runtime pool's worker discipline —
private task/result pipes, the orphan guard, a per-process tracer whose
spans ship home with the clock-offset handshake, and a
``partitioned.shard.step`` fault-point check that lets a chaos plan
SIGKILL the shard mid-superstep.

Bit-identity invariants enforced here:

* owned vertices are processed in ascending dense-index order, so the
  union of shard worksets is processed in exactly the sequential
  engine's order;
* aggregator contributions are *recorded raw* (never pre-folded on the
  shard) as ``(vertex, seq, value)`` — the coordinator folds them in
  global sorted order from the aggregator's initial value, reproducing
  the sequential fold even for non-associative float addition;
* GAS rounds gather against the last-barrier value table (pure Jacobi)
  — never a mid-round update — so results cannot depend on which shard
  a neighbor landed on.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engines.gas import GASEngine
from repro.engines.partitioned.exchange import MessageBatch, Outbox, deliver
from repro.engines.partitioned.programs import (
    GasPlan,
    ProgramSpec,
    build_gas_plan,
    build_pregel_program,
)
from repro.engines.pregel import Aggregator, VertexContext
from repro.exceptions import ConfigurationError
from repro.faults.points import check
from repro.graph.graph import Graph
from repro.trace import Tracer, set_tracer

__all__ = ["STEP_FAULT_POINT", "ShardState", "shard_main", "graph_payload", "graph_from_payload"]

#: Name in :data:`repro.faults.points.FAULT_POINTS`; checked before each
#: compute command so a chaos plan can kill a shard mid-superstep.
STEP_FAULT_POINT = "partitioned.shard.step"


def graph_payload(graph: Graph) -> Dict[str, object]:
    """The constructor arrays of a graph, as a picklable dict."""
    return {
        "vertex_ids": graph.vertex_ids,
        "src": graph.edge_src,
        "dst": graph.edge_dst,
        "directed": graph.directed,
        "weights": graph.edge_weights,
        "name": graph.name,
    }


def graph_from_payload(payload: Dict[str, object]) -> Graph:
    return Graph(
        vertex_ids=payload["vertex_ids"],
        src=payload["src"],
        dst=payload["dst"],
        directed=bool(payload["directed"]),
        weights=payload["weights"],
        name=str(payload["name"]),
    )


class ShardState:
    """Execution state of one shard for one partitioned run."""

    def __init__(
        self,
        graph: Graph,
        shard_id: int,
        owned: Sequence[int],
        owner: np.ndarray,
        num_shards: int,
        spec: ProgramSpec,
    ):
        self.graph = graph
        self.shard_id = int(shard_id)
        self.owned = sorted(int(v) for v in owned)
        self.owner = np.asarray(owner, dtype=np.int64)
        self.num_shards = int(num_shards)
        self.spec = spec
        self.model = spec.model

        if self.model == "pregel":
            self.program, _ = build_pregel_program(spec, graph)
            self.values: Dict[int, object] = {
                v: self.program.init(graph, v) for v in self.owned
            }
            self.active = set(self.owned)
            # Recording aggregator defs: `ctx.aggregate` folds into
            # `_aggregated_next[name]` with the def's combine — tuple
            # append records raw contributions instead of folding, so
            # the coordinator can fold them in the global order.
            self._recording_defs = {
                name: Aggregator(initial=(), combine=lambda acc, value: acc + (value,))
                for name in self.program.aggregators
            }
        elif self.model == "gas":
            self.plan: GasPlan = build_gas_plan(spec, graph)
            self._gas_engine = GASEngine(graph)
            if self.plan.mode != "pr":
                # Every shard derives the same full value table from the
                # deterministic init; the barrier keeps them in lockstep.
                self.table: List[object] = [
                    self.plan.program.init(graph, v)
                    for v in range(graph.num_vertices)
                ]
            self.gas_active = set(self.owned)
        elif self.model == "lcc":
            pass
        else:
            raise ConfigurationError(
                f"unknown partitioned execution model {self.model!r}"
            )

    # -- command dispatch --------------------------------------------------

    def apply_command(self, payload: Dict[str, object]) -> Dict[str, object]:
        cmd = payload["cmd"]
        if cmd == "step":
            return self.pregel_superstep(
                int(payload["superstep"]),
                dict(payload["aggregated"]),
                list(payload["batches"]),
            )
        if cmd == "gas-round":
            return self.gas_round(
                list(payload["updates"]), list(payload["activate"])
            )
        if cmd == "gas-sweep":
            return self.gas_sweep(list(payload["updates"]))
        if cmd == "pr-gather":
            return self.pr_gather(list(payload["contrib"]))
        if cmd == "lcc":
            return self.lcc()
        if cmd == "collect":
            return self.collect()
        raise ConfigurationError(f"unknown shard command {cmd!r}")

    # -- pregel ------------------------------------------------------------

    def pregel_superstep(
        self,
        superstep: int,
        aggregated: Dict[str, object],
        batches: List[MessageBatch],
    ) -> Dict[str, object]:
        """Run one superstep over the owned slice of the workset."""
        graph = self.graph
        program = self.program
        inbox = deliver(batches, program.combiner)
        outbox = Outbox(
            self.owner, self.num_shards, self.shard_id, superstep,
            program.combiner,
        )
        contributions: List[Tuple[str, int, int, object]] = []
        next_active = set()
        workset = sorted(self.active | set(inbox))
        for v in workset:
            recording_next = {name: () for name in self._recording_defs}
            nbrs, weights = graph.out_edges(v)
            ctx = VertexContext(
                graph=graph,
                vertex=v,
                vertex_id=int(graph.vertex_ids[v]),
                superstep=superstep,
                value=self.values[v],
                num_vertices=graph.num_vertices,
                out_neighbors=nbrs,
                out_weights=weights,
                _aggregator_defs=self._recording_defs,
                _aggregated_prev=aggregated,
                _aggregated_next=recording_next,
            )
            program.compute(ctx, inbox.get(v, []))
            self.values[v] = ctx.value
            for target, message in ctx._outbox:
                outbox.send(v, target, message)
            if not ctx._halted:
                next_active.add(v)
            for name in sorted(recording_next):
                for seq, value in enumerate(recording_next[name]):
                    contributions.append((name, v, seq, value))
        self.active = next_active
        return {
            "batches": outbox.batches(),
            "contributions": contributions,
            "active": bool(next_active),
            "messages_sent": outbox.messages_sent,
        }

    # -- gas ---------------------------------------------------------------

    def gas_round(
        self,
        updates: List[Tuple[int, object]],
        activate: List[int],
    ) -> Dict[str, object]:
        """One active-set round over the owned active vertices.

        ``updates`` are last round's global value changes (broadcast to
        every shard); ``activate`` the owned vertices whose gather
        neighbors changed. Gather reads only the post-update table, and
        changes are *not* applied locally mid-round — Jacobi within the
        round, so any shard count sees identical neighbor values.
        """
        program = self.plan.program
        for v, value in updates:
            self.table[int(v)] = value
        self.gas_active |= {int(v) for v in activate}
        changes: List[Tuple[int, object]] = []
        activations = set()
        for v in sorted(self.gas_active):
            gathered = program.gather_zero
            for u, weight in self._gas_engine._gather_edges(
                v, program.both_directions
            ):
                gathered = program.gather_sum(
                    gathered, program.gather(self.table[u], weight)
                )
            new_value = program.apply(self.table[v], gathered)
            if new_value != self.table[v]:
                changes.append((v, new_value))
                activations.update(
                    int(t)
                    for t in self._gas_engine._scatter_targets(
                        v, program.both_directions
                    )
                )
        self.gas_active = set()
        return {"changes": changes, "activations": sorted(activations)}

    def gas_sweep(self, updates: List[Tuple[int, object]]) -> Dict[str, object]:
        """One synchronous sweep: apply all owned vertices vs the snapshot."""
        program = self.plan.program
        for v, value in updates:
            self.table[int(v)] = value
        changes: List[Tuple[int, object]] = []
        for v in self.owned:
            gathered = program.gather_zero
            for u, weight in self._gas_engine._gather_edges(
                v, program.both_directions
            ):
                gathered = program.gather_sum(
                    gathered, program.gather(self.table[u], weight)
                )
            changes.append((v, program.apply(self.table[v], gathered)))
        return {"changes": changes}

    def pr_gather(self, contrib: List[float]) -> Dict[str, object]:
        """PageRank gather kernel: fold contributions over in-edges.

        Reproduces the sequential sweep's fold exactly — start from 0.0
        and add ``contrib[u]`` in in-CSR order — so the coordinator's
        rank update sees bit-identical gathered values.
        """
        gathered: List[Tuple[int, float]] = []
        for v in self.owned:
            total = 0.0
            for u, _ in self._gas_engine._gather_edges(v, False):
                total = total + contrib[u]
            gathered.append((v, total))
        return {"gathered": gathered}

    # -- lcc ---------------------------------------------------------------

    def lcc(self) -> Dict[str, object]:
        from repro.algorithms.lcc import local_clustering_coefficient

        values = local_clustering_coefficient(self.graph, vertices=self.owned)
        return {"values": [(v, float(values[v])) for v in self.owned]}

    # -- merge / supervision ----------------------------------------------

    def collect(self) -> Dict[str, object]:
        """Final owned values, for the coordinator's deterministic merge."""
        if self.model == "pregel":
            return {"values": [(v, self.values[v]) for v in self.owned]}
        if self.model == "gas" and self.plan.mode != "pr":
            return {"values": [(v, self.table[v]) for v in self.owned]}
        return {"values": []}

    def snapshot(self) -> Dict[str, object]:
        """Barrier-time picklable state, enough to rebuild this shard.

        Rides every reply envelope; the coordinator re-inits a
        replacement worker from the last barrier's snapshot plus the
        retained in-flight command when a shard dies mid-superstep.
        """
        if self.model == "pregel":
            return {
                "values": [(v, self.values[v]) for v in self.owned],
                "active": sorted(self.active),
            }
        if self.model == "gas" and self.plan.mode != "pr":
            return {
                "table": list(self.table),
                "active": sorted(self.gas_active),
            }
        return {}

    def restore(self, snapshot: Dict[str, object]) -> None:
        if not snapshot:
            return
        if self.model == "pregel":
            self.values = {int(v): value for v, value in snapshot["values"]}
            self.active = {int(v) for v in snapshot["active"]}
        elif self.model == "gas" and self.plan.mode != "pr":
            self.table = list(snapshot["table"])
            self.gas_active = {int(v) for v in snapshot["active"]}


def shard_main(shard_id: int, task_conn, result_conn) -> None:
    """Shard worker entrypoint: the runtime pool's worker discipline.

    Same contract as :func:`repro.runtime.pool._worker_main`: private
    pipes, orphan-guard poll so a SIGKILLed coordinator cannot leak the
    process, fresh per-process tracer, and every reply carries the spans
    plus the ``sent_at - received_at`` clock offset so the coordinator
    can rebase them onto its superstep timeline. Every exception becomes
    a structured failure envelope (RUN001) — except the chaos kill,
    which is the point.
    """
    tracer = Tracer(process=f"shard-{shard_id}")
    set_tracer(tracer)
    state: Optional[ShardState] = None
    parent = os.getppid()
    while True:
        if not task_conn.poll(1.0):
            if os.getppid() != parent:
                return
            continue
        try:
            task = task_conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        payload, sent_at = task
        received_at = tracer.clock.now()
        clock_offset = sent_at - received_at
        cmd = payload["cmd"]
        try:
            if cmd == "init":
                chaos = payload.get("chaos")
                if chaos is not None:
                    from repro.faults.points import IoFaultPlan, install_io_plan

                    install_io_plan(IoFaultPlan.from_dict(chaos))
                state = ShardState(
                    graph_from_payload(payload["graph"]),
                    shard_id,
                    payload["owned"],
                    payload["owner"],
                    int(payload["num_shards"]),
                    payload["spec"],
                )
                restore = payload.get("restore")
                if restore:
                    state.restore(restore)
                body: Dict[str, object] = {"ok": True}
            else:
                # The chaos plane's hook: a kill-kind fault here is a
                # shard dying between the barrier and its compute.
                check(STEP_FAULT_POINT)
                with tracer.span(
                    "shard-compute", shard=shard_id, cmd=cmd,
                    superstep=payload.get("superstep"),
                ):
                    body = state.apply_command(payload)
        except Exception as exc:  # noqa: BLE001 — converted, not swallowed
            import traceback

            result_conn.send(
                {
                    "event": "fail",
                    "shard": shard_id,
                    "cmd": cmd,
                    "detail": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(limit=8),
                    "spans": [span.as_dict() for span in tracer.drain()],
                    "clock_offset": clock_offset,
                }
            )
            continue
        result_conn.send(
            {
                "event": "done",
                "shard": shard_id,
                "cmd": cmd,
                "body": body,
                "snapshot": state.snapshot() if state is not None else {},
                "spans": [span.as_dict() for span in tracer.drain()],
                "counters": tracer.take_counters(),
                "clock_offset": clock_offset,
            }
        )
