"""Per-superstep message exchange: outboxes, wire batches, delivery.

The exchange protocol is what makes the partitioned engine bit-identical
to the sequential one. Two wire formats, chosen by the program:

* **Combined** — the program declares an exact
  :class:`~repro.engines.pregel.Combiner` (min, integer histogram), so
  messages bound for one target vertex are merged *before* the wire and
  again across sender shards at delivery. Exactness (bit-for-bit
  order-independence of ``merge``) is the contract that lets delivery
  ignore batch arrival order entirely.
* **Tagged** — the program's message reduction is inexact (PageRank's
  float sum), so every message travels individually tagged with
  ``(sender, seq)``: the sender's dense index and the emission sequence
  within that sender. Delivery sorts by that tag, which reproduces the
  sequential engine's inbox order exactly — it processes senders in
  ascending dense-index order and appends each sender's messages in
  emission order.

Either way, :func:`deliver` is a pure function of the batch *set*, never
the batch *order*; the determinism suite permutes delivery order and
asserts identical superstep state.

Everything that crosses a pipe here is plain data — ints, floats,
``Counter`` objects, lists, dataclasses of those — per lint rule
RACE002.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engines.pregel import Combiner

__all__ = ["MessageBatch", "Outbox", "deliver"]


@dataclass
class MessageBatch:
    """Messages from one shard to one shard, for one superstep.

    Exactly one of ``combined`` / ``tagged`` is populated. ``combined``
    maps target vertex -> wire value (the combiner-merged representation
    of every message this sender shard produced for that target).
    ``tagged`` is a flat list of ``(target, sender, seq, message)``.
    """

    src_shard: int
    dst_shard: int
    superstep: int
    combined: Optional[Dict[int, object]] = None
    tagged: Optional[List[Tuple[int, int, int, object]]] = None

    def message_count(self) -> int:
        """Logical (pre-combine) messages this batch represents."""
        if self.tagged is not None:
            return len(self.tagged)
        return len(self.combined or {})

    def wire_size(self) -> int:
        """Entries actually crossing the pipe (post-combine)."""
        if self.tagged is not None:
            return len(self.tagged)
        return len(self.combined or {})


class Outbox:
    """Collects one shard's sends for a superstep, pre-combined per
    destination shard.

    ``send`` is the single message-send entrypoint of the shard side
    (the ``partitionedproj`` lint fixture mirrors it): it routes the
    target through the ownership array and either merges into the
    destination's wire dict (combiner programs) or appends a tagged
    record. Senders must call ``send`` in compute order — the tag's
    ``seq`` is assigned here.
    """

    def __init__(
        self,
        owner: np.ndarray,
        num_shards: int,
        src_shard: int,
        superstep: int,
        combiner: Optional[Combiner],
    ):
        self.owner = owner
        self.num_shards = num_shards
        self.src_shard = src_shard
        self.superstep = superstep
        self.combiner = combiner
        self.messages_sent = 0
        self._seq: Dict[int, int] = {}
        self._combined: Dict[int, Dict[int, object]] = {}
        self._tagged: Dict[int, List[Tuple[int, int, int, object]]] = {}

    def send(self, sender: int, target: int, message: object) -> None:
        target = int(target)
        shard = int(self.owner[target])
        self.messages_sent += 1
        combiner = self.combiner
        if combiner is not None:
            wire = self._combined.setdefault(shard, {})
            lifted = combiner.lift(message)
            existing = wire.get(target)
            wire[target] = (
                lifted if existing is None else combiner.merge(existing, lifted)
            )
            return
        seq = self._seq.get(sender, 0)
        self._seq[sender] = seq + 1
        self._tagged.setdefault(shard, []).append(
            (target, int(sender), seq, message)
        )

    def batches(self) -> List[MessageBatch]:
        """One batch per destination shard with traffic, ascending."""
        out: List[MessageBatch] = []
        if self.combiner is not None:
            for shard in sorted(self._combined):
                out.append(
                    MessageBatch(
                        src_shard=self.src_shard,
                        dst_shard=shard,
                        superstep=self.superstep,
                        combined=self._combined[shard],
                    )
                )
        else:
            for shard in sorted(self._tagged):
                out.append(
                    MessageBatch(
                        src_shard=self.src_shard,
                        dst_shard=shard,
                        superstep=self.superstep,
                        tagged=self._tagged[shard],
                    )
                )
        return out


def deliver(
    batches: Sequence[MessageBatch], combiner: Optional[Combiner]
) -> Dict[int, List[object]]:
    """Merge inbound batches into per-vertex inboxes, order-independently.

    Combiner programs: wire values for the same target are merged across
    batches (exact merge — any order), then expanded once into the
    message list ``compute`` observes. Tagged programs: all records are
    sorted by ``(sender, seq)``, which is the sequential engine's
    delivery order regardless of which shard each sender lived on.
    """
    inbox: Dict[int, List[object]] = {}
    if combiner is not None:
        wire: Dict[int, object] = {}
        for batch in batches:
            for target, value in sorted((batch.combined or {}).items()):
                existing = wire.get(target)
                wire[target] = (
                    value if existing is None else combiner.merge(existing, value)
                )
        for target, value in sorted(wire.items()):
            inbox[target] = combiner.expand(value)
        return inbox
    staged: Dict[int, List[Tuple[int, int, object]]] = {}
    for batch in batches:
        for target, sender, seq, message in batch.tagged or []:
            staged.setdefault(target, []).append((sender, seq, message))
    for target, records in sorted(staged.items()):
        records.sort(key=lambda record: (record[0], record[1]))
        inbox[target] = [message for _, _, message in records]
    return inbox
