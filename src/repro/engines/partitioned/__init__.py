"""``repro.engines.partitioned`` — sharded, measured graph execution.

ROADMAP item 3: the paper's horizontal-scaling experiments (§6), as a
*mechanistic* system instead of a calibrated formula. A graph is
edge-cut partitioned across shard workers (hash or range strategy);
Pregel supersteps and GAS rounds run bulk-synchronously with real
message exchange over pipes, combiners that merge messages before the
wire, and a deterministic merge of per-shard state — so any shard
count, either strategy, and either transport produce **bit-identical**
outputs to the single-process engines in :mod:`repro.engines.pregel`
and :mod:`repro.engines.gas`.

See docs/scaling.md for the partitioner, the exchange protocol, the
barrier/span timeline, supervision, and the measured scaling curves
(``benchmarks/bench_partitioned_scaling.py`` → ``BENCH_partitioned.json``).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.engines.partitioned.coordinator import PartitionedEngine, ShardFailure
from repro.engines.partitioned.exchange import MessageBatch, Outbox, deliver
from repro.engines.partitioned.partition import (
    PARTITION_STRATEGIES,
    Partition,
    PartitionSet,
    partition_graph,
)
from repro.engines.partitioned.programs import ProgramSpec, spec_for
from repro.engines.partitioned.shard import STEP_FAULT_POINT, ShardState
from repro.graph.graph import Graph

__all__ = [
    "PARTITION_STRATEGIES",
    "STEP_FAULT_POINT",
    "MessageBatch",
    "Outbox",
    "Partition",
    "PartitionSet",
    "PartitionedEngine",
    "ProgramSpec",
    "ShardFailure",
    "ShardState",
    "deliver",
    "partition_graph",
    "run_algorithm",
    "run_bfs",
    "run_sssp",
    "run_wcc",
    "run_cdlp",
    "run_pagerank",
    "run_lcc",
    "spec_for",
]


def run_algorithm(
    graph: Graph,
    algorithm: str,
    params: Optional[Dict[str, object]] = None,
    *,
    partitions: int = 2,
    strategy: str = "hash",
    model: str = "auto",
    transport: str = "pipes",
    chaos_plan: Optional[Dict[str, object]] = None,
) -> np.ndarray:
    """Run one core algorithm partitioned; returns the finalized array."""
    spec = spec_for(algorithm, params, model=model)
    engine = PartitionedEngine(
        graph,
        partitions=partitions,
        strategy=strategy,
        transport=transport,
        chaos_plan=chaos_plan,
    )
    return engine.run(spec)


def run_bfs(graph: Graph, source: int, **options) -> np.ndarray:
    return run_algorithm(graph, "bfs", {"source_vertex": source}, **options)


def run_sssp(graph: Graph, source: int, **options) -> np.ndarray:
    return run_algorithm(graph, "sssp", {"source_vertex": source}, **options)


def run_wcc(graph: Graph, **options) -> np.ndarray:
    return run_algorithm(graph, "wcc", **options)


def run_cdlp(graph: Graph, iterations: int = 10, **options) -> np.ndarray:
    return run_algorithm(graph, "cdlp", {"iterations": iterations}, **options)


def run_pagerank(
    graph: Graph, iterations: int = 30, damping: float = 0.85, **options
) -> np.ndarray:
    return run_algorithm(
        graph, "pr", {"iterations": iterations, "damping": damping}, **options
    )


def run_lcc(graph: Graph, **options) -> np.ndarray:
    return run_algorithm(graph, "lcc", model="lcc", **options)
