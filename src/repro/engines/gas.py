"""A miniature Gather-Apply-Scatter engine: PowerGraph's model.

Execution follows Gonzalez et al. (OSDI 2012): an algorithm is three
functions over a vertex's neighborhood —

* **gather**: combine values over the gather-direction edges with a
  commutative, associative sum;
* **apply**: compute the vertex's new value from the gathered result;
* **scatter**: decide which scatter-direction neighbors to activate.

Two execution modes mirror PowerGraph's engines: the *async-like*
active-set mode (convergent label-correcting algorithms: BFS, SSSP,
WCC) and the *synchronous* sweep mode (fixed-iteration algorithms:
PageRank, CDLP), where all vertices apply simultaneously against the
previous iteration's values.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.exceptions import GraphFormatError
from repro.graph.graph import Graph

__all__ = [
    "GASProgram",
    "GASEngine",
    "bfs_gas_program",
    "sssp_gas_program",
    "wcc_gas_program",
    "cdlp_gas_program",
    "run_bfs",
    "run_sssp",
    "run_wcc",
    "run_pagerank",
    "run_cdlp",
]


@dataclass(frozen=True)
class GASProgram:
    """One algorithm in the GAS abstraction.

    ``gather(u_value, weight)`` maps one gather-edge to a partial value;
    ``gather_sum`` combines partials (must be commutative/associative);
    ``apply(old_value, gathered)`` produces the new vertex value;
    ``gather_zero`` is the identity of ``gather_sum``. ``both_directions``
    gathers/scatters over in- and out-edges (WCC ignores direction).
    """

    name: str
    init: Callable[[Graph, int], object]
    gather: Callable[[object, Optional[float]], object]
    gather_sum: Callable[[object, object], object]
    gather_zero: object
    apply: Callable[[object, object], object]
    both_directions: bool = False


class GASEngine:
    """Active-set and synchronous executors for GAS programs.

    After a run, :attr:`round_seconds` holds the measured wall-clock of
    each round/sweep (one entry per ``round`` span the engine emitted
    through :mod:`repro.trace`).
    """

    def __init__(self, graph: Graph):
        self.graph = graph
        self.round_seconds: List[float] = []

    def _gather_edges(self, v: int, both: bool) -> List[Tuple[int, Optional[float]]]:
        """(neighbor, weight) pairs over the gather direction of v.

        Gather runs over *in*-edges (a vertex's new value depends on the
        vertices that point at it); ``both`` adds the out-edges.
        """
        graph = self.graph
        lo, hi = graph.in_indptr[v], graph.in_indptr[v + 1]
        weights = graph.in_weights
        edges = [
            (int(graph.in_indices[k]),
             float(weights[k]) if weights is not None else None)
            for k in range(lo, hi)
        ]
        if both and graph.directed:
            nbrs, out_weights = graph.out_edges(v)
            edges.extend(
                (int(u), float(w) if out_weights is not None else None)
                for u, w in zip(
                    nbrs,
                    out_weights if out_weights is not None else [None] * len(nbrs),
                )
            )
        return edges

    def _scatter_targets(self, v: int, both: bool) -> np.ndarray:
        graph = self.graph
        targets = graph.out_neighbors(v)
        if both and graph.directed:
            targets = np.union1d(targets, graph.in_neighbors(v))
        return targets

    def run_active_set(self, program: GASProgram, *, max_rounds: int = 100_000):
        """Label-correcting execution: converge, then stop.

        Returns (values, rounds). A vertex re-applies whenever a gather
        neighbor changed; the run ends when the active set drains.
        """
        from repro.trace import current_tracer

        tracer = current_tracer()
        graph = self.graph
        n = graph.num_vertices
        values = [program.init(graph, v) for v in range(n)]
        active = set(range(n))
        rounds = 0
        self.round_seconds = []
        while active and rounds < max_rounds:
            rounds += 1
            with tracer.span(
                "round", engine="gas", index=rounds - 1
            ) as round_span:
                next_active = set()
                # Deterministic order keeps runs bit-reproducible.
                for v in sorted(active):
                    gathered = program.gather_zero
                    for u, weight in self._gather_edges(v, program.both_directions):
                        gathered = program.gather_sum(
                            gathered, program.gather(values[u], weight)
                        )
                    new_value = program.apply(values[v], gathered)
                    if new_value != values[v]:
                        values[v] = new_value
                        next_active.update(
                            int(t)
                            for t in self._scatter_targets(v, program.both_directions)
                        )
                active = next_active
            self.round_seconds.append(round_span.duration)
        return values, rounds

    def run_synchronous(self, program: GASProgram, iterations: int):
        """Fixed synchronous sweeps: every vertex applies against the
        previous iteration's values (PageRank, CDLP)."""
        from repro.trace import current_tracer

        tracer = current_tracer()
        graph = self.graph
        n = graph.num_vertices
        values = [program.init(graph, v) for v in range(n)]
        self.round_seconds = []
        for iteration in range(iterations):
            with tracer.span(
                "round", engine="gas", index=iteration
            ) as round_span:
                snapshot = list(values)
                new_values = []
                for v in range(n):
                    gathered = program.gather_zero
                    for u, weight in self._gather_edges(v, program.both_directions):
                        gathered = program.gather_sum(
                            gathered, program.gather(snapshot[u], weight)
                        )
                    new_values.append(program.apply(snapshot[v], gathered))
                values = new_values
            self.round_seconds.append(round_span.duration)
        return values


# -- algorithm programs -------------------------------------------------------

_UNREACHED = np.iinfo(np.int64).max


def bfs_gas_program(graph: Graph, source: int) -> Tuple[GASProgram, Callable]:
    """BFS as min-gather over in-edges: d(v) = min(d(u) + 1)."""
    if not graph.has_vertex(source):
        raise GraphFormatError(f"BFS source vertex {source} not in graph")
    root = graph.index_of(source)
    program = GASProgram(
        name="bfs",
        init=lambda g, v: 0 if v == root else _UNREACHED,
        gather=lambda u_value, w: (
            u_value + 1 if u_value != _UNREACHED else _UNREACHED
        ),
        gather_sum=min,
        gather_zero=_UNREACHED,
        apply=lambda old, gathered: min(old, gathered),
    )
    return program, lambda values: np.array(values, dtype=np.int64)


def sssp_gas_program(graph: Graph, source: int) -> Tuple[GASProgram, Callable]:
    """SSSP as min-plus gather: d(v) = min(d(u) + w(u,v))."""
    if not graph.is_weighted:
        raise GraphFormatError("SSSP requires a weighted graph")
    if not graph.has_vertex(source):
        raise GraphFormatError(f"SSSP source vertex {source} not in graph")
    root = graph.index_of(source)
    program = GASProgram(
        name="sssp",
        init=lambda g, v: 0.0 if v == root else float("inf"),
        gather=lambda u_value, w: u_value + w,
        gather_sum=min,
        gather_zero=float("inf"),
        apply=lambda old, gathered: min(old, gathered),
    )
    return program, lambda values: np.array(values, dtype=np.float64)


def wcc_gas_program(graph: Graph) -> Tuple[GASProgram, Callable]:
    """WCC as min-label gather over both edge directions."""
    program = GASProgram(
        name="wcc",
        init=lambda g, v: int(g.vertex_ids[v]),
        gather=lambda u_value, w: u_value,
        gather_sum=min,
        gather_zero=np.iinfo(np.int64).max,
        apply=lambda old, gathered: min(old, gathered),
        both_directions=True,
    )
    return program, lambda values: np.array(values, dtype=np.int64)


def run_bfs(graph: Graph, source: int) -> np.ndarray:
    program, finalize = bfs_gas_program(graph, source)
    values, _ = GASEngine(graph).run_active_set(program)
    return finalize(values)


def run_sssp(graph: Graph, source: int) -> np.ndarray:
    program, finalize = sssp_gas_program(graph, source)
    values, _ = GASEngine(graph).run_active_set(program)
    return finalize(values)


def run_wcc(graph: Graph) -> np.ndarray:
    program, finalize = wcc_gas_program(graph)
    values, _ = GASEngine(graph).run_active_set(program)
    return finalize(values)


def run_pagerank(
    graph: Graph, iterations: int = 30, damping: float = 0.85
) -> np.ndarray:
    """PageRank as sum-gather of (rank/out-degree) with dangling mass.

    The dangling redistribution needs a global aggregate per sweep, so
    the program carries (rank, contribution) pairs and the front-end
    folds the dangling sum between sweeps — matching how PowerGraph
    implementations handle it (a global reduction between iterations).
    """
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.float64)
    out_degree = graph.out_degrees().astype(np.float64)
    dangling = out_degree == 0
    rank = np.full(n, 1.0 / n, dtype=np.float64)
    engine = GASEngine(graph)
    base = (1.0 - damping) / n

    for _ in range(iterations):
        contrib = np.zeros(n, dtype=np.float64)
        np.divide(rank, out_degree, out=contrib, where=~dangling)
        program = GASProgram(
            name="pr-sweep",
            init=lambda g, v: float(contrib[v]),
            gather=lambda u_value, w: u_value,
            gather_sum=lambda a, b: a + b,
            gather_zero=0.0,
            apply=lambda old, gathered: gathered,
        )
        gathered = engine.run_synchronous(program, 1)
        dangling_share = rank[dangling].sum() / n
        rank = base + damping * (np.array(gathered) + dangling_share)
    return rank


def cdlp_gas_program(graph: Graph, iterations: int = 10) -> Tuple[GASProgram, Callable]:
    """CDLP with a histogram gather (Counter merge is the gather sum)."""

    def gather(u_value, w):
        return Counter({u_value: 1})

    def gather_sum(a: Counter, b: Counter) -> Counter:
        merged = Counter(a)
        merged.update(b)
        return merged

    def apply(old, gathered: Counter):
        if not gathered:
            return old
        best = max(gathered.values())
        return min(
            label for label, count in gathered.items() if count == best
        )

    program = GASProgram(
        name="cdlp",
        init=lambda g, v: int(g.vertex_ids[v]),
        gather=gather,
        gather_sum=gather_sum,
        gather_zero=Counter(),
        apply=apply,
        both_directions=True,
    )
    return program, lambda values: np.array(values, dtype=np.int64)


def run_cdlp(graph: Graph, iterations: int = 10) -> np.ndarray:
    program, finalize = cdlp_gas_program(graph, iterations)
    values = GASEngine(graph).run_synchronous(program, iterations)
    return finalize(values)
