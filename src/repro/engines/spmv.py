"""A miniature SpMV engine: GraphMat's sparse-matrix model.

GraphMat "maps Pregel-like vertex programs to high-performance sparse
matrix operations" (paper §3.1). Here the mapping is explicit: graph
algorithms are iterated generalized sparse-matrix–vector products
``y = A^T (x) `` over an algebraic :class:`Semiring` — (min, +) for
shortest paths, (|, &) for reachability, (+, x) for PageRank — with an
element-wise accumulate against the previous state.

The products are fully vectorized over the CSR arrays (numpy scatter
reductions), which is exactly the performance argument for the model:
no per-vertex control flow, only bulk array operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import GraphFormatError
from repro.algorithms.common import expand_sources
from repro.graph.graph import Graph
from repro.trace import current_tracer

__all__ = [
    "Semiring",
    "SpMVEngine",
    "MIN_PLUS",
    "OR_AND",
    "PLUS_TIMES",
    "run_bfs",
    "run_sssp",
    "run_wcc",
    "run_pagerank",
    "run_cdlp",
]


@dataclass(frozen=True)
class Semiring:
    """(add, multiply, additive identity) over numpy arrays.

    ``add_reduce(target_indices, terms, n)`` performs the scattered
    semiring addition: combine ``terms[k]`` into slot
    ``target_indices[k]`` of a fresh vector of additive identities.
    """

    name: str
    zero: float
    add_reduce: Callable[[np.ndarray, np.ndarray, int], np.ndarray]
    multiply: Callable[[np.ndarray, np.ndarray], np.ndarray]


def _min_reduce(targets: np.ndarray, terms: np.ndarray, n: int) -> np.ndarray:
    out = np.full(n, np.inf)
    np.minimum.at(out, targets, terms)
    return out


def _sum_reduce(targets: np.ndarray, terms: np.ndarray, n: int) -> np.ndarray:
    return np.bincount(targets, weights=terms, minlength=n).astype(np.float64)


def _or_reduce(targets: np.ndarray, terms: np.ndarray, n: int) -> np.ndarray:
    out = np.zeros(n)
    np.maximum.at(out, targets, terms)
    return out


MIN_PLUS = Semiring("min-plus", np.inf, _min_reduce, lambda x, w: x + w)
OR_AND = Semiring("or-and", 0.0, _or_reduce, lambda x, w: x * w)
PLUS_TIMES = Semiring("plus-times", 0.0, _sum_reduce, lambda x, w: x * w)


class SpMVEngine:
    """Generalized y = A^T x over a semiring, on a graph's CSR arrays."""

    def __init__(self, graph: Graph):
        self.graph = graph
        # Message flow src -> dst: expand the out-CSR once. Undirected
        # graphs already store both directions.
        self._sources = expand_sources(graph.out_indptr)
        self._targets = graph.out_indices
        if graph.out_weights is not None:
            self._weights = graph.out_weights.astype(np.float64)
        else:
            self._weights = np.ones(len(self._targets), dtype=np.float64)
        # The transpose (dst -> src) for direction-ignoring algorithms.
        self._rev_sources = expand_sources(graph.in_indptr)
        self._rev_targets = graph.in_indices

    def spmv(self, x: np.ndarray, semiring: Semiring, *,
             reverse: bool = False, unit_weights: bool = False) -> np.ndarray:
        """One product: combine x[src] (x) w over edges into each dst."""
        if reverse:
            # in-CSR slot k: edge in_indices[k] -> rev_sources[k]; the
            # reverse product pushes each vertex's value to its
            # in-neighbors (against edge direction).
            sources, targets = self._rev_sources, self._rev_targets
        else:
            sources, targets = self._sources, self._targets
        weights = (
            np.ones(len(targets)) if unit_weights else self._weights
        )
        if reverse:
            # Reverse edges reuse the forward weight layout only for
            # unit-weight algorithms; weighted reverse products are not
            # needed by any kernel here.
            weights = np.ones(len(targets))
        terms = semiring.multiply(x[sources], weights)
        return semiring.add_reduce(targets, terms, self.graph.num_vertices)


_UNREACHED = np.iinfo(np.int64).max


def run_bfs(graph: Graph, source: int) -> np.ndarray:
    """Level-synchronous BFS: frontier = (A^T f) & ~visited (OR-AND)."""
    if not graph.has_vertex(source):
        raise GraphFormatError(f"BFS source vertex {source} not in graph")
    engine = SpMVEngine(graph)
    n = graph.num_vertices
    depth = np.full(n, _UNREACHED, dtype=np.int64)
    frontier = np.zeros(n)
    root = graph.index_of(source)
    frontier[root] = 1.0
    depth[root] = 0
    level = 0
    tracer = current_tracer()
    while frontier.any():
        level += 1
        with tracer.span("iteration", engine="spmv", algorithm="bfs",
                         index=level - 1):
            reached = engine.spmv(frontier, OR_AND, unit_weights=True)
            frontier = np.where(depth == _UNREACHED, reached, 0.0)
            depth[frontier > 0] = level
    return depth


def run_sssp(graph: Graph, source: int) -> np.ndarray:
    """Bellman-Ford as iterated min-plus products with accumulate."""
    if not graph.is_weighted:
        raise GraphFormatError("SSSP requires a weighted graph")
    if not graph.has_vertex(source):
        raise GraphFormatError(f"SSSP source vertex {source} not in graph")
    engine = SpMVEngine(graph)
    n = graph.num_vertices
    dist = np.full(n, np.inf)
    dist[graph.index_of(source)] = 0.0
    tracer = current_tracer()
    for iteration in range(n):
        with tracer.span("iteration", engine="spmv", algorithm="sssp",
                         index=iteration):
            relaxed = np.minimum(dist, engine.spmv(dist, MIN_PLUS))
            converged = np.array_equal(relaxed, dist)
        if converged:
            break
        dist = relaxed
    return dist


def run_wcc(graph: Graph) -> np.ndarray:
    """Min-label propagation: min-plus with zero weights, both ways."""
    engine = SpMVEngine(graph)
    labels = graph.vertex_ids.astype(np.float64)
    zero_weight = Semiring("min-first", np.inf, _min_reduce, lambda x, w: x)
    tracer = current_tracer()
    iteration = 0
    while True:
        with tracer.span("iteration", engine="spmv", algorithm="wcc",
                         index=iteration):
            candidate = np.minimum(labels, engine.spmv(labels, zero_weight))
            candidate = np.minimum(
                candidate, engine.spmv(labels, zero_weight, reverse=True)
            )
            converged = np.array_equal(candidate, labels)
        iteration += 1
        if converged:
            break
        labels = candidate
    return labels.astype(np.int64)


def run_pagerank(
    graph: Graph, iterations: int = 30, damping: float = 0.85
) -> np.ndarray:
    """Standard (+, x) PageRank with dangling redistribution."""
    engine = SpMVEngine(graph)
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.float64)
    out_degree = graph.out_degrees().astype(np.float64)
    dangling = out_degree == 0
    rank = np.full(n, 1.0 / n)
    base = (1.0 - damping) / n
    tracer = current_tracer()
    for iteration in range(iterations):
        with tracer.span("iteration", engine="spmv", algorithm="pr",
                         index=iteration):
            contrib = np.zeros(n)
            np.divide(rank, out_degree, out=contrib, where=~dangling)
            incoming = engine.spmv(contrib, PLUS_TIMES, unit_weights=True)
            rank = base + damping * (incoming + rank[dangling].sum() / n)
    return rank


def run_cdlp(graph: Graph, iterations: int = 10) -> np.ndarray:
    """CDLP as a generalized product over the (histogram-merge) monoid.

    The per-target combine is a label histogram rather than a scalar —
    the "generalized SpMV" GraphMat exposes for vertex programs whose
    message reduction is not a classical semiring addition.
    """
    from repro.algorithms.cdlp import _most_frequent_min_label

    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    out_sources = expand_sources(graph.out_indptr)
    out_targets = graph.out_indices
    if graph.directed:
        in_sources = expand_sources(graph.in_indptr)
        in_targets = graph.in_indices
        senders = np.concatenate([out_sources, in_sources])
        receivers = np.concatenate([out_targets, in_targets])
    else:
        senders, receivers = out_sources, out_targets
    labels = graph.vertex_ids.astype(np.int64).copy()
    tracer = current_tracer()
    for iteration in range(iterations):
        with tracer.span("iteration", engine="spmv", algorithm="cdlp",
                         index=iteration):
            heard = _most_frequent_min_label(n, receivers, labels[senders])
            updated = labels.copy()
            updated[heard >= 0] = heard[heard >= 0]
            converged = np.array_equal(updated, labels)
        if converged:
            break
        labels = updated
    return labels
