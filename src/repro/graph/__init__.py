"""Graph substrate: data model, CSR storage, I/O, and structural statistics.

The Graphalytics data model (paper §2.2.1): a graph is a collection of
vertices, each identified by a unique integer, and a collection of edges,
each a pair of distinct vertex identifiers. Graphs are directed or
undirected; every edge is unique; vertices and edges may carry properties
(here: optional double-precision edge weights).
"""

from repro.graph.graph import Graph
from repro.graph.builder import GraphBuilder
from repro.graph.io import read_graph, write_graph, read_edge_list, parse_edge_line
from repro.graph.stats import GraphStatistics, compute_statistics, graph_scale

__all__ = [
    "Graph",
    "GraphBuilder",
    "read_graph",
    "write_graph",
    "read_edge_list",
    "parse_edge_line",
    "GraphStatistics",
    "compute_statistics",
    "graph_scale",
]
