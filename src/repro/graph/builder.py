"""Incremental graph construction with Graphalytics data-model validation.

The builder accepts vertices and edges one at a time (or in bulk), checks
the data-model constraints from paper §2.2.1 — unique edges connecting two
distinct vertices — and produces an immutable :class:`~repro.graph.graph.
Graph`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.exceptions import GraphFormatError
from repro.graph.graph import Graph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulates vertices/edges and validates the Graphalytics data model.

    Parameters
    ----------
    directed:
        Whether edges are ordered pairs.
    weighted:
        Whether every edge carries a double-precision weight.
    dedup:
        If True, silently drop duplicate edges (and reciprocal duplicates in
        undirected graphs) instead of raising. Generators use this; file
        loaders keep the strict default so malformed inputs are reported.
    allow_self_loops:
        If True, keep self-loops instead of raising. The Graphalytics model
        forbids them; this switch exists for pre-cleaning pipelines that
        strip loops afterwards.
    """

    def __init__(
        self,
        *,
        directed: bool = True,
        weighted: bool = False,
        dedup: bool = False,
        allow_self_loops: bool = False,
    ):
        self._directed = directed
        self._weighted = weighted
        self._dedup = dedup
        self._allow_self_loops = allow_self_loops
        self._vertices: set = set()
        self._src: list = []
        self._dst: list = []
        self._weights: list = []
        self._seen: set = set()

    @property
    def directed(self) -> bool:
        return self._directed

    @property
    def weighted(self) -> bool:
        return self._weighted

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._src)

    def add_vertex(self, vertex_id: int) -> "GraphBuilder":
        """Register a vertex (also happens implicitly via add_edge)."""
        vid = int(vertex_id)
        if vid < 0:
            raise GraphFormatError(f"vertex id must be non-negative, got {vid}")
        self._vertices.add(vid)
        return self

    def add_vertices(self, vertex_ids: Iterable[int]) -> "GraphBuilder":
        for v in vertex_ids:
            self.add_vertex(v)
        return self

    def _edge_key(self, src: int, dst: int) -> Tuple[int, int]:
        if self._directed:
            return (src, dst)
        return (src, dst) if src <= dst else (dst, src)

    def add_edge(self, src: int, dst: int, weight: Optional[float] = None) -> "GraphBuilder":
        """Add one edge; validates loops, duplicates, and weight presence."""
        s, d = int(src), int(dst)
        if s == d and not self._allow_self_loops:
            raise GraphFormatError(f"self-loop on vertex {s} is not allowed")
        if self._weighted:
            if weight is None:
                raise GraphFormatError(f"edge ({s},{d}) is missing a weight")
            w = float(weight)
            if not np.isfinite(w) or w < 0:
                raise GraphFormatError(f"edge ({s},{d}) has invalid weight {weight}")
        elif weight is not None:
            raise GraphFormatError("weight given for an unweighted graph")

        key = self._edge_key(s, d)
        if key in self._seen:
            if self._dedup:
                return self
            raise GraphFormatError(f"duplicate edge ({s},{d})")
        self._seen.add(key)

        self.add_vertex(s)
        self.add_vertex(d)
        self._src.append(s)
        self._dst.append(d)
        if self._weighted:
            self._weights.append(float(weight))
        return self

    def add_edges(
        self,
        edges: Iterable[Tuple[int, int]],
        weights: Optional[Iterable[float]] = None,
    ) -> "GraphBuilder":
        if weights is not None:
            for (s, d), w in zip(edges, weights):
                self.add_edge(s, d, w)
        else:
            for s, d in edges:
                self.add_edge(s, d)
        return self

    def has_edge(self, src: int, dst: int) -> bool:
        return self._edge_key(int(src), int(dst)) in self._seen

    def build(self, name: str = "") -> Graph:
        """Finalize into an immutable Graph; vertex ids sorted ascending."""
        vertex_ids = np.array(sorted(self._vertices), dtype=np.int64)
        index = {int(v): i for i, v in enumerate(vertex_ids)}
        src = np.array([index[s] for s in self._src], dtype=np.int64)
        dst = np.array([index[d] for d in self._dst], dtype=np.int64)
        weights = np.array(self._weights, dtype=np.float64) if self._weighted else None
        return Graph(
            vertex_ids=vertex_ids,
            src=src,
            dst=dst,
            directed=self._directed,
            weights=weights,
            name=name,
        )
