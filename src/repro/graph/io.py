"""Graphalytics EVL file format: ``<name>.v`` + ``<name>.e``.

The vertex file holds one decimal vertex identifier per line. The edge
file holds one edge per line: ``src dst`` or, for weighted graphs,
``src dst weight``. This mirrors the format consumed by the official
Graphalytics harness and produced by LDBC Datagen.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import GraphFormatError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.ioutil import atomic_write

__all__ = ["read_graph", "write_graph", "read_edge_list", "parse_edge_line"]

PathLike = Union[str, os.PathLike]


def parse_edge_line(line: str, *, weighted: bool, lineno: int = 0) -> Tuple[int, int, Optional[float]]:
    """Parse one `.e` line into (src, dst, weight-or-None)."""
    parts = line.split()
    expected = 3 if weighted else 2
    if len(parts) != expected:
        raise GraphFormatError(
            f"edge line {lineno}: expected {expected} fields, got {len(parts)}: {line!r}"
        )
    try:
        src = int(parts[0])
        dst = int(parts[1])
        weight = float(parts[2]) if weighted else None
    except ValueError as exc:
        raise GraphFormatError(f"edge line {lineno}: {exc}") from exc
    return src, dst, weight


def read_edge_list(
    path: PathLike,
    *,
    weighted: bool = False,
) -> Tuple[List[Tuple[int, int]], Optional[List[float]]]:
    """Read a `.e` file into (edges, weights-or-None). Blank lines skipped."""
    edges: List[Tuple[int, int]] = []
    weights: List[float] = [] if weighted else None  # type: ignore[assignment]
    with open(path, "r", encoding="ascii") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            src, dst, weight = parse_edge_line(line, weighted=weighted, lineno=lineno)
            edges.append((src, dst))
            if weighted:
                weights.append(weight)  # type: ignore[union-attr]
    return edges, weights


def read_graph(
    prefix: PathLike,
    *,
    directed: bool,
    weighted: bool = False,
    name: str = "",
) -> Graph:
    """Load ``<prefix>.v`` and ``<prefix>.e`` into a :class:`Graph`.

    The vertex file is authoritative for the vertex set (so isolated
    vertices survive the round trip); every edge endpoint must appear in it.
    """
    prefix = Path(prefix)
    vertex_path = prefix.with_suffix(prefix.suffix + ".v")
    edge_path = prefix.with_suffix(prefix.suffix + ".e")
    builder = GraphBuilder(directed=directed, weighted=weighted)

    with open(vertex_path, "r", encoding="ascii") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                builder.add_vertex(int(line))
            except ValueError as exc:
                raise GraphFormatError(f"vertex line {lineno}: {exc}") from exc

    edges, weights = read_edge_list(edge_path, weighted=weighted)
    vertex_set = _builder_vertices(builder)
    for i, (src, dst) in enumerate(edges):
        if src not in vertex_set or dst not in vertex_set:
            raise GraphFormatError(
                f"edge ({src},{dst}) references a vertex missing from {vertex_path.name}"
            )
        builder.add_edge(src, dst, weights[i] if weighted else None)
    return builder.build(name=name or prefix.name)


def _builder_vertices(builder: GraphBuilder) -> set:
    return builder._vertices  # internal cooperation within the package


def write_graph(graph: Graph, prefix: PathLike) -> Tuple[Path, Path]:
    """Write ``<prefix>.v`` and ``<prefix>.e``; returns the two paths.

    Both files go through :func:`repro.ioutil.atomic_write`: archive
    materialization overwrites previous dataset files in place, and a
    crash mid-write must not leave a torn edge list behind a valid
    ``.properties`` file.
    """
    prefix = Path(prefix)
    vertex_path = prefix.with_suffix(prefix.suffix + ".v")
    edge_path = prefix.with_suffix(prefix.suffix + ".e")

    atomic_write(
        vertex_path, "".join(f"{int(vid)}\n" for vid in graph.vertex_ids)
    )

    ids = graph.vertex_ids
    weights = graph.edge_weights
    lines: List[str] = []
    if weights is not None:
        for k in range(graph.num_edges):
            s = int(ids[graph.edge_src[k]])
            d = int(ids[graph.edge_dst[k]])
            lines.append(f"{s} {d} {float(weights[k])!r}\n")
    else:
        for k in range(graph.num_edges):
            s = int(ids[graph.edge_src[k]])
            d = int(ids[graph.edge_dst[k]])
            lines.append(f"{s} {d}\n")
    atomic_write(edge_path, "".join(lines))
    return vertex_path, edge_path
