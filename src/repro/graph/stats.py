"""Structural graph statistics used by the harness and the perf models.

The perf models (``repro.platforms.model``) consume a small set of shape
descriptors — density, degree skew, component structure — because the
paper's findings repeatedly hinge on them: e.g. §4.6 observes platforms
failing on Graph500 graphs while succeeding on Datagen graphs *of the same
scale*, implicating degree skew rather than size.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Dict

import numpy as np

from repro.graph.graph import Graph

__all__ = ["GraphStatistics", "compute_statistics", "graph_scale", "degree_skewness"]


def graph_scale(num_vertices: int, num_edges: int) -> float:
    """Graphalytics scale: ``log10(|V| + |E|)`` rounded to one decimal.

    Defined in paper §2.2.4 to facilitate performance comparison across
    datasets.
    """
    total = int(num_vertices) + int(num_edges)
    if total <= 0:
        return 0.0
    return round(float(np.log10(total)), 1)


def degree_skewness(degrees: np.ndarray) -> float:
    """Sample skewness of the degree distribution (0 for regular graphs)."""
    degrees = np.asarray(degrees, dtype=np.float64)
    if len(degrees) == 0:
        return 0.0
    mean = degrees.mean()
    std = degrees.std()
    if std == 0:
        return 0.0
    return float(np.mean(((degrees - mean) / std) ** 3))


@dataclass(frozen=True)
class GraphStatistics:
    """Shape descriptors for one graph."""

    num_vertices: int
    num_edges: int
    directed: bool
    scale: float
    density: float
    mean_degree: float
    max_degree: int
    degree_skew: float
    mean_clustering_coefficient: float
    num_components: int
    largest_component_fraction: float

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


def _mean_clustering_coefficient(graph: Graph) -> float:
    """Average LCC over all vertices (LCC per the Graphalytics definition).

    Imported lazily to avoid a cycle: the LCC algorithm lives in
    ``repro.algorithms`` which imports the graph package.
    """
    from repro.algorithms.lcc import local_clustering_coefficient

    values = local_clustering_coefficient(graph)
    if len(values) == 0:
        return 0.0
    return float(np.mean(values))


def _weak_components(graph: Graph) -> np.ndarray:
    from repro.algorithms.wcc import weakly_connected_components

    return weakly_connected_components(graph)


def compute_statistics(graph: Graph) -> GraphStatistics:
    """Compute all shape descriptors. O(sum of degree^2) due to LCC."""
    n = graph.num_vertices
    m = graph.num_edges
    degrees = graph.degrees()
    if n > 1:
        possible = n * (n - 1)
        if not graph.directed:
            possible //= 2
        density = m / possible
    else:
        density = 0.0
    labels = _weak_components(graph) if n else np.array([], dtype=np.int64)
    if n:
        _, counts = np.unique(labels, return_counts=True)
        num_components = len(counts)
        largest_fraction = counts.max() / n
    else:
        num_components = 0
        largest_fraction = 0.0
    return GraphStatistics(
        num_vertices=n,
        num_edges=m,
        directed=graph.directed,
        scale=graph_scale(n, m),
        density=float(density),
        mean_degree=float(degrees.mean()) if n else 0.0,
        max_degree=int(degrees.max()) if n else 0,
        degree_skew=degree_skewness(degrees),
        mean_clustering_coefficient=_mean_clustering_coefficient(graph),
        num_components=num_components,
        largest_component_fraction=float(largest_fraction),
    )
