"""Small deterministic graph generators for tests and examples.

These produce structured graphs with known analytic properties (path,
cycle, star, complete, grid, binary tree), plus seeded Erdős–Rényi
graphs. The benchmark-scale generators (Datagen, Graph500) live in
``repro.datagen``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import GenerationError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph

__all__ = [
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "binary_tree",
    "erdos_renyi",
]


def _require_positive(n: int, what: str = "n") -> int:
    n = int(n)
    if n <= 0:
        raise GenerationError(f"{what} must be positive, got {n}")
    return n


def path_graph(n: int, *, directed: bool = False) -> Graph:
    """Path 0-1-...-(n-1). Diameter n-1; hop count from 0 to i is i."""
    n = _require_positive(n)
    builder = GraphBuilder(directed=directed)
    builder.add_vertex(0)
    for i in range(n - 1):
        builder.add_edge(i, i + 1)
    return builder.build(name=f"path-{n}")


def cycle_graph(n: int, *, directed: bool = False) -> Graph:
    """Cycle over n >= 3 vertices."""
    n = _require_positive(n)
    if n < 3:
        raise GenerationError(f"cycle needs at least 3 vertices, got {n}")
    builder = GraphBuilder(directed=directed)
    for i in range(n):
        builder.add_edge(i, (i + 1) % n)
    return builder.build(name=f"cycle-{n}")


def star_graph(n_leaves: int, *, directed: bool = False) -> Graph:
    """Hub (vertex 0) connected to n_leaves leaves. LCC of every vertex is 0."""
    n_leaves = _require_positive(n_leaves, "n_leaves")
    builder = GraphBuilder(directed=directed)
    for leaf in range(1, n_leaves + 1):
        builder.add_edge(0, leaf)
    return builder.build(name=f"star-{n_leaves}")


def complete_graph(n: int, *, directed: bool = False) -> Graph:
    """Clique over n vertices. LCC of every vertex is 1 (for n >= 3)."""
    n = _require_positive(n)
    builder = GraphBuilder(directed=directed)
    builder.add_vertex(0)
    for i in range(n):
        for j in range(n):
            if i < j:
                builder.add_edge(i, j)
                if directed:
                    builder.add_edge(j, i)
    return builder.build(name=f"complete-{n}")


def grid_graph(rows: int, cols: int) -> Graph:
    """rows x cols undirected lattice; vertex (r,c) has id r*cols + c."""
    rows = _require_positive(rows, "rows")
    cols = _require_positive(cols, "cols")
    builder = GraphBuilder(directed=False)
    builder.add_vertex(0)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                builder.add_edge(v, v + 1)
            if r + 1 < rows:
                builder.add_edge(v, v + cols)
    return builder.build(name=f"grid-{rows}x{cols}")


def binary_tree(depth: int, *, directed: bool = False) -> Graph:
    """Complete binary tree of the given depth (root at 0; depth 0 = root only)."""
    if depth < 0:
        raise GenerationError(f"depth must be >= 0, got {depth}")
    builder = GraphBuilder(directed=directed)
    builder.add_vertex(0)
    n = 2 ** (depth + 1) - 1
    for v in range(n):
        for child in (2 * v + 1, 2 * v + 2):
            if child < n:
                builder.add_edge(v, child)
    return builder.build(name=f"btree-{depth}")


def erdos_renyi(
    n: int,
    p: float,
    *,
    directed: bool = False,
    weighted: bool = False,
    seed: int = 0,
    name: Optional[str] = None,
) -> Graph:
    """G(n, p) random graph with a deterministic seed.

    Weighted graphs get uniform(0, 1] weights. Self-loops are never
    generated; undirected graphs sample each unordered pair once.
    """
    n = _require_positive(n)
    if not 0.0 <= p <= 1.0:
        raise GenerationError(f"p must be in [0,1], got {p}")
    rng = np.random.default_rng(seed)
    builder = GraphBuilder(directed=directed, weighted=weighted)
    builder.add_vertices(range(n))
    if directed:
        mask = rng.random((n, n)) < p
        np.fill_diagonal(mask, False)
        srcs, dsts = np.nonzero(mask)
    else:
        mask = rng.random((n, n)) < p
        iu = np.triu_indices(n, k=1)
        keep = mask[iu]
        srcs, dsts = iu[0][keep], iu[1][keep]
    if weighted:
        weights = rng.uniform(np.finfo(np.float64).tiny, 1.0, size=len(srcs))
        for s, d, w in zip(srcs, dsts, weights):
            builder.add_edge(int(s), int(d), float(w))
    else:
        for s, d in zip(srcs, dsts):
            builder.add_edge(int(s), int(d))
    return builder.build(name=name or f"er-{n}-{p}")
