"""Structure-preserving graph downscaling.

The reproduction's dataset miniatures are *generated* at small scale,
but users benchmarking their own graphs need the complementary tool:
shrink an existing graph while keeping the shape descriptors the
performance models read (degree skew, clustering, connectivity). Two
standard samplers:

* :func:`sample_edges` — uniform edge sampling (keeps density-related
  properties, thins degrees proportionally);
* :func:`sample_forest_fire` — forest-fire vertex sampling (Leskovec &
  Faloutsos, KDD'06), which preserves heavy-tailed degree distributions
  and community structure far better at strong reductions.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Set

import numpy as np

from repro.exceptions import GenerationError
from repro.graph.graph import Graph

__all__ = ["sample_edges", "sample_forest_fire"]


def _check_fraction(fraction: float) -> float:
    if not 0.0 < fraction <= 1.0:
        raise GenerationError(f"fraction must be in (0,1], got {fraction}")
    return float(fraction)


def sample_edges(
    graph: Graph, fraction: float, *, seed: int = 0, name: str = ""
) -> Graph:
    """Keep a uniform ``fraction`` of the edges (and their endpoints).

    Isolated vertices of the original are dropped; vertex identifiers
    are preserved so results can be joined back.
    """
    fraction = _check_fraction(fraction)
    if graph.num_edges == 0:
        raise GenerationError("cannot edge-sample a graph with no edges")
    rng = np.random.default_rng(seed)
    count = max(1, int(round(fraction * graph.num_edges)))
    chosen = rng.choice(graph.num_edges, size=count, replace=False)
    chosen.sort()
    src = graph.edge_src[chosen]
    dst = graph.edge_dst[chosen]
    weights = (
        graph.edge_weights[chosen] if graph.edge_weights is not None else None
    )
    touched = np.unique(np.concatenate([src, dst]))
    remap = np.full(graph.num_vertices, -1, dtype=np.int64)
    remap[touched] = np.arange(len(touched))
    return Graph(
        vertex_ids=graph.vertex_ids[touched],
        src=remap[src],
        dst=remap[dst],
        directed=graph.directed,
        weights=weights,
        name=name or f"{graph.name}-e{fraction}",
    )


def sample_forest_fire(
    graph: Graph,
    target_vertices: int,
    *,
    forward_probability: float = 0.7,
    seed: int = 0,
    name: str = "",
) -> Graph:
    """Burn a forest fire until ``target_vertices`` are captured.

    From a random seed vertex, "burn" a geometric number of untouched
    neighbors, recursing from each; restart from a fresh random vertex
    when the fire dies out. The induced subgraph over the burned set is
    returned.
    """
    if target_vertices < 1:
        raise GenerationError("target_vertices must be positive")
    if not 0.0 < forward_probability < 1.0:
        raise GenerationError(
            f"forward_probability must be in (0,1), got {forward_probability}"
        )
    n = graph.num_vertices
    if n == 0:
        raise GenerationError("cannot sample an empty graph")
    target = min(target_vertices, n)
    rng = np.random.default_rng(seed)
    burned: Set[int] = set()
    # Mean geometric burn count p/(1-p), as in the original formulation.
    p = forward_probability
    while len(burned) < target:
        start = int(rng.integers(n))
        if start in burned:
            continue
        queue = deque([start])
        burned.add(start)
        while queue and len(burned) < target:
            v = queue.popleft()
            neighbors = np.union1d(graph.out_neighbors(v), graph.in_neighbors(v))
            fresh = [int(u) for u in neighbors if u not in burned]
            if not fresh:
                continue
            burn_count = min(len(fresh), rng.geometric(1.0 - p))
            picks = rng.choice(len(fresh), size=burn_count, replace=False)
            for index in picks:
                u = fresh[int(index)]
                burned.add(u)
                queue.append(u)
                if len(burned) >= target:
                    break
    return graph.subgraph(
        sorted(burned), name=name or f"{graph.name}-ff{target}"
    )
