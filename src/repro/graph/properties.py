"""Vertex/edge property tables (paper §2.2.1).

"Optionally, vertices and edges have properties, such as timestamps,
labels, or weights." Edge weights are first-class on
:class:`~repro.graph.graph.Graph` (SSSP consumes them); all other
properties live in :class:`PropertyTable` — a named-column store keyed
by vertex id (or edge index) that attaches *alongside* a graph without
changing the algorithm kernels.

Datagen emits a person property table (country, university, interest)
so correlation analyses like the paper's block construction remain
possible downstream.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

import numpy as np

from repro.exceptions import GraphFormatError
from repro.graph.graph import Graph

__all__ = ["PropertyTable", "person_properties"]

PathLike = Union[str, os.PathLike]


class PropertyTable:
    """Named property columns over a fixed key set (vertex ids).

    Columns are numpy arrays aligned with the sorted key order; lookups
    go through the key index. Supports JSON round-trips and joining onto
    a graph's dense-index order for vectorized use.
    """

    def __init__(self, keys: Iterable[int]):
        self._keys = np.array(sorted(int(k) for k in keys), dtype=np.int64)
        if len(np.unique(self._keys)) != len(self._keys):
            raise GraphFormatError("duplicate property keys")
        self._index = {int(k): i for i, k in enumerate(self._keys)}
        self._columns: Dict[str, np.ndarray] = {}

    @classmethod
    def for_graph(cls, graph: Graph) -> "PropertyTable":
        """A table keyed by the graph's vertex ids."""
        return cls(int(v) for v in graph.vertex_ids)

    @property
    def keys(self) -> np.ndarray:
        view = self._keys.view()
        view.flags.writeable = False
        return view

    def column_names(self) -> List[str]:
        return sorted(self._columns)

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def set_column(self, name: str, values: Sequence) -> "PropertyTable":
        """Add or replace a column (aligned with the sorted key order)."""
        if not name or not isinstance(name, str):
            raise GraphFormatError("property name must be a non-empty string")
        array = np.asarray(values)
        if array.shape != (len(self._keys),):
            raise GraphFormatError(
                f"column {name!r} has {array.shape} values for "
                f"{len(self._keys)} keys"
            )
        self._columns[name] = array.copy()
        return self

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise GraphFormatError(f"unknown property column {name!r}") from None

    def get(self, key: int, name: str):
        """One property value for one key."""
        column = self.column(name)
        try:
            return column[self._index[int(key)]].item()
        except KeyError:
            raise GraphFormatError(f"unknown key {key}") from None

    def aligned_with(self, graph: Graph, name: str) -> np.ndarray:
        """The column reordered to the graph's dense-index order."""
        column = self.column(name)
        out = np.empty(graph.num_vertices, dtype=column.dtype)
        for idx in range(graph.num_vertices):
            vid = int(graph.vertex_ids[idx])
            if vid not in self._index:
                raise GraphFormatError(
                    f"graph vertex {vid} missing from the property table"
                )
            out[idx] = column[self._index[vid]]
        return out

    # -- persistence ----------------------------------------------------

    def save(self, path: PathLike) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "keys": self._keys.tolist(),
            "columns": {
                name: column.tolist() for name, column in self._columns.items()
            },
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        return path

    @classmethod
    def load(cls, path: PathLike) -> "PropertyTable":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        table = cls(payload["keys"])
        for name, values in payload["columns"].items():
            table.set_column(name, values)
        return table


def person_properties(num_persons: int, *, seed: int = 0) -> PropertyTable:
    """The Datagen person attributes as a property table.

    Columns mirror :class:`~repro.datagen.persons.Person`: ``country``,
    ``university``, ``interest`` — the correlation dimensions behind the
    friendship structure (paper §2.5.1).
    """
    from repro.datagen.persons import generate_persons

    persons = generate_persons(num_persons, seed=seed)
    table = PropertyTable(p.person_id for p in persons)
    table.set_column("country", [p.country for p in persons])
    table.set_column("university", [p.university for p in persons])
    table.set_column("interest", [p.interest for p in persons])
    return table
