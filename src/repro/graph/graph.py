"""The in-memory graph: immutable, CSR-backed, directed or undirected.

Vertices carry arbitrary non-negative integer identifiers (as in the
Graphalytics datasets, where ids are sparse). Internally every vertex is
mapped to a dense index ``0..n-1``; all adjacency arrays are indexed by
dense index. Use :meth:`Graph.index_of` / :meth:`Graph.id_of` to convert.

Adjacency is stored in compressed-sparse-row form:

* ``out_indptr`` / ``out_indices`` — out-neighbors (for undirected graphs,
  each edge appears in both endpoints' lists);
* ``in_indptr`` / ``in_indices`` — in-neighbors (aliases the out arrays
  for undirected graphs);
* ``out_weights`` / ``in_weights`` — edge weights aligned with the
  corresponding index arrays, present only for weighted graphs.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphFormatError

__all__ = ["Graph"]


def _build_csr_fast(
    n: int,
    src: np.ndarray,
    dst: np.ndarray,
    weights: Optional[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Vectorized CSR build: lexicographic sort by (src, dst)."""
    order = np.lexsort((dst, src))
    src_sorted = src[order]
    indices = dst[order].astype(np.int64, copy=False)
    w = weights[order] if weights is not None else None
    degree = np.bincount(src_sorted, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degree, out=indptr[1:])
    return indptr, indices, w


class Graph:
    """An immutable graph in the Graphalytics data model.

    Build instances with :meth:`from_edges`, :class:`~repro.graph.builder.
    GraphBuilder`, or :func:`~repro.graph.io.read_graph`; direct construction
    is internal.
    """

    def __init__(
        self,
        *,
        vertex_ids: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        directed: bool,
        weights: Optional[np.ndarray] = None,
        name: str = "",
    ):
        self._vertex_ids = np.asarray(vertex_ids, dtype=np.int64)
        self._directed = bool(directed)
        self._name = name
        n = len(self._vertex_ids)
        self._index = {int(v): i for i, v in enumerate(self._vertex_ids)}
        if len(self._index) != n:
            raise GraphFormatError("duplicate vertex identifiers")

        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise GraphFormatError("edge source/destination arrays differ in length")
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != src.shape:
                raise GraphFormatError("edge weight array length mismatch")
        self._num_edges = len(src)
        self._edge_src = src
        self._edge_dst = dst
        self._edge_weights = weights

        if self._directed:
            out = _build_csr_fast(n, src, dst, weights)
            inn = _build_csr_fast(n, dst, src, weights)
            self._out_indptr, self._out_indices, self._out_weights = out
            self._in_indptr, self._in_indices, self._in_weights = inn
        else:
            both_src = np.concatenate([src, dst])
            both_dst = np.concatenate([dst, src])
            both_w = np.concatenate([weights, weights]) if weights is not None else None
            out = _build_csr_fast(n, both_src, both_dst, both_w)
            self._out_indptr, self._out_indices, self._out_weights = out
            self._in_indptr = self._out_indptr
            self._in_indices = self._out_indices
            self._in_weights = self._out_weights

    # -- identity ---------------------------------------------------------

    @property
    def name(self) -> str:
        """Dataset name, if any (e.g. ``"datagen-300"``)."""
        return self._name

    @property
    def directed(self) -> bool:
        return self._directed

    @property
    def is_weighted(self) -> bool:
        return self._edge_weights is not None

    @property
    def num_vertices(self) -> int:
        return len(self._vertex_ids)

    @property
    def num_edges(self) -> int:
        """Logical edge count: ordered pairs if directed, unordered if not."""
        return self._num_edges

    @property
    def scale(self) -> float:
        """Graphalytics scale, ``log10(|V| + |E|)`` rounded to one decimal."""
        total = self.num_vertices + self.num_edges
        if total <= 0:
            return 0.0
        return round(float(np.log10(total)), 1)

    # -- vertex id mapping --------------------------------------------------

    @property
    def vertex_ids(self) -> np.ndarray:
        """External identifiers, indexed by dense index (read-only view)."""
        view = self._vertex_ids.view()
        view.flags.writeable = False
        return view

    def index_of(self, vertex_id: int) -> int:
        """Dense index of an external vertex identifier."""
        try:
            return self._index[int(vertex_id)]
        except KeyError:
            raise GraphFormatError(f"unknown vertex id {vertex_id}") from None

    def id_of(self, index: int) -> int:
        """External identifier of a dense index."""
        return int(self._vertex_ids[index])

    def has_vertex(self, vertex_id: int) -> bool:
        return int(vertex_id) in self._index

    # -- adjacency -----------------------------------------------------------

    @property
    def out_indptr(self) -> np.ndarray:
        return self._out_indptr

    @property
    def out_indices(self) -> np.ndarray:
        return self._out_indices

    @property
    def out_weights(self) -> Optional[np.ndarray]:
        return self._out_weights

    @property
    def in_indptr(self) -> np.ndarray:
        return self._in_indptr

    @property
    def in_indices(self) -> np.ndarray:
        return self._in_indices

    @property
    def in_weights(self) -> Optional[np.ndarray]:
        return self._in_weights

    def out_neighbors(self, index: int) -> np.ndarray:
        """Out-neighbors (dense indices) of a vertex, sorted ascending."""
        return self._out_indices[self._out_indptr[index]:self._out_indptr[index + 1]]

    def in_neighbors(self, index: int) -> np.ndarray:
        """In-neighbors (dense indices) of a vertex, sorted ascending."""
        return self._in_indices[self._in_indptr[index]:self._in_indptr[index + 1]]

    def out_edges(self, index: int) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """(neighbors, weights) leaving a vertex; weights is None if unweighted."""
        lo, hi = self._out_indptr[index], self._out_indptr[index + 1]
        w = self._out_weights[lo:hi] if self._out_weights is not None else None
        return self._out_indices[lo:hi], w

    def out_degrees(self) -> np.ndarray:
        return np.diff(self._out_indptr)

    def in_degrees(self) -> np.ndarray:
        return np.diff(self._in_indptr)

    def degrees(self) -> np.ndarray:
        """Total degree: in+out for directed graphs, plain degree otherwise."""
        if self._directed:
            return self.out_degrees() + self.in_degrees()
        return self.out_degrees()

    def has_edge(self, src_index: int, dst_index: int) -> bool:
        """Whether an edge src->dst exists (either direction if undirected)."""
        neighbors = self.out_neighbors(src_index)
        pos = np.searchsorted(neighbors, dst_index)
        return bool(pos < len(neighbors) and neighbors[pos] == dst_index)

    # -- edge list -------------------------------------------------------------

    @property
    def edge_src(self) -> np.ndarray:
        """Source dense indices of the logical edge list."""
        return self._edge_src

    @property
    def edge_dst(self) -> np.ndarray:
        """Destination dense indices of the logical edge list."""
        return self._edge_dst

    @property
    def edge_weights(self) -> Optional[np.ndarray]:
        return self._edge_weights

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate logical edges as (src_id, dst_id) external-id pairs."""
        ids = self._vertex_ids
        for s, d in zip(self._edge_src, self._edge_dst):
            yield int(ids[s]), int(ids[d])

    # -- derived graphs -------------------------------------------------------

    def to_undirected(self, name: str = "") -> "Graph":
        """Undirected copy; reciprocal directed edges collapse to one."""
        if not self._directed:
            return self
        lo = np.minimum(self._edge_src, self._edge_dst)
        hi = np.maximum(self._edge_src, self._edge_dst)
        keys = lo * np.int64(self.num_vertices) + hi
        _, first = np.unique(keys, return_index=True)
        first.sort()
        weights = self._edge_weights[first] if self._edge_weights is not None else None
        return Graph(
            vertex_ids=self._vertex_ids,
            src=lo[first],
            dst=hi[first],
            directed=False,
            weights=weights,
            name=name or self._name,
        )

    def subgraph(self, vertex_indices: Sequence[int], name: str = "") -> "Graph":
        """Induced subgraph over the given dense indices."""
        keep = np.zeros(self.num_vertices, dtype=bool)
        idx = np.asarray(list(vertex_indices), dtype=np.int64)
        keep[idx] = True
        remap = np.full(self.num_vertices, -1, dtype=np.int64)
        remap[idx] = np.arange(len(idx))
        mask = keep[self._edge_src] & keep[self._edge_dst]
        weights = self._edge_weights[mask] if self._edge_weights is not None else None
        return Graph(
            vertex_ids=self._vertex_ids[idx],
            src=remap[self._edge_src[mask]],
            dst=remap[self._edge_dst[mask]],
            directed=self._directed,
            weights=weights,
            name=name or self._name,
        )

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]],
        *,
        directed: bool = True,
        weights: Optional[Sequence[float]] = None,
        vertices: Optional[Iterable[int]] = None,
        name: str = "",
    ) -> "Graph":
        """Build a graph from (src_id, dst_id) pairs.

        ``vertices`` may add isolated vertices beyond edge endpoints. Edges
        must be unique and may not be self-loops (the Graphalytics data
        model); violations raise :class:`GraphFormatError`.
        """
        from repro.graph.builder import GraphBuilder

        builder = GraphBuilder(directed=directed, weighted=weights is not None)
        if vertices is not None:
            for v in vertices:
                builder.add_vertex(v)
        if weights is not None:
            for (s, d), w in zip(edges, weights):
                builder.add_edge(s, d, w)
        else:
            for s, d in edges:
                builder.add_edge(s, d)
        return builder.build(name=name)

    def __repr__(self) -> str:
        kind = "directed" if self._directed else "undirected"
        w = ", weighted" if self.is_weighted else ""
        label = f" {self._name!r}" if self._name else ""
        return (
            f"<Graph{label} {kind}{w} |V|={self.num_vertices} "
            f"|E|={self.num_edges} scale={self.scale}>"
        )
