"""Degree-distribution sampling for the social-network generator.

LDBC Datagen "generates a Facebook-like friendship distribution" by
default, and the paper notes it "support[s] different degree
distributions [8]" (§2.5.1). Three families are provided:

* ``facebook`` — the published Facebook measurements (Ugander et al.,
  2011) are close to log-normal in the bulk with a heavier right tail
  and a hard cap on the maximum friend count; modeled as a discretized
  log-normal rescaled to a requested mean and clipped;
* ``zipf`` — a discrete power law (heavier tail, web/Twitter-like);
* ``uniform`` — a narrow uniform band around the mean (a regularized
  control, useful for isolating skew effects in experiments).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GenerationError

__all__ = [
    "facebook_degree_distribution",
    "zipf_degree_distribution",
    "uniform_degree_distribution",
    "sample_degrees",
    "DEGREE_DISTRIBUTIONS",
]


def facebook_degree_distribution(
    n: int,
    *,
    mean_degree: float,
    sigma: float = 1.0,
    max_degree: int = None,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw n target degrees from a discretized, rescaled log-normal.

    ``sigma`` controls skew (Facebook's measured distribution corresponds
    to roughly sigma ~ 1). The draw is rescaled so the empirical mean
    matches ``mean_degree``, then clipped to ``max_degree`` (default
    ``10 * mean_degree``, echoing Facebook's 5000-friend cap relative to
    its ~190 mean).
    """
    if n <= 0:
        raise GenerationError(f"n must be positive, got {n}")
    if mean_degree <= 0:
        raise GenerationError(f"mean_degree must be positive, got {mean_degree}")
    if max_degree is None:
        max_degree = max(2, int(10 * mean_degree))
    raw = rng.lognormal(mean=0.0, sigma=sigma, size=n)
    scaled = raw * (mean_degree / raw.mean())
    degrees = np.maximum(1, np.rint(scaled)).astype(np.int64)
    np.clip(degrees, 1, max_degree, out=degrees)
    return degrees


def zipf_degree_distribution(
    n: int,
    *,
    mean_degree: float,
    exponent: float = 2.2,
    max_degree: int = None,
    rng: np.random.Generator,
) -> np.ndarray:
    """Power-law degrees: P(d) ~ d^-exponent, rescaled to the mean.

    ``exponent`` around 2–3 matches measured web and follower graphs;
    smaller values are heavier-tailed.
    """
    if n <= 0:
        raise GenerationError(f"n must be positive, got {n}")
    if mean_degree <= 0:
        raise GenerationError(f"mean_degree must be positive, got {mean_degree}")
    if exponent <= 1.0:
        raise GenerationError(f"exponent must exceed 1, got {exponent}")
    if max_degree is None:
        max_degree = max(2, int(50 * mean_degree))
    raw = rng.zipf(exponent, size=n).astype(np.float64)
    scaled = raw * (mean_degree / raw.mean())
    degrees = np.maximum(1, np.rint(scaled)).astype(np.int64)
    np.clip(degrees, 1, max_degree, out=degrees)
    return degrees


def uniform_degree_distribution(
    n: int,
    *,
    mean_degree: float,
    spread: float = 0.25,
    rng: np.random.Generator,
) -> np.ndarray:
    """Degrees uniform in [mean*(1-spread), mean*(1+spread)]."""
    if n <= 0:
        raise GenerationError(f"n must be positive, got {n}")
    if mean_degree <= 0:
        raise GenerationError(f"mean_degree must be positive, got {mean_degree}")
    if not 0.0 <= spread < 1.0:
        raise GenerationError(f"spread must be in [0,1), got {spread}")
    low = max(1.0, mean_degree * (1.0 - spread))
    high = mean_degree * (1.0 + spread)
    degrees = np.rint(rng.uniform(low, high, size=n)).astype(np.int64)
    return np.maximum(1, degrees)


#: name -> sampler(n, mean_degree=..., rng=...) for the generator config.
DEGREE_DISTRIBUTIONS = {
    "facebook": facebook_degree_distribution,
    "zipf": zipf_degree_distribution,
    "uniform": uniform_degree_distribution,
}


def sample_degrees(
    n: int,
    *,
    mean_degree: float = 20.0,
    distribution: str = "facebook",
    seed: int = 0,
    **kwargs,
) -> np.ndarray:
    """Seeded front-end over the named degree distributions."""
    try:
        sampler = DEGREE_DISTRIBUTIONS[distribution]
    except KeyError:
        raise GenerationError(
            f"unknown degree distribution {distribution!r}; known: "
            f"{', '.join(DEGREE_DISTRIBUTIONS)}"
        ) from None
    rng = np.random.default_rng(seed)
    return sampler(n, mean_degree=mean_degree, rng=rng, **kwargs)
