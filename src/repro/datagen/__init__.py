"""Synthetic graph generators (paper §2.5.1 and §2.2.4).

* :mod:`repro.datagen.generator` — the LDBC Datagen substitute: a scalable
  social-network generator producing correlated, skewed-degree friendship
  graphs, extended (as in the paper) with a **tunable average clustering
  coefficient** via core–periphery community structure.
* :mod:`repro.datagen.graph500` — the Graph500 Kronecker (R-MAT)
  power-law generator.
* :mod:`repro.datagen.realworld` — domain-flavored random models used to
  materialize miniature stand-ins for the six real-world datasets
  (Table 3), which are not redistributable here.
* :mod:`repro.datagen.flow` — the old (v0.2.1) vs new (v0.2.6) execution
  flow, both as a *real* edge-generation pipeline and as the Hadoop cost
  model behind the §4.8 experiment (Figure 10).
"""

from repro.datagen.degrees import sample_degrees, facebook_degree_distribution
from repro.datagen.persons import Person, generate_persons, CORRELATION_DIMENSIONS
from repro.datagen.generator import DatagenConfig, generate, generate_with_flow
from repro.datagen.graph500 import graph500, Graph500Config
from repro.datagen.realworld import synthetic_replica, REPLICA_PROFILES
from repro.datagen.flow import (
    DatagenFlowModel,
    FlowVersion,
    HadoopClusterModel,
    estimate_generation_time,
)

__all__ = [
    "sample_degrees",
    "facebook_degree_distribution",
    "Person",
    "generate_persons",
    "CORRELATION_DIMENSIONS",
    "DatagenConfig",
    "generate",
    "generate_with_flow",
    "graph500",
    "Graph500Config",
    "synthetic_replica",
    "REPLICA_PROFILES",
    "DatagenFlowModel",
    "FlowVersion",
    "HadoopClusterModel",
    "estimate_generation_time",
]
