"""The LDBC Datagen substitute: correlated social-network generation.

Reproduces the two Datagen contributions of paper §2.5.1:

**Tunable clustering coefficient.** When ``target_clustering_coefficient``
is set, the university-dimension step builds *core–periphery communities*
(consecutive persons in the correlated ordering form a community; a dense
core plus attached periphery). The core density and the fraction of each
person's degree budget spent inside the community are solved analytically
from the target, so generated graphs hit the requested average LCC to
first order (verified empirically in the test suite).

**Old vs new execution flow.** Friendships are generated in one step per
correlation dimension. :data:`FlowVersion.V0_2_1` (old) runs the steps
sequentially — each step re-sorts everything produced so far to dedup
inline. :data:`FlowVersion.V0_2_6` (new) runs every step independently
and merges/dedups once at the end. Both paths produce the *identical*
graph; what differs is the recorded work trace (records sorted per step),
which drives the §4.8 cost model in :mod:`repro.datagen.flow`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import GenerationError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.datagen.degrees import DEGREE_DISTRIBUTIONS
from repro.datagen.persons import (
    CORRELATION_DIMENSIONS,
    Person,
    generate_persons,
    sort_key_for,
)

__all__ = [
    "DatagenConfig",
    "FlowVersion",
    "StepTrace",
    "GenerationTrace",
    "generate",
    "generate_with_flow",
    "solve_community_parameters",
]


class FlowVersion(enum.Enum):
    """Datagen execution-flow versions compared in paper §4.8 / Figure 3."""

    V0_2_1 = "v0.2.1"  # old: sequential steps, inline dedup, growing sorts
    V0_2_6 = "v0.2.6"  # new: independent steps, merge-dedup at the end


@dataclass(frozen=True)
class DatagenConfig:
    """Parameters of one Datagen run.

    ``num_persons`` is the miniature size; the real tool is driven by a
    *scale factor* (≈ millions of edges) — the dataset registry maps scale
    factors to miniature person counts.
    """

    num_persons: int
    mean_degree: float = 18.0
    target_clustering_coefficient: Optional[float] = None
    block_size: int = 128
    community_size: int = 16
    #: "facebook" (default), "zipf", or "uniform" (paper §2.5.1 notes
    #: Datagen supports different degree distributions).
    degree_distribution: str = "facebook"
    degree_sigma: float = 1.0
    weighted: bool = False
    seed: int = 0

    def __post_init__(self):
        if self.degree_distribution not in DEGREE_DISTRIBUTIONS:
            raise GenerationError(
                f"unknown degree distribution {self.degree_distribution!r}; "
                f"known: {', '.join(DEGREE_DISTRIBUTIONS)}"
            )
        if self.num_persons < 2:
            raise GenerationError("num_persons must be at least 2")
        if self.mean_degree <= 0:
            raise GenerationError("mean_degree must be positive")
        if self.mean_degree >= self.num_persons:
            raise GenerationError("mean_degree must be below num_persons")
        if self.block_size < 4:
            raise GenerationError("block_size must be at least 4")
        if self.community_size < 4:
            raise GenerationError("community_size must be at least 4")
        cc = self.target_clustering_coefficient
        if cc is not None and not 0.0 < cc < 1.0:
            raise GenerationError(
                f"target_clustering_coefficient must be in (0,1), got {cc}"
            )


@dataclass(frozen=True)
class StepTrace:
    """Work performed by one friendship-generation step (for cost models)."""

    dimension: str
    records_sorted: int
    edges_emitted: int


@dataclass
class GenerationTrace:
    """Per-run work trace consumed by the §4.8 flow cost model."""

    flow: FlowVersion
    num_persons: int
    steps: List[StepTrace] = field(default_factory=list)
    merge_records: int = 0

    @property
    def total_records_sorted(self) -> int:
        return sum(s.records_sorted for s in self.steps) + self.merge_records


def solve_community_parameters(
    target_cc: float, community_size: int, mean_degree: float
) -> Tuple[float, float]:
    """Solve (core_density, community_budget_fraction) for a target LCC.

    Model: a member's in-community neighborhood is an Erdős–Rényi subgraph
    of density ``p``, so its LCC ≈ p × (fraction of neighbors that are
    in-community)². With in-community degree ``p (m-1)`` out of total
    degree ``D``: ``cc ≈ p³ (m-1)² / D²`` ⇒ ``p = (cc D² / (m-1)²)^(1/3)``,
    clipped to (0, 1].
    """
    m1 = community_size - 1
    p = (target_cc * mean_degree**2 / m1**2) ** (1.0 / 3.0)
    p = float(min(1.0, max(1e-3, p)))
    fraction = min(0.9, p * m1 / mean_degree)
    return p, fraction


def _forward_decay_edges(
    order: np.ndarray,
    budgets: np.ndarray,
    *,
    block_size: int,
    rng: np.random.Generator,
) -> List[Tuple[int, int]]:
    """Edges to nearby successors in a correlated ordering.

    Person at position ``pos`` connects to ``pos + gap`` with geometric
    gaps, so consecutive persons (same university/interest) connect with
    the highest probability — Datagen's correlation property.
    """
    n = len(order)
    edges: List[Tuple[int, int]] = []
    mean_gap = max(2.0, block_size / 8.0)
    p_gap = 1.0 / mean_gap
    for pos in range(n):
        b = int(budgets[pos])
        if b <= 0:
            continue
        gaps = rng.geometric(p_gap, size=b)
        for gap in gaps:
            partner = (pos + int(gap)) % n  # wrap to keep the degree budget
            a, b2 = int(order[pos]), int(order[partner])
            if a != b2:
                edges.append((a, b2) if a < b2 else (b2, a))
    return edges


def _community_edges(
    order: np.ndarray,
    *,
    community_size: int,
    core_density: float,
    rng: np.random.Generator,
) -> List[Tuple[int, int]]:
    """Core–periphery communities over consecutive persons in the ordering.

    Each community is a run of consecutive persons. The first ~60% form
    the core, wired as Erdős–Rényi with ``core_density``; periphery
    members attach to a few random core members, closing triangles
    through the dense core.
    """
    n = len(order)
    edges: List[Tuple[int, int]] = []
    pos = 0
    while pos < n:
        size = int(np.clip(rng.poisson(community_size), 4, 2 * community_size))
        members = order[pos:pos + size]
        pos += size
        m = len(members)
        if m < 2:
            continue
        core_count = max(2, int(np.ceil(0.6 * m)))
        core = members[:core_count]
        periphery = members[core_count:]
        # Dense core: ER(core_density).
        for i in range(core_count):
            for j in range(i + 1, core_count):
                if rng.random() < core_density:
                    a, b = int(core[i]), int(core[j])
                    edges.append((a, b) if a < b else (b, a))
        # Periphery: attach to k random core members each.
        k_attach = min(core_count, max(2, int(round(core_density * core_count))))
        for member in periphery:
            chosen = rng.choice(core_count, size=k_attach, replace=False)
            for c in chosen:
                a, b = int(member), int(core[c])
                edges.append((a, b) if a < b else (b, a))
    return edges


def _generate_step(
    persons: Sequence[Person],
    dimension: str,
    budgets: np.ndarray,
    config: DatagenConfig,
    rng: np.random.Generator,
    *,
    community_mode: bool,
    core_density: float,
) -> List[Tuple[int, int]]:
    """Run one friendship-generation step over one correlation dimension."""
    order = np.array(
        [p.person_id for p in sorted(persons, key=sort_key_for(dimension))],
        dtype=np.int64,
    )
    if community_mode:
        return _community_edges(
            order,
            community_size=config.community_size,
            core_density=core_density,
            rng=rng,
        )
    # positions follow `order`; budgets are indexed by person id
    step_budgets = budgets[order]
    # When another step carries community structure (CC-tuned runs), the
    # remaining budget must contribute as few triangles as possible, so
    # partners are spread over a much wider window.
    block_size = config.block_size * (16 if core_density > 0 else 1)
    return _forward_decay_edges(
        order, step_budgets, block_size=block_size, rng=rng
    )


def _plan_budgets(
    config: DatagenConfig, degrees: np.ndarray
) -> Tuple[Dict[str, np.ndarray], float, bool]:
    """Split each person's degree budget across the three dimensions.

    Returns ({dimension: per-person initiation budgets}, core_density,
    community_mode). Forward-decay steps initiate edges, and each vertex
    also *receives* about as many, so initiation budgets are half the
    degree share.
    """
    target_cc = config.target_clustering_coefficient
    budgets: Dict[str, np.ndarray] = {}
    if target_cc is None:
        for dimension, share in CORRELATION_DIMENSIONS:
            budgets[dimension] = np.maximum(
                0, np.rint(degrees * share / 2.0)
            ).astype(np.int64)
        return budgets, 0.0, False

    core_density, community_fraction = solve_community_parameters(
        target_cc, config.community_size, config.mean_degree
    )
    # The university step carries the community structure and consumes
    # `community_fraction` of the budget; the remaining fraction is split
    # between the other two dimensions proportionally to their shares.
    rest = 1.0 - community_fraction
    other = [(d, s) for d, s in CORRELATION_DIMENSIONS if d != "university"]
    total_other = sum(s for _, s in other)
    budgets["university"] = np.zeros(len(degrees), dtype=np.int64)  # implicit
    for dimension, share in other:
        effective = rest * share / total_other
        budgets[dimension] = np.maximum(
            0, np.rint(degrees * effective / 2.0)
        ).astype(np.int64)
    return budgets, core_density, True


def generate_with_flow(
    config: DatagenConfig, flow: FlowVersion = FlowVersion.V0_2_6
) -> Tuple[Graph, GenerationTrace]:
    """Generate a friendship graph and the work trace of the chosen flow.

    Both flows produce bit-identical graphs (asserted in the test suite);
    they differ in the recorded amount of sorted data, mirroring Figure 3
    of the paper.
    """
    rng = np.random.default_rng(config.seed)
    persons = generate_persons(config.num_persons, seed=config.seed)
    sampler = DEGREE_DISTRIBUTIONS[config.degree_distribution]
    degree_kwargs = (
        {"sigma": config.degree_sigma}
        if config.degree_distribution == "facebook"
        else {}
    )
    degrees = sampler(
        config.num_persons,
        mean_degree=config.mean_degree,
        rng=rng,
        **degree_kwargs,
    )
    budgets, core_density, community_mode = _plan_budgets(config, degrees)

    trace = GenerationTrace(flow=flow, num_persons=config.num_persons)
    step_edges: List[List[Tuple[int, int]]] = []
    accumulated = 0
    for step_index, (dimension, _) in enumerate(CORRELATION_DIMENSIONS):
        step_rng = np.random.default_rng((config.seed, 7919, step_index))
        edges = _generate_step(
            persons,
            dimension,
            budgets.get(dimension, np.zeros(config.num_persons, dtype=np.int64)),
            config,
            step_rng,
            community_mode=community_mode and dimension == "university",
            core_density=core_density,
        )
        step_edges.append(edges)
        if flow is FlowVersion.V0_2_1:
            # Old flow: step i+1 re-sorts persons plus every edge produced
            # by steps 0..i (paper Figure 3): cost grows with progress.
            trace.steps.append(
                StepTrace(
                    dimension=dimension,
                    records_sorted=config.num_persons + accumulated,
                    edges_emitted=len(edges),
                )
            )
            accumulated += len(edges)
        else:
            # New flow: each step sorts only the persons; duplicates are
            # removed by one final merge.
            trace.steps.append(
                StepTrace(
                    dimension=dimension,
                    records_sorted=config.num_persons,
                    edges_emitted=len(edges),
                )
            )
    all_edges = [e for edges in step_edges for e in edges]
    if flow is FlowVersion.V0_2_6:
        trace.merge_records = len(all_edges)

    builder = GraphBuilder(directed=False, weighted=config.weighted, dedup=True)
    builder.add_vertices(range(config.num_persons))
    if config.weighted:
        weight_rng = np.random.default_rng((config.seed, 104729))
        for src, dst in all_edges:
            builder.add_edge(src, dst, float(weight_rng.uniform(0.05, 1.0)))
    else:
        for src, dst in all_edges:
            builder.add_edge(src, dst)
    name = f"datagen-p{config.num_persons}"
    if config.target_clustering_coefficient is not None:
        name += f"-cc{config.target_clustering_coefficient}"
    return builder.build(name=name), trace


def generate(
    num_persons: int,
    *,
    mean_degree: float = 18.0,
    target_clustering_coefficient: Optional[float] = None,
    weighted: bool = False,
    seed: int = 0,
    **kwargs,
) -> Graph:
    """Convenience front-end: generate a Datagen graph with defaults."""
    config = DatagenConfig(
        num_persons=num_persons,
        mean_degree=mean_degree,
        target_clustering_coefficient=target_clustering_coefficient,
        weighted=weighted,
        seed=seed,
        **kwargs,
    )
    graph, _ = generate_with_flow(config)
    return graph
