"""Domain-flavored random models standing in for the real datasets.

Graphalytics' six real-world graphs (paper Table 3) come from SNAP, the
Game Trace Archive, and the MPI Twitter crawl; they are not
redistributable inside this offline reproduction. Per the substitution
policy in DESIGN.md we materialize *miniature synthetic replicas* whose
domain-specific shape matches the originals:

* ``talk``       — wiki-talk: directed, extremely skewed out-degree
                   (few talk-page stars), low reciprocity;
* ``citation``   — cit-patents: directed acyclic citations (edges point
                   from newer to older vertices), moderate in-degree skew;
* ``coplay``     — kgs / dota-league: undirected, dense co-play graphs
                   with strong community structure (players meet in
                   matches) and optional match-duration weights;
* ``social``     — com-friendster / twitter: undirected or directed
                   power-law social graphs (R-MAT-like skew).

The replicas preserve the *relative* |V|/|E| ratio, the degree-skew
regime, and directedness — the features the paper's findings depend on —
not the exact topology of the originals.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import GenerationError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.datagen.graph500 import graph500

__all__ = ["REPLICA_PROFILES", "synthetic_replica"]

#: Supported replica profiles.
REPLICA_PROFILES: Tuple[str, ...] = ("talk", "citation", "coplay", "social")


def _preferential_targets(
    rng: np.random.Generator, n: int, count: int, *, exponent: float
) -> np.ndarray:
    """Skewed target choice: vertex v picked with weight ~ (v+1)^-exponent."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    weights /= weights.sum()
    return rng.choice(n, size=count, p=weights)


def _talk_graph(n: int, m: int, rng: np.random.Generator, weighted: bool) -> GraphBuilder:
    """Directed message graph: sources uniform-ish, targets highly skewed."""
    builder = GraphBuilder(directed=True, weighted=weighted, dedup=True)
    builder.add_vertices(range(n))
    sources = _preferential_targets(rng, n, 2 * m, exponent=0.6)
    targets = _preferential_targets(rng, n, 2 * m, exponent=1.1)
    _fill(builder, sources, targets, m, rng, weighted, acyclic=False)
    return builder


def _citation_graph(n: int, m: int, rng: np.random.Generator, weighted: bool) -> GraphBuilder:
    """Directed acyclic citations: vertex v cites lower-numbered vertices."""
    builder = GraphBuilder(directed=True, weighted=weighted, dedup=True)
    builder.add_vertices(range(n))
    sources = rng.integers(1, n, size=2 * m)
    # Cited papers are skewed toward "famous" low ids, but must precede
    # the citing paper to keep the graph acyclic.
    raw_targets = _preferential_targets(rng, n, 2 * m, exponent=0.9)
    targets = raw_targets % np.maximum(sources, 1)
    _fill(builder, sources, targets, m, rng, weighted, acyclic=True)
    return builder


def _coplay_graph(n: int, m: int, rng: np.random.Generator, weighted: bool) -> GraphBuilder:
    """Undirected co-play graph: players meet in matches (small cliques).

    Matches draw 2–10 players with skill-based locality: players with
    nearby ids play together, producing community structure. When local
    neighborhoods saturate (every nearby pair already met), the matching
    pool widens — as real ladders do.
    """
    edges = set()
    attempts = 0
    spread = max(2, n // 40)
    max_attempts = 40 * m
    while len(edges) < m and attempts < max_attempts:
        attempts += 1
        size = int(rng.integers(2, 11))
        anchor = int(rng.integers(0, n))
        members = np.unique(
            np.clip(anchor + rng.integers(-spread, spread + 1, size=size), 0, n - 1)
        )
        before = len(edges)
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                if len(edges) >= m:
                    break
                edges.add((int(members[i]), int(members[j])))
        if len(edges) == before:
            # Neighborhood saturated: widen the matchmaking pool.
            spread = min(n, spread * 2)
    builder = GraphBuilder(directed=False, weighted=weighted, dedup=True)
    builder.add_vertices(range(n))
    for a, b in sorted(edges):
        weight = float(rng.uniform(0.1, 2.0)) if weighted else None
        builder.add_edge(a, b, weight)
    return builder


def _fill(
    builder: GraphBuilder,
    sources: np.ndarray,
    targets: np.ndarray,
    m: int,
    rng: np.random.Generator,
    weighted: bool,
    *,
    acyclic: bool,
) -> None:
    """Insert candidate edges until m accepted (dedup/self-loop skips)."""
    added = 0
    for s, d in zip(sources, targets):
        s, d = int(s), int(d)
        if s == d:
            continue
        if acyclic and d >= s:
            continue
        if builder.has_edge(s, d):
            continue
        weight = float(rng.uniform(0.05, 1.0)) if weighted else None
        builder.add_edge(s, d, weight)
        added += 1
        if added >= m:
            return


def synthetic_replica(
    profile: str,
    num_vertices: int,
    num_edges: int,
    *,
    directed: bool = None,
    weighted: bool = False,
    seed: int = 0,
    name: str = "",
) -> Graph:
    """Generate a miniature replica graph with the given domain profile."""
    if profile not in REPLICA_PROFILES:
        raise GenerationError(
            f"unknown replica profile {profile!r}; expected one of {REPLICA_PROFILES}"
        )
    if num_vertices < 2 or num_edges < 1:
        raise GenerationError("need at least 2 vertices and 1 edge")
    rng = np.random.default_rng(seed)

    if profile == "social":
        # Power-law social graph via R-MAT at the nearest scale, then
        # trimmed/named; optionally re-oriented for directed variants.
        scale = max(4, int(np.ceil(np.log2(num_vertices))))
        edgefactor = max(1, int(round(num_edges / 2 ** scale)))
        g = graph500(scale, edgefactor=edgefactor, weighted=weighted, seed=seed)
        if directed:
            builder = GraphBuilder(directed=True, weighted=weighted, dedup=True)
            builder.add_vertices(int(v) for v in g.vertex_ids)
            weights = g.edge_weights
            for k in range(g.num_edges):
                s = int(g.vertex_ids[g.edge_src[k]])
                d = int(g.vertex_ids[g.edge_dst[k]])
                w = float(weights[k]) if weighted else None
                builder.add_edge(s, d, w)
            return builder.build(name=name or f"social-{num_vertices}")
        return g if not name else _rename(g, name)

    if profile == "talk":
        builder = _talk_graph(num_vertices, num_edges, rng, weighted)
    elif profile == "citation":
        builder = _citation_graph(num_vertices, num_edges, rng, weighted)
    else:  # coplay
        builder = _coplay_graph(num_vertices, num_edges, rng, weighted)
    return builder.build(name=name or f"{profile}-{num_vertices}")


def _rename(graph: Graph, name: str) -> Graph:
    """Copy a graph under a new name (graphs are immutable)."""
    return Graph(
        vertex_ids=graph.vertex_ids,
        src=graph.edge_src,
        dst=graph.edge_dst,
        directed=graph.directed,
        weights=graph.edge_weights,
        name=name,
    )
