"""Hadoop cost model for the Datagen execution flows (paper §4.8, Fig 10).

The paper benchmarks Datagen v0.2.1 (old flow) against v0.2.6 (new flow)
on DAS-4 Hadoop clusters of 4/8/16 machines for scale factors (millions
of edges) 30–10000. We reproduce the experiment with a mechanistic cost
model of the two MapReduce pipelines:

* **old flow** — one sort-and-generate round per correlation step, where
  step *i* re-sorts persons plus all edges accumulated so far. Sorting is
  super-linear once a step's data exceeds cluster memory (external merge
  passes), and the accumulated data is re-written/re-read through HDFS
  every step.
* **new flow** — each step sorts only the persons and writes its own edge
  file; one final *linear* merge removes duplicates.

Both flows pay per-job spawn overhead (the paper: "the overhead incurred
by Hadoop when spawning the jobs ... becomes more negligible the larger
the scale factor is").

Calibration targets from the paper: v0.2.6/v0.2.1 speedups of 1.16, 1.33,
1.83, 2.15 and 2.9× at SF 30/100/300/1000/3000 on 16 machines; 44 min
(v0.2.6) vs 95 min (v0.2.1) for SF 1000 on 16 machines; 4→16-machine
speedups of 1.1/1.4/2.0/3.0 at SF 30/100/300/1000; and a 10.6× time
ratio between SF 1000 and SF 10000.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.datagen.generator import FlowVersion, GenerationTrace

__all__ = [
    "HadoopClusterModel",
    "DatagenFlowModel",
    "estimate_generation_time",
    "FlowVersion",
]

#: Datagen's average friendships per person (SF100 = 102M edges over
#: 1.67M persons), used to convert scale factors to person counts.
_EDGES_PER_PERSON = 61.0


@dataclass(frozen=True)
class HadoopClusterModel:
    """A DAS-4-class Hadoop cluster (paper §4.8: 2× Xeon E5620, 24 GiB)."""

    machines: int
    reducers_per_worker: int = 6
    #: In-memory sort capacity, in millions of records per machine.
    memory_records_m: float = 50.0

    def __post_init__(self):
        if self.machines < 1:
            raise ConfigurationError("machines must be >= 1")

    @property
    def workers(self) -> int:
        """One machine is the Hadoop master; the rest are workers."""
        return max(1, self.machines - 1)

    @property
    def total_reducers(self) -> int:
        return self.workers * self.reducers_per_worker

    @property
    def parallel_efficiency(self) -> float:
        """Shuffle/stragglers erode scaling as machines are added."""
        return 1.0 / (1.0 + 0.027 * (self.machines - 1))

    @property
    def effective_parallelism(self) -> float:
        return self.machines * self.parallel_efficiency

    @property
    def sort_capacity_m(self) -> float:
        """Millions of records the cluster can sort in memory (one pass)."""
        return self.memory_records_m * self.machines


@dataclass(frozen=True)
class DatagenFlowModel:
    """Cost constants (machine-seconds per million records, DAS-4 era).

    Calibrated so that v0.2.6 generates SF 1000 in ~44–49 min on 16
    machines and all paper ratios fall within ~1.4× (see
    tests/datagen/test_flow_calibration.py).
    """

    generation_cost: float = 20.3      # edge generation, per M edges
    sort_cost: float = 24.4            # MR sort, per M records (one pass)
    io_cost: float = 8.1               # HDFS write+read, per M records
    merge_cost: float = 8.1            # linear dedup merge, per M records
    extra_pass_factor: float = 0.6     # weight of external-sort passes
    job_spawn_seconds: float = 50.0    # Hadoop job startup
    num_steps: int = 3                 # correlation dimensions

    def _sort_seconds(self, records_m: float, cluster: HadoopClusterModel) -> float:
        """Super-linear sort: extra merge passes beyond memory capacity."""
        if records_m <= 0:
            return 0.0
        passes = max(0.0, float(np.log2(records_m / cluster.sort_capacity_m)))
        return self.sort_cost * records_m * (1.0 + self.extra_pass_factor * passes)

    def _jobs(self, flow: FlowVersion) -> int:
        if flow is FlowVersion.V0_2_1:
            # person job + per-step (sort job + generate job) shared: the
            # old pipeline re-sorts inside dedicated rounds.
            return 1 + self.num_steps + 2
        # person job + independent step jobs + one merge job.
        return 1 + self.num_steps + 1

    def work_machine_seconds(self, scale_factor: float, flow: FlowVersion,
                             cluster: HadoopClusterModel) -> float:
        """Total parallelizable work of one generation run."""
        edges_m = float(scale_factor)
        persons_m = edges_m / _EDGES_PER_PERSON
        work = self.generation_cost * edges_m
        if flow is FlowVersion.V0_2_1:
            # Step i sorts persons + the edges accumulated so far and
            # rewrites the accumulated data through HDFS.
            per_step = edges_m / self.num_steps
            accumulated = 0.0
            io_records = 0.0
            for _ in range(self.num_steps):
                work += self._sort_seconds(persons_m + accumulated, cluster)
                io_records += 2.0 * accumulated  # re-write + re-read
                accumulated += per_step
            work += self.io_cost * io_records
        else:
            for _ in range(self.num_steps):
                work += self._sort_seconds(persons_m, cluster)
            work += self.merge_cost * edges_m  # single linear dedup merge
        return work

    def execution_time(
        self,
        scale_factor: float,
        flow: FlowVersion,
        cluster: HadoopClusterModel,
    ) -> float:
        """Wall-clock seconds for one Datagen run."""
        if scale_factor <= 0:
            raise ConfigurationError("scale_factor must be positive")
        overhead = self._jobs(flow) * self.job_spawn_seconds
        work = self.work_machine_seconds(scale_factor, flow, cluster)
        return overhead + work / cluster.effective_parallelism

    def execution_time_from_trace(
        self,
        trace: GenerationTrace,
        cluster: HadoopClusterModel,
        *,
        scale_factor: Optional[float] = None,
    ) -> float:
        """Wall-clock estimate from a *measured* miniature generation trace.

        The miniature run records exactly which records each step sorted;
        scaling the trace to the requested full-scale factor reuses the
        measured old/new structural difference instead of the analytic
        formulas (an ablation of the model; both are tested).
        """
        total_edges = sum(s.edges_emitted for s in trace.steps)
        if total_edges == 0:
            raise ConfigurationError("trace contains no edges")
        scale = 1.0 if scale_factor is None else scale_factor * 1e6 / total_edges
        edges_m = total_edges * scale / 1e6
        work = self.generation_cost * edges_m
        for step in trace.steps:
            work += self._sort_seconds(step.records_sorted * scale / 1e6, cluster)
        if trace.flow is FlowVersion.V0_2_1:
            per_step = edges_m / max(1, len(trace.steps))
            accumulated = 0.0
            io_records = 0.0
            for _ in trace.steps:
                io_records += 2.0 * accumulated
                accumulated += per_step
            work += self.io_cost * io_records
        else:
            work += self.merge_cost * (trace.merge_records * scale / 1e6)
        overhead = self._jobs(trace.flow) * self.job_spawn_seconds
        return overhead + work / cluster.effective_parallelism


def estimate_generation_time(
    scale_factor: float,
    *,
    machines: int = 16,
    version: FlowVersion = FlowVersion.V0_2_6,
    model: Optional[DatagenFlowModel] = None,
) -> float:
    """Wall-clock seconds to generate a graph of ``scale_factor`` M edges."""
    model = model or DatagenFlowModel()
    cluster = HadoopClusterModel(machines=machines)
    return model.execution_time(scale_factor, version, cluster)
