"""Block analysis: measuring Datagen's correlation property.

"Datagen generates friendships between persons falling in the same
block ... consecutive persons in a block must have a larger probability
to connect" (paper §2.5.1). The generator realizes blocks implicitly —
persons sorted by a correlation dimension connect with geometrically
decaying distance — so this module provides the *measurement* side:
partition a sorted person order into blocks and quantify how much of the
friendship graph falls within them. The test suite uses it to verify the
correlated structure the paper requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.exceptions import GenerationError
from repro.graph.graph import Graph
from repro.datagen.persons import Person, sort_key_for

__all__ = ["Block", "build_blocks", "within_block_fraction", "correlation_report"]


@dataclass(frozen=True)
class Block:
    """One window of consecutive persons in a correlation ordering."""

    index: int
    person_ids: tuple

    def __len__(self) -> int:
        return len(self.person_ids)

    def __contains__(self, person_id: int) -> bool:
        return person_id in self.person_ids


def build_blocks(
    persons: Sequence[Person], dimension: str, block_size: int
) -> List[Block]:
    """Partition persons, sorted by a dimension, into fixed-size blocks."""
    if block_size < 2:
        raise GenerationError("block_size must be at least 2")
    ordered = sorted(persons, key=sort_key_for(dimension))
    blocks: List[Block] = []
    for index, start in enumerate(range(0, len(ordered), block_size)):
        window = ordered[start:start + block_size]
        blocks.append(
            Block(index=index, person_ids=tuple(p.person_id for p in window))
        )
    return blocks


def within_block_fraction(graph: Graph, blocks: Sequence[Block]) -> float:
    """Fraction of the graph's edges whose endpoints share a block."""
    if graph.num_edges == 0:
        return 0.0
    block_of = {}
    for block in blocks:
        for person_id in block.person_ids:
            block_of[person_id] = block.index
    within = 0
    for s, d in graph.edges():
        if block_of.get(s, -1) == block_of.get(d, -2):
            within += 1
    return within / graph.num_edges


def correlation_report(
    graph: Graph,
    persons: Sequence[Person],
    *,
    block_size: int = 128,
    random_baseline_seed: int = 0,
) -> dict:
    """Within-block fractions per dimension vs a random-order baseline.

    A correlated generator puts far more edges within blocks of the
    dimensions it used than within blocks of a random shuffle of the
    same size — the measurable form of the paper's correlation claim.
    """
    rng = np.random.default_rng(random_baseline_seed)
    report = {}
    for dimension in ("university", "interest", "random"):
        blocks = build_blocks(persons, dimension, block_size)
        report[dimension] = within_block_fraction(graph, blocks)
    shuffled = list(persons)
    rng.shuffle(shuffled)
    baseline_blocks: List[Block] = []
    for index, start in enumerate(range(0, len(shuffled), block_size)):
        window = shuffled[start:start + block_size]
        baseline_blocks.append(
            Block(index=index, person_ids=tuple(p.person_id for p in window))
        )
    report["shuffled-baseline"] = within_block_fraction(graph, baseline_blocks)
    return report
