"""Person generation with correlated attributes.

LDBC Datagen's key realism property (paper §2.5.1): "persons with
similar characteristics are more likely to be connected". It achieves
this by giving each person attributes drawn from skewed distributions
with cross-correlations, then generating friendships between persons
that are close in an ordering by each attribute ("blocks").

We generate three correlation dimensions, mirroring Datagen:

* ``university`` — where the person studied, Zipf-distributed, correlated
  with ``country``;
* ``interest`` — main interest tag, Zipf-distributed;
* ``random`` — a uniform key, providing the uncorrelated dimension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.exceptions import GenerationError

__all__ = ["Person", "generate_persons", "CORRELATION_DIMENSIONS", "sort_key_for"]

#: The correlation dimensions used by the friendship-generation steps, with
#: the fraction of each person's degree budget spent in that dimension
#: (Datagen spends most of the budget on the correlated dimensions).
CORRELATION_DIMENSIONS: Tuple[Tuple[str, float], ...] = (
    ("university", 0.45),
    ("interest", 0.45),
    ("random", 0.10),
)


@dataclass(frozen=True)
class Person:
    """One synthetic social-network member."""

    person_id: int
    country: int
    university: int
    interest: int
    random_key: int


def _zipf_choice(rng: np.random.Generator, n_items: int, size: int, alpha: float) -> np.ndarray:
    """Zipf-ish categorical draw over ``n_items`` ranked items."""
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    weights /= weights.sum()
    return rng.choice(n_items, size=size, p=weights)


def generate_persons(n: int, *, seed: int = 0) -> List[Person]:
    """Generate ``n`` persons with correlated attributes.

    Correlation structure: a person's university is drawn from a
    country-local Zipf (so persons from the same country cluster in few
    universities), which is what makes sorting by university group
    same-country persons together — the essence of Datagen's correlated
    blocks.
    """
    if n <= 0:
        raise GenerationError(f"n must be positive, got {n}")
    rng = np.random.default_rng(seed)
    n_countries = max(2, int(np.sqrt(n) / 2))
    unis_per_country = 8
    n_interests = max(4, int(np.sqrt(n)))

    countries = _zipf_choice(rng, n_countries, n, alpha=1.1)
    local_uni = _zipf_choice(rng, unis_per_country, n, alpha=1.3)
    universities = countries * unis_per_country + local_uni
    interests = _zipf_choice(rng, n_interests, n, alpha=1.2)
    random_keys = rng.permutation(n)

    return [
        Person(
            person_id=i,
            country=int(countries[i]),
            university=int(universities[i]),
            interest=int(interests[i]),
            random_key=int(random_keys[i]),
        )
        for i in range(n)
    ]


def sort_key_for(dimension: str):
    """Sort key function for a correlation dimension.

    Persons are ordered by the dimension value with the person id as the
    tiebreaker, exactly reproducible across runs.
    """
    if dimension == "university":
        return lambda p: (p.university, p.person_id)
    if dimension == "interest":
        return lambda p: (p.interest, p.person_id)
    if dimension == "random":
        return lambda p: (p.random_key, p.person_id)
    raise GenerationError(f"unknown correlation dimension {dimension!r}")
