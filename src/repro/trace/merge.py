"""Cross-process span merging: re-base worker timelines, build trees.

Worker processes time spans against their *own* clock origin, which is
unrelated to the dispatcher's — comparing the raw numbers would repeat
the skew bug this module exists to fix. The dispatcher therefore stamps
each task with its send time on the dispatcher clock; the worker notes
its own receive time, and the difference is the per-task clock offset.
:func:`rebase_spans` shifts every worker span by that offset and clamps
it into the dispatcher-side attempt window, so the merged tree obeys
the invariants tests rely on: no negative durations and every child
contained by its parent (:func:`validate_tree`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.trace.tracer import Span

__all__ = [
    "SpanNode",
    "rebase_spans",
    "span_tree",
    "span_paths",
    "validate_tree",
    "render_tree",
]

#: Tolerance for float comparisons on merged timelines.
_EPS = 1e-9


def rebase_spans(
    spans: Sequence[Span],
    offset: float,
    *,
    parent: Optional[Span] = None,
) -> List[Span]:
    """Shift spans by ``offset`` seconds and graft them under ``parent``.

    ``offset`` is ``sent_at_dispatcher - received_at_worker``: adding it
    maps worker-clock instants onto the dispatcher's timeline. Roots
    (spans whose parent is unknown within the batch) are re-parented to
    ``parent``, and every span is clamped into the parent window so the
    merged tree cannot contain negative or overhanging durations even if
    the two clocks drifted between stamping and receipt.
    """
    known = {span.span_id for span in spans}
    rebased: List[Span] = []
    for span in spans:
        start = span.start + offset
        end = None if span.end is None else span.end + offset
        parent_id = span.parent_id
        if parent is not None and (parent_id is None or parent_id not in known):
            parent_id = parent.span_id
        if parent is not None:
            lo = parent.start
            hi = parent.end if parent.end is not None else end
            start = min(max(start, lo), hi if hi is not None else start)
            if end is not None:
                end = min(max(end, start), hi if hi is not None else end)
        if end is not None and end < start:
            end = start
        rebased.append(
            Span(
                name=span.name,
                span_id=span.span_id,
                trace_id=span.trace_id,
                parent_id=parent_id,
                start=start,
                end=end,
                process=span.process,
                status=span.status,
                attributes=dict(span.attributes),
                seq=span.seq,
            )
        )
    return rebased


@dataclass
class SpanNode:
    """A span with its resolved children, ordered by start time."""

    span: Span
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.span.name


def span_tree(spans: Sequence[Span]) -> List[SpanNode]:
    """Resolve parent links into a forest (roots ordered by start)."""
    nodes: Dict[str, SpanNode] = {
        span.span_id: SpanNode(span) for span in spans
    }
    roots: List[SpanNode] = []
    for span in spans:
        node = nodes[span.span_id]
        parent = (
            nodes.get(span.parent_id) if span.parent_id is not None else None
        )
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda child: (child.span.start, child.span.span_id))
    roots.sort(key=lambda root: (root.span.start, root.span.span_id))
    return roots


def span_paths(spans: Sequence[Span]) -> List[str]:
    """The sorted multiset of ``root/child/...`` name paths.

    This is the structural fingerprint used by determinism tests: two
    runs of the same matrix produce the same path multiset regardless of
    worker count or completion order, even though timestamps differ.
    """
    paths: List[str] = []

    def walk(node: SpanNode, prefix: str) -> None:
        path = f"{prefix}/{node.name}" if prefix else node.name
        paths.append(path)
        for child in node.children:
            walk(child, path)

    for root in span_tree(spans):
        walk(root, "")
    return sorted(paths)


def validate_tree(spans: Sequence[Span]) -> List[str]:
    """Check merged-tree invariants; returns human-readable violations.

    Invariants: every span has ``end >= start``, and every child lies
    within its parent's window (to float tolerance). An empty return
    means the tree is well-formed.
    """
    problems: List[str] = []
    by_id = {span.span_id: span for span in spans}
    for span in spans:
        if span.end is not None and span.end < span.start - _EPS:
            problems.append(
                f"span {span.span_id} ({span.name}) has negative duration"
            )
        parent = by_id.get(span.parent_id) if span.parent_id else None
        if parent is None:
            continue
        if span.start < parent.start - _EPS:
            problems.append(
                f"span {span.span_id} ({span.name}) starts before its "
                f"parent {parent.span_id} ({parent.name})"
            )
        if (
            span.end is not None
            and parent.end is not None
            and span.end > parent.end + _EPS
        ):
            problems.append(
                f"span {span.span_id} ({span.name}) ends after its "
                f"parent {parent.span_id} ({parent.name})"
            )
    return problems


def render_tree(
    spans: Sequence[Span],
    *,
    max_depth: Optional[int] = None,
    min_duration: float = 0.0,
) -> str:
    """An indented, durations-annotated text rendering of the forest."""
    lines: List[str] = []

    def walk(node: SpanNode, depth: int) -> None:
        span = node.span
        if span.duration < min_duration and node.children == []:
            return
        indent = "  " * depth
        attrs = ""
        if span.attributes:
            parts = [
                f"{key}={span.attributes[key]}"
                for key in sorted(span.attributes)
            ]
            attrs = "  [" + " ".join(parts) + "]"
        status = "" if span.status == "ok" else f"  !{span.status}"
        lines.append(
            f"{indent}{span.name:<24s} {span.duration * 1000.0:10.3f} ms"
            f"{status}{attrs}"
        )
        if max_depth is not None and depth + 1 >= max_depth:
            return
        for child in node.children:
            walk(child, depth + 1)

    for root in span_tree(spans):
        walk(root, 0)
    return "\n".join(lines)
