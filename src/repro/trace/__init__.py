"""``repro.trace`` — the span-based tracing core of the reproduction.

One observability substrate for the whole stack (see
docs/observability.md): engines emit per-superstep/per-iteration spans,
platform drivers emit upload/execute sub-phase spans, the runtime emits
dispatch/attempt spans plus cache and journal counters, and the harness
wraps every benchmark job in a ``job`` span carrying its Tproc/makespan
metrics. Granula consumes the result: measured spans become
``source="measured"`` archive records, with the paper-model
:class:`~repro.granula.model.ChildRule` fractions kept only as a
fallback for unmeasured children.

Design pillars:

* an injectable monotonic :class:`Clock` (``FakeClock`` for
  deterministic tests) owned by a per-process :class:`Tracer`;
* deterministic span ids and a bounded finished-span buffer;
* JSONL export/import via :func:`repro.ioutil.atomic_write`;
* a merge step (:mod:`repro.trace.merge`) that re-bases worker-process
  spans onto the dispatcher's timeline so cross-process durations are
  comparable.
"""

from repro.trace.clock import Clock, FakeClock, MonotonicClock
from repro.trace.merge import (
    SpanNode,
    rebase_spans,
    render_tree,
    span_paths,
    span_tree,
    validate_tree,
)
from repro.trace.tracer import (
    Span,
    Tracer,
    counter,
    current_tracer,
    read_trace,
    set_tracer,
    span,
    use_tracer,
    write_trace,
)

__all__ = [
    "Clock",
    "MonotonicClock",
    "FakeClock",
    "Span",
    "SpanNode",
    "Tracer",
    "current_tracer",
    "set_tracer",
    "use_tracer",
    "span",
    "counter",
    "read_trace",
    "write_trace",
    "rebase_spans",
    "span_tree",
    "span_paths",
    "validate_tree",
    "render_tree",
]
