"""Injectable monotonic clocks — the single timing authority.

Every component of the reproduction reads time through a
:class:`Clock` owned by its :class:`~repro.trace.tracer.Tracer` instead
of calling the standard-library timers directly (lint rule OBS001
enforces this statically; this module is the one permitted call site).
Centralizing the clock buys two things the paper's methodology needs:

* **comparable timelines** — the dispatcher and every worker process
  read the same *kind* of clock, and worker spans are re-based onto the
  dispatcher's origin (:mod:`repro.trace.merge`), so cross-process
  durations can be compared and nested;
* **deterministic tests** — a :class:`FakeClock` substitutes a fully
  scripted timeline, which makes timeout, retry-backoff, and SLA paths
  (and the span output itself) reproducible bit-for-bit.
"""

from __future__ import annotations

import time as _time

__all__ = ["Clock", "MonotonicClock", "FakeClock"]


class Clock:
    """Interface: a monotonic ``now()`` plus a cooperating ``sleep()``."""

    def now(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class MonotonicClock(Clock):
    """The production clock: a high-resolution monotonic timer.

    This is the only place in ``src/repro`` allowed to touch the
    standard-library performance counter (OBS001).
    """

    def now(self) -> float:
        return _time.perf_counter()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            _time.sleep(seconds)


class FakeClock(Clock):
    """A scripted clock for deterministic tests.

    ``now()`` returns the current fake time and then advances it by
    ``tick`` (so consecutive readings differ, like a real timer, but by
    an exact, reproducible amount). ``sleep()`` advances fake time
    without blocking, so backoff/wake loops run instantly under test.
    """

    def __init__(self, start: float = 0.0, tick: float = 0.0):
        if tick < 0:
            raise ValueError("tick must be >= 0")
        self._now = float(start)
        self.tick = float(tick)

    def now(self) -> float:
        value = self._now
        self._now += self.tick
        return value

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> None:
        """Move fake time forward explicitly (no tick applied)."""
        if seconds < 0:
            raise ValueError("cannot advance a monotonic clock backwards")
        self._now += float(seconds)
