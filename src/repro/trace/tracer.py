"""Spans, counters, and the per-process tracer.

A :class:`Span` is one named, attributed interval on a process's
timeline; spans nest through a per-tracer context stack, giving the
hierarchical operation chains Granula's archives are built from
(paper §2.5.2). A :class:`Tracer` owns the process's
:class:`~repro.trace.clock.Clock`, assigns deterministic span ids
(``<process>:<sequence>`` — no randomness, so traces taken under a
:class:`~repro.trace.clock.FakeClock` are bit-reproducible), keeps a
bounded in-memory buffer of finished spans, accumulates named counters,
and exports/imports the whole trace as JSONL through
:func:`repro.ioutil.atomic_write`.

One tracer is *current* per process (:func:`current_tracer`); engines,
drivers, the runtime, and the harness all emit through it, which is
what lets a single ``trace.jsonl`` explain a whole benchmark run.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, Iterable, List, Optional, Tuple, Union

from repro.trace.clock import Clock, MonotonicClock

__all__ = [
    "Span",
    "Tracer",
    "current_tracer",
    "set_tracer",
    "use_tracer",
    "span",
    "counter",
    "read_trace",
    "write_trace",
]

#: Default bound on the finished-span buffer; beyond it the oldest spans
#: are dropped (and counted) rather than growing without limit.
DEFAULT_MAX_SPANS = 65536


@dataclass
class Span:
    """One named interval on a process timeline."""

    name: str
    span_id: str
    trace_id: str
    parent_id: Optional[str] = None
    start: float = 0.0
    end: Optional[float] = None
    process: str = "main"
    status: str = "ok"
    attributes: Dict[str, object] = field(default_factory=dict)
    #: Monotonic finish order within the tracer; assigned when recorded.
    seq: int = -1

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "kind": "span",
            "name": self.name,
            "id": self.span_id,
            "trace": self.trace_id,
            "parent": self.parent_id,
            "start": self.start,
            "end": self.end,
            "process": self.process,
            "status": self.status,
        }
        if self.attributes:
            record["attrs"] = self.attributes
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "Span":
        return cls(
            name=str(record["name"]),
            span_id=str(record["id"]),
            trace_id=str(record.get("trace", "")),
            parent_id=(
                None if record.get("parent") is None
                else str(record["parent"])
            ),
            start=float(record["start"]),
            end=(
                None if record.get("end") is None else float(record["end"])
            ),
            process=str(record.get("process", "main")),
            status=str(record.get("status", "ok")),
            attributes=dict(record.get("attrs") or {}),
        )


#: Shared placeholder yielded by disabled tracers: attribute writes land
#: somewhere harmless and no clock reads or buffer appends happen.
_NULL_SPAN = Span(name="disabled", span_id="", trace_id="")


class Tracer:
    """Per-process span recorder with a bounded buffer and counters."""

    def __init__(
        self,
        *,
        clock: Optional[Clock] = None,
        process: str = "main",
        trace_id: Optional[str] = None,
        max_spans: int = DEFAULT_MAX_SPANS,
        enabled: bool = True,
    ):
        self.clock = clock or MonotonicClock()
        self.process = process
        self.trace_id = trace_id or process
        self.max_spans = int(max_spans)
        self.enabled = enabled
        self.dropped_spans = 0
        self._finished: Deque[Span] = deque()
        self._stack: List[Span] = []
        self._counters: Dict[str, float] = {}
        self._next_id = 0
        self._next_seq = 0

    # -- span lifecycle ----------------------------------------------------

    def _new_id(self) -> str:
        span_id = f"{self.process}:{self._next_id}"
        self._next_id += 1
        return span_id

    def start_span(
        self,
        name: str,
        *,
        parent: Optional[Span] = None,
        attributes: Optional[Dict[str, object]] = None,
        push: bool = False,
    ) -> Span:
        """Open a span manually (for intervals that outlive a call frame,
        e.g. a dispatcher's attempt span, open from dispatch to envelope).

        ``parent`` defaults to the innermost context-stack span. With
        ``push=True`` the span also becomes the current context, so
        spans opened later nest under it until :meth:`end_span`.
        """
        if not self.enabled:
            if attributes:
                _NULL_SPAN.attributes = dict(attributes)
            return _NULL_SPAN
        if parent is None and self._stack:
            parent = self._stack[-1]
        opened = Span(
            name=name,
            span_id=self._new_id(),
            trace_id=self.trace_id,
            parent_id=parent.span_id if parent is not None else None,
            start=self.clock.now(),
            process=self.process,
            attributes=dict(attributes or {}),
        )
        if push:
            self._stack.append(opened)
        return opened

    def end_span(self, span: Span, *, status: Optional[str] = None) -> Span:
        """Close a span and record it in the finished buffer."""
        if span.span_id == "":  # disabled-tracer placeholder
            return span
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        if span.end is None:
            span.end = self.clock.now()
        if status is not None:
            span.status = status
        self.record(span)
        return span

    def record(self, span: Span) -> None:
        """Ingest an already-closed span (own or merged from a worker)."""
        if not self.enabled or span.span_id == "":
            return
        span.seq = self._next_seq
        self._next_seq += 1
        self._finished.append(span)
        while len(self._finished) > self.max_spans:
            self._finished.popleft()
            self.dropped_spans += 1

    @contextmanager
    def span(self, name: str, **attributes: object):
        """Context manager: a nested span covering the ``with`` body."""
        if not self.enabled:
            _NULL_SPAN.attributes = dict(attributes)
            yield _NULL_SPAN
            return
        opened = self.start_span(name, attributes=attributes, push=True)
        try:
            yield opened
        except BaseException:
            opened.status = "error"
            raise
        finally:
            self.end_span(opened)

    # -- counters ----------------------------------------------------------

    def counter(self, name: str, amount: float = 1.0) -> None:
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0.0) + float(amount)

    @property
    def counters(self) -> Dict[str, float]:
        return dict(self._counters)

    def merge_counters(self, counters: Dict[str, float]) -> None:
        for name, value in (counters or {}).items():
            self.counter(str(name), float(value))

    def take_counters(self) -> Dict[str, float]:
        """Drain the counters (used to ship worker deltas)."""
        taken = dict(self._counters)
        self._counters.clear()
        return taken

    # -- buffer access -----------------------------------------------------

    def finished_spans(self) -> List[Span]:
        return list(self._finished)

    def mark(self) -> int:
        """A position marker; pair with :meth:`spans_since`."""
        return self._next_seq

    def spans_since(self, mark: int) -> List[Span]:
        """Finished spans recorded at or after ``mark`` (buffer allowing)."""
        return [s for s in self._finished if s.seq >= mark]

    def drain(self) -> List[Span]:
        """Remove and return every finished span (worker envelopes)."""
        taken = list(self._finished)
        self._finished.clear()
        return taken

    # -- JSONL export / import ---------------------------------------------

    def export_jsonl(
        self,
        path: Union[str, Path],
        *,
        spans: Optional[Iterable[Span]] = None,
        include_counters: bool = True,
    ) -> Path:
        """Write the trace to ``path`` atomically; returns the path."""
        chosen = list(self._finished) if spans is None else list(spans)
        counters = self.counters if include_counters else None
        return write_trace(path, chosen, counters=counters)


def write_trace(
    path: Union[str, Path],
    spans: Iterable[Span],
    *,
    counters: Optional[Dict[str, float]] = None,
) -> Path:
    """Serialize spans (and counters) as JSONL via an atomic replace."""
    from repro.ioutil import atomic_write

    lines = [
        json.dumps(span.as_dict(), sort_keys=True, separators=(",", ":"))
        for span in spans
    ]
    for name in sorted(counters or {}):
        lines.append(
            json.dumps(
                {"kind": "counter", "name": name, "value": counters[name]},
                sort_keys=True,
                separators=(",", ":"),
            )
        )
    payload = "\n".join(lines)
    if payload:
        payload += "\n"
    path = Path(path)
    atomic_write(path, payload)
    return path


def read_trace(
    path: Union[str, Path],
) -> Tuple[List[Span], Dict[str, float]]:
    """Parse a JSONL trace back into spans + counters (lossless)."""
    spans: List[Span] = []
    counters: Dict[str, float] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == "counter":
                counters[str(record["name"])] = float(record["value"])
            else:
                spans.append(Span.from_dict(record))
    return spans, counters


# -- the current tracer ------------------------------------------------------

# The tracer registry is deliberately per-process: each pool worker
# installs its own Tracer after the fork (spans are rebased onto the
# dispatcher's timeline when results come back over the pipe), so the
# divergence RACE001/RACE003 guard against is the design here.
_CURRENT = Tracer()  # lint: disable=RACE003


def current_tracer() -> Tracer:
    """The process's active tracer (always exists)."""
    return _CURRENT


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the current tracer; returns the previous one."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = tracer  # lint: disable=RACE001
    return previous


@contextmanager
def use_tracer(tracer: Tracer):
    """Scoped tracer swap — restores the previous tracer on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def span(name: str, **attributes: object):
    """Convenience: a span on the current tracer."""
    return current_tracer().span(name, **attributes)


def counter(name: str, amount: float = 1.0) -> None:
    """Convenience: bump a counter on the current tracer."""
    current_tracer().counter(name, amount)
