"""Granula modeler: platform performance models as phase hierarchies.

"The Granula modeler allows experts to explicitly define once their
evaluation method for a graph analysis platform, such that the
evaluation process can be fully automated. This includes defining phases
in the execution of a job (e.g., graph loading), and recursively
defining phases as a collection of smaller, lower-level phases (e.g.,
graph loading includes reading and partitioning), up to the required
level of granularity." (paper §2.5.2)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.exceptions import ConfigurationError

__all__ = [
    "ChildRule",
    "PhaseSpec",
    "PlatformPerformanceModel",
    "DEFAULT_MODEL",
    "model_for_platform",
]


@dataclass(frozen=True)
class ChildRule:
    """Derive a sub-phase as a fixed fraction of its parent's duration.

    Real Granula models derive such values from platform log lines; our
    simulated platforms do not log at sub-phase granularity, so expert
    models encode the known cost split instead. Derived records are
    marked ``source="derived"`` in the archive, keeping them traceable.
    """

    name: str
    fraction: float
    description: str = ""

    def __post_init__(self):
        if not 0.0 < self.fraction <= 1.0:
            raise ConfigurationError(
                f"child fraction must be in (0,1], got {self.fraction}"
            )


@dataclass(frozen=True)
class PhaseSpec:
    """One phase in the model: matched by name against driver events."""

    name: str
    description: str = ""
    children: Tuple[ChildRule, ...] = ()

    def __post_init__(self):
        total = sum(rule.fraction for rule in self.children)
        if self.children and total > 1.0 + 1e-9:
            raise ConfigurationError(
                f"phase {self.name!r}: child fractions sum to {total} > 1"
            )


@dataclass(frozen=True)
class PlatformPerformanceModel:
    """The evaluation method for one platform, defined once."""

    platform: str
    phases: Tuple[PhaseSpec, ...]

    def spec_for(self, phase_name: str) -> PhaseSpec:
        for spec in self.phases:
            if spec.name == phase_name:
                return spec
        # Unmodeled phases still archive, with an empty description.
        return PhaseSpec(name=phase_name)


def _basic_phases(load_children: Tuple[ChildRule, ...]) -> Tuple[PhaseSpec, ...]:
    return (
        PhaseSpec("startup", "Deploy the platform and allocate resources"),
        PhaseSpec("load", "Load the graph into the platform", load_children),
        PhaseSpec("processing", "Execute the algorithm (this is Tproc)"),
        PhaseSpec("cleanup", "Tear down the job and free resources"),
    )


#: Fallback model used when no expert model exists for a platform.
DEFAULT_MODEL = PlatformPerformanceModel(
    platform="*",
    phases=_basic_phases(()),
)

#: Expert models, one per platform (paper: "for each platform, we have
#: developed a basic performance model"). The load split reflects each
#: platform's architecture: JVM platforms spend most of the load phase
#: deserializing; partition-heavy platforms spend it partitioning.
_MODELS: Dict[str, PlatformPerformanceModel] = {
    "giraph": PlatformPerformanceModel(
        "Giraph",
        _basic_phases(
            (
                ChildRule("read", 0.55, "Read input splits from HDFS"),
                ChildRule("partition", 0.45, "Hash-partition vertices to workers"),
            )
        ),
    ),
    "graphx": PlatformPerformanceModel(
        "GraphX",
        _basic_phases(
            (
                ChildRule("read", 0.5, "Materialize edge RDDs"),
                ChildRule("partition", 0.5, "Build the partitioned graph"),
            )
        ),
    ),
    "powergraph": PlatformPerformanceModel(
        "PowerGraph",
        _basic_phases(
            (
                ChildRule("read", 0.3, "Parse the edge list"),
                ChildRule("partition", 0.7, "Greedy vertex-cut placement"),
            )
        ),
    ),
    "graphmat": PlatformPerformanceModel(
        "GraphMat",
        _basic_phases(
            (
                ChildRule("read", 0.6, "Read the edge list"),
                ChildRule("partition", 0.4, "Build sparse-matrix tiles"),
            )
        ),
    ),
    "openg": PlatformPerformanceModel(
        "OpenG",
        _basic_phases((ChildRule("read", 1.0, "Read the CSR binary"),)),
    ),
    "pgx.d": PlatformPerformanceModel(
        "PGX.D",
        _basic_phases(
            (
                ChildRule("read", 0.35, "Read the edge list"),
                ChildRule("partition", 0.65, "Distribute and index the graph"),
            )
        ),
    ),
    # Not a graph platform: the benchmark runtime archives its own
    # scheduler timeline (expand/execute/merge) through the same modeler.
    "runtime": PlatformPerformanceModel(
        "runtime",
        (
            PhaseSpec("expand", "Expand the matrix into the job DAG"),
            PhaseSpec("execute", "Dispatch jobs to the worker pool"),
            PhaseSpec("merge", "Deterministically merge worker results"),
        ),
    ),
}


def model_for_platform(platform: str) -> PlatformPerformanceModel:
    """The expert model for a platform, or :data:`DEFAULT_MODEL`."""
    return _MODELS.get(platform.lower(), DEFAULT_MODEL)
