"""Granula visualizer: human-readable archive rendering (paper §2.5.2).

The real Granula visualizer is an interactive web interface; this
reproduction renders a performance archive as an indented text tree and
as a static HTML page with proportional phase bars.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import List, Union

from repro.granula.archiver import (
    PerformanceArchive,
    PhaseRecord,
    phases_from_spans,
)
from repro.ioutil import atomic_write

__all__ = [
    "render_text",
    "render_html",
    "save_html",
    "render_comparison",
    "render_store_run",
    "render_store_regressions",
]


def _format_seconds(seconds: float) -> str:
    if seconds >= 100:
        return f"{seconds:.0f} s"
    if seconds >= 1:
        return f"{seconds:.1f} s"
    return f"{seconds * 1000:.0f} ms"


def _text_lines(record: PhaseRecord, depth: int, lines: List[str]) -> None:
    pad = "  " * depth
    marker = "*" if record.source == "derived" else "-"
    desc = f"  ({record.description})" if record.description else ""
    lines.append(
        f"{pad}{marker} {record.name}: {_format_seconds(record.duration)}{desc}"
    )
    for child in record.children:
        _text_lines(child, depth + 1, lines)


def render_text(archive: PerformanceArchive) -> str:
    """Indented text tree; derived phases are marked with ``*``."""
    lines = [
        f"{archive.platform} / {archive.algorithm} on {archive.dataset}",
        f"makespan: {_format_seconds(archive.makespan)}, "
        f"Tproc: {_format_seconds(archive.processing_time)} "
        f"({archive.overhead_ratio() * 100:.1f}% of makespan)",
    ]
    for phase in archive.phases:
        _text_lines(phase, 1, lines)
    return "\n".join(lines)


def _html_bars(archive: PerformanceArchive) -> str:
    makespan = archive.makespan or 1.0
    rows: List[str] = []

    def emit(record: PhaseRecord, depth: int) -> None:
        left = 100.0 * record.start / makespan
        width = max(0.2, 100.0 * record.duration / makespan)
        css = "bar derived" if record.source == "derived" else "bar"
        rows.append(
            '<div class="row" style="padding-left:{pad}em">'
            '<span class="label">{name}</span>'
            '<span class="track"><span class="{css}" '
            'style="margin-left:{left:.2f}%;width:{width:.2f}%"></span></span>'
            '<span class="time">{time}</span></div>'.format(
                pad=depth,
                name=html.escape(record.name),
                css=css,
                left=left,
                width=width,
                time=_format_seconds(record.duration),
            )
        )
        for child in record.children:
            emit(child, depth + 1)

    for phase in archive.phases:
        emit(phase, 0)
    return "\n".join(rows)


def render_html(archive: PerformanceArchive) -> str:
    """A self-contained HTML page with a phase timeline."""
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8">
<title>Granula: {html.escape(archive.platform)} / {html.escape(archive.algorithm)}</title>
<style>
body {{ font-family: sans-serif; margin: 2em; }}
.row {{ display: flex; align-items: center; margin: 4px 0; }}
.label {{ width: 8em; }}
.track {{ flex: 1; background: #eee; height: 14px; position: relative; }}
.bar {{ display: block; background: #4477aa; height: 14px; }}
.bar.derived {{ background: #88bbdd; }}
.time {{ width: 6em; text-align: right; font-variant-numeric: tabular-nums; }}
</style></head><body>
<h1>{html.escape(archive.platform)} — {html.escape(archive.algorithm)} on
{html.escape(archive.dataset)}</h1>
<p>makespan {_format_seconds(archive.makespan)};
Tproc {_format_seconds(archive.processing_time)}
({archive.overhead_ratio() * 100:.1f}% of makespan)</p>
{_html_bars(archive)}
</body></html>
"""


def save_html(archive: PerformanceArchive, path: Union[str, Path]) -> Path:
    return atomic_write(path, render_html(archive))


def render_store_run(store, run_id: str) -> str:
    """A stored run's span timeline, read straight from SQL.

    The store's ``spans`` table holds the run's exported trace; this
    renders it as the same indented tree :func:`render_text` gives a
    performance archive — no archive re-parsing, no run directory
    needed. ``store`` is a :class:`repro.resultsdb.store.ResultsStore`
    (typed loosely so the Granula layer stays importable without it).
    """
    metadata = store.run_metadata(run_id)
    breaches = store.run_breaches(run_id)
    lines = [
        f"run {run_id} — {metadata['system_under_test']} "
        f"({metadata['job_count']} jobs, {len(breaches)} SLA breaches)"
    ]
    spans = store.run_spans(run_id)
    if not spans:
        lines.append("  (no trace spans stored for this run)")
    for root in phases_from_spans(spans):
        _text_lines(root, 1, lines)
    return "\n".join(lines)


def render_store_regressions(
    store, old_run: str, new_run: str, *, threshold: float = 1.10
) -> str:
    """Regression table between two stored runs, from the canned query."""
    # Lazy import: granula must stay importable without the store layer.
    from repro.resultsdb.queries import regressions

    found = regressions(store, old_run, new_run, threshold=threshold)
    if not found:
        return (
            f"no regressions: {new_run} vs {old_run} "
            f"(threshold {threshold:.2f}x)"
        )
    lines = [
        f"{len(found)} regression(s): {new_run} vs {old_run} "
        f"(threshold {threshold:.2f}x)"
    ]
    for regression in found:
        lines.append(
            f"  {regression.platform} {regression.algorithm} on "
            f"{regression.dataset}: "
            f"{_format_seconds(regression.old_seconds)} -> "
            f"{_format_seconds(regression.new_seconds)} "
            f"({regression.slowdown:.2f}x)"
        )
    return "\n".join(lines)


def render_comparison(archives: List[PerformanceArchive], *, width: int = 50) -> str:
    """Side-by-side makespan breakdowns (the Table 8 view).

    One bar per archive, split into its top-level phases; the processing
    share is highlighted so the paper's overhead-ratio finding (0.2% for
    PGX.D vs 34% for GraphX) is visible at a glance.
    """
    if not archives:
        return "(no archives)"
    longest = max(a.makespan for a in archives) or 1.0
    name_width = max(len(a.platform) for a in archives)
    glyphs = {"startup": ".", "load": "-", "processing": "#", "cleanup": "."}
    lines = [
        "makespan breakdown (#=processing, -=load, .=overhead); bars scaled "
        "to the longest makespan"
    ]
    for archive in archives:
        bar = []
        for phase in archive.phases:
            cells = int(round(width * phase.duration / longest))
            bar.append(glyphs.get(phase.name, "?") * cells)
        ratio = archive.overhead_ratio() * 100
        lines.append(
            f"{archive.platform:>{name_width}s} |{''.join(bar):<{width}s}| "
            f"{_format_seconds(archive.makespan):>8s}  Tproc "
            f"{ratio:5.1f}% of makespan"
        )
    return "\n".join(lines)
