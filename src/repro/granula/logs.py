"""Platform log files: the archiver's raw input (paper §2.5.2).

"Such information is either gathered from log files produced by the
platform, or derived using rules defined in the performance model."
Real Granula tails platform logs; here, drivers can *dump* their event
stream as a structured log file, and the archiver can rebuild a
performance archive from the file alone — so archives remain
reproducible from artifacts on disk after the job is gone.

Log format (one event per line, greppable)::

    GRANULA job=<id> platform=<name> algorithm=<alg> dataset=<ds> \
        phase=<phase> start=<seconds> end=<seconds> [key=value ...]

Measured sub-phases (an event's ``children``, recorded by
:mod:`repro.trace`) ride as their own lines carrying a ``parent=<phase>``
key, so the round trip through :func:`read_job_log` rebuilds the full
hierarchy. Raw spans have a lossless round trip of their own —
:func:`write_span_log` / :func:`read_span_log` — one ``GRANULA-SPAN``
line per span (canonical JSON payload, float-exact).
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.exceptions import GraphFormatError
from repro.granula.archiver import PerformanceArchive, build_archive
from repro.ioutil import atomic_write
from repro.trace import Span

__all__ = [
    "write_job_log",
    "read_job_log",
    "archive_from_log",
    "LoggedJob",
    "write_span_log",
    "read_span_log",
]

PathLike = Union[str, os.PathLike]

_LINE = re.compile(r"^GRANULA\s+(.*)$")
_PAIR = re.compile(r"(\w+)=((?:\"[^\"]*\")|\S+)")

#: Keys every log line must carry.
_REQUIRED = ("job", "platform", "algorithm", "dataset", "phase", "start", "end")


@dataclass
class LoggedJob:
    """A job reconstructed from its log file (archiver input)."""

    job_id: str
    platform: str
    algorithm: str
    dataset: str
    events: List[Dict[str, object]] = field(default_factory=list)


def _escape(value: object) -> str:
    text = str(value)
    if " " in text:
        return f'"{text}"'
    return text


def write_job_log(job, path: PathLike, *, job_id: str = "job-0") -> Path:
    """Serialize a job result's event stream as a Granula log file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = []

    def emit(event: Dict[str, object], parent: Optional[str]) -> None:
        pairs = {
            "job": job_id,
            "platform": job.platform,
            "algorithm": job.algorithm,
            "dataset": job.dataset,
            "phase": event["phase"],
            "start": repr(float(event["start"])),
            "end": repr(float(event["end"])),
        }
        if parent is not None:
            pairs["parent"] = parent
        for key, value in event.items():
            if key not in ("phase", "start", "end", "children"):
                pairs[key] = value
        lines.append(
            "GRANULA " + " ".join(f"{k}={_escape(v)}" for k, v in pairs.items())
        )
        for child in event.get("children") or []:
            emit(child, str(event["phase"]))

    for event in job.events:
        emit(event, None)
    return atomic_write(path, "\n".join(lines) + "\n")


def read_job_log(path: PathLike) -> LoggedJob:
    """Parse a log file back into a job the archiver understands."""
    path = Path(path)
    job: LoggedJob = None  # type: ignore[assignment]
    by_phase: Dict[str, Dict[str, object]] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            match = _LINE.match(line)
            if not match:
                raise GraphFormatError(
                    f"log line {lineno}: not a GRANULA record: {line!r}"
                )
            pairs = {
                key: value.strip('"')
                for key, value in _PAIR.findall(match.group(1))
            }
            missing = [key for key in _REQUIRED if key not in pairs]
            if missing:
                raise GraphFormatError(
                    f"log line {lineno}: missing fields {missing}"
                )
            if job is None:
                job = LoggedJob(
                    job_id=pairs["job"],
                    platform=pairs["platform"],
                    algorithm=pairs["algorithm"],
                    dataset=pairs["dataset"],
                )
            elif pairs["job"] != job.job_id:
                raise GraphFormatError(
                    f"log line {lineno}: mixed job ids "
                    f"({pairs['job']!r} vs {job.job_id!r})"
                )
            event: Dict[str, object] = {
                "phase": pairs["phase"],
                "start": float(pairs["start"]),
                "end": float(pairs["end"]),
            }
            for key, value in pairs.items():
                if key not in (*_REQUIRED, "parent"):
                    event[key] = value
            parent_name = pairs.get("parent")
            if parent_name is not None:
                parent = by_phase.get(parent_name)
                if parent is None:
                    raise GraphFormatError(
                        f"log line {lineno}: parent phase {parent_name!r} "
                        f"not seen yet"
                    )
                parent.setdefault("children", []).append(event)
            else:
                job.events.append(event)
            by_phase[str(event["phase"])] = event
    if job is None:
        raise GraphFormatError(f"{path} contains no GRANULA records")
    return job


def archive_from_log(path: PathLike) -> PerformanceArchive:
    """Build a performance archive straight from a log file."""
    return build_archive(read_job_log(path))


# -- span round trip ----------------------------------------------------------

_SPAN_PREFIX = "GRANULA-SPAN "
_COUNTER_PREFIX = "GRANULA-COUNTER "


def write_span_log(
    spans,
    path: PathLike,
    *,
    counters: Optional[Dict[str, float]] = None,
) -> Path:
    """Serialize :class:`~repro.trace.Span` records as GRANULA log lines.

    One ``GRANULA-SPAN`` line per span (canonical JSON payload) plus one
    ``GRANULA-COUNTER`` line per counter. The round trip through
    :func:`read_span_log` is lossless: ids, parents, attributes, status,
    and float-exact timestamps all survive.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [
        _SPAN_PREFIX
        + json.dumps(span.as_dict(), sort_keys=True, separators=(",", ":"))
        for span in spans
    ]
    for name in sorted(counters or {}):
        lines.append(
            _COUNTER_PREFIX
            + json.dumps(
                {"name": name, "value": counters[name]},
                sort_keys=True,
                separators=(",", ":"),
            )
        )
    return atomic_write(path, "\n".join(lines) + "\n")


def read_span_log(path: PathLike) -> Tuple[List[Span], Dict[str, float]]:
    """Parse a span log back into spans + counters (lossless)."""
    path = Path(path)
    spans: List[Span] = []
    counters: Dict[str, float] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith(_SPAN_PREFIX):
                spans.append(
                    Span.from_dict(json.loads(line[len(_SPAN_PREFIX):]))
                )
            elif line.startswith(_COUNTER_PREFIX):
                record = json.loads(line[len(_COUNTER_PREFIX):])
                counters[str(record["name"])] = float(record["value"])
            else:
                raise GraphFormatError(
                    f"log line {lineno}: not a GRANULA-SPAN record: {line!r}"
                )
    return spans, counters
