"""Granula archiver: event logs -> performance archives (paper §2.5.2).

"The Granula archiver uses the performance model of a graph analysis
platform to collect and archive detailed performance information for a
job running on the platform. ... The archive is complete (all observed
and derived results are included), descriptive (all results are
described to non-experts) and examinable (all results are derived from a
traceable source)."
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.exceptions import ConfigurationError
from repro.granula.model import PlatformPerformanceModel, model_for_platform
from repro.ioutil import atomic_write

__all__ = [
    "PhaseRecord",
    "PerformanceArchive",
    "build_archive",
    "attach_superstep_breakdown",
    "phases_from_spans",
]


@dataclass
class PhaseRecord:
    """One archived phase: observed from the log or derived by the model."""

    name: str
    start: float
    end: float
    description: str = ""
    #: Provenance: "observed" (from the event log), "measured" (a real
    #: span recorded by :mod:`repro.trace`), or "derived" (a
    #: :class:`~repro.granula.model.ChildRule` model fraction).
    source: str = "observed"
    metadata: Dict[str, object] = field(default_factory=dict)
    children: List["PhaseRecord"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "description": self.description,
            "source": self.source,
            "metadata": dict(self.metadata),
            "children": [c.as_dict() for c in self.children],
        }


@dataclass
class PerformanceArchive:
    """The complete performance record of one job."""

    platform: str
    algorithm: str
    dataset: str
    phases: List[PhaseRecord]

    @property
    def makespan(self) -> float:
        if not self.phases:
            return 0.0
        return max(p.end for p in self.phases) - min(p.start for p in self.phases)

    def phase(self, name: str) -> PhaseRecord:
        """Find a phase anywhere in the hierarchy by name."""
        stack = list(self.phases)
        while stack:
            record = stack.pop(0)
            if record.name == name:
                return record
            stack.extend(record.children)
        raise ConfigurationError(f"archive has no phase {name!r}")

    def phase_duration(self, name: str) -> float:
        return self.phase(name).duration

    @property
    def processing_time(self) -> float:
        """Tproc as defined in paper §2.3: the processing phase only."""
        return self.phase_duration("processing")

    def overhead_ratio(self) -> float:
        """Tproc / makespan, the Table 8 "Ratio" row."""
        makespan = self.makespan
        if makespan <= 0:
            return 0.0
        return self.processing_time / makespan

    def as_dict(self) -> Dict[str, object]:
        return {
            "platform": self.platform,
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "makespan": self.makespan,
            "phases": [p.as_dict() for p in self.phases],
        }

    def save(self, path: Union[str, Path]) -> Path:
        return atomic_write(path, json.dumps(self.as_dict(), indent=1))


def phases_from_spans(spans: List[Dict[str, object]]) -> List[PhaseRecord]:
    """Flat parent-linked span dicts -> a measured ``PhaseRecord`` forest.

    The bridge between the results store's ``spans`` table (or any
    span-dict list in :meth:`repro.trace.Span.as_dict` shape) and the
    Granula views: each span becomes a phase with ``source="measured"``
    and its attributes as metadata, re-parented by span id. Spans whose
    parent is absent from the list (cross-process roots, truncated
    traces) become roots rather than being dropped — the archive
    contract says *complete*. Input order is preserved among siblings.
    """
    records: Dict[str, PhaseRecord] = {}
    links: List[tuple] = []
    for span in spans:
        span_id = str(span.get("id"))
        start = float(span.get("start") or 0.0)
        end = span.get("end")
        status = str(span.get("status", "ok"))
        record = PhaseRecord(
            name=str(span.get("name", "")),
            start=start,
            end=float(end) if end is not None else start,
            description="" if status == "ok" else f"status: {status}",
            source="measured",
            metadata=dict(span.get("attrs") or {}),
        )
        records[span_id] = record
        parent = span.get("parent")
        links.append((span_id, None if parent is None else str(parent)))
    roots: List[PhaseRecord] = []
    for span_id, parent_id in links:
        if parent_id is not None and parent_id in records:
            records[parent_id].children.append(records[span_id])
        else:
            roots.append(records[span_id])
    return roots


def _derive_children(record: PhaseRecord, model: PlatformPerformanceModel) -> None:
    spec = model.spec_for(record.name)
    record.description = record.description or spec.description
    cursor = record.start
    for rule in spec.children:
        length = record.duration * rule.fraction
        record.children.append(
            PhaseRecord(
                name=rule.name,
                start=cursor,
                end=cursor + length,
                description=rule.description,
                source="derived",
            )
        )
        cursor += length


def attach_superstep_breakdown(
    archive: PerformanceArchive,
    superstep_seconds,
) -> PerformanceArchive:
    """Split the processing phase into measured per-superstep children.

    The paper's modeler supports "recursively defining phases as a
    collection of smaller, lower-level phases ... up to the required
    level of granularity"; with a vertex-centric engine the natural
    lower level is the superstep. The measured superstep durations are
    rescaled onto the archive's processing window (which may be on a
    modeled timeline), preserving their relative proportions; children
    are marked ``measured`` because they come from real span durations
    recorded by :mod:`repro.trace`.
    """
    durations = [float(s) for s in superstep_seconds]
    if not durations:
        raise ConfigurationError("superstep trace is empty")
    if any(d < 0 for d in durations):
        raise ConfigurationError("superstep durations must be non-negative")
    processing = archive.phase("processing")
    processing.children = []
    total = sum(durations) or 1.0
    cursor = processing.start
    for index, duration in enumerate(durations):
        share = processing.duration * duration / total
        processing.children.append(
            PhaseRecord(
                name=f"superstep-{index}",
                start=cursor,
                end=cursor + share,
                description=f"Superstep {index} of the vertex program",
                source="measured",
                metadata={"measured_seconds": duration},
            )
        )
        cursor += share
    return archive


def _measured_children(record: PhaseRecord, children) -> None:
    """Attach real sub-phase measurements shipped with the event.

    Each entry is a span-shaped dict (``phase``/``start``/``end`` on the
    job-relative timeline, optional ``source``, anything else becomes
    metadata). Records default to ``source="measured"`` — they exist
    because :mod:`repro.trace` actually timed them.
    """
    for child in children:
        extra = {
            k: v
            for k, v in child.items()
            if k not in ("phase", "start", "end", "source", "children")
        }
        child_record = PhaseRecord(
            name=str(child["phase"]),
            start=float(child["start"]),
            end=float(child["end"]),
            description=str(
                child.get("description", "")
            ) or f"Measured sub-phase of {record.name}",
            source=str(child.get("source", "measured")),
            metadata=extra,
        )
        grandchildren = child.get("children") or []
        if grandchildren:
            _measured_children(child_record, grandchildren)
        record.children.append(child_record)


def build_archive(
    job,
    model: Optional[PlatformPerformanceModel] = None,
) -> PerformanceArchive:
    """Build an archive from a driver job result (or any object with
    ``platform``/``algorithm``/``dataset``/``events`` attributes).

    An event that carries a ``children`` list of real measurements keeps
    them (``source="measured"``); only events without measured children
    fall back to the platform model's :class:`ChildRule` fractions
    (``source="derived"``).
    """
    model = model or model_for_platform(job.platform)
    phases: List[PhaseRecord] = []
    for event in job.events:
        extra = {
            k: v
            for k, v in event.items()
            if k not in ("phase", "start", "end", "children")
        }
        record = PhaseRecord(
            name=str(event["phase"]),
            start=float(event["start"]),
            end=float(event["end"]),
            source="observed",
            metadata=extra,
        )
        measured = event.get("children") or []
        if measured:
            record.description = (
                record.description or model.spec_for(record.name).description
            )
            _measured_children(record, measured)
        else:
            _derive_children(record, model)
        phases.append(record)
    return PerformanceArchive(
        platform=job.platform,
        algorithm=job.algorithm,
        dataset=job.dataset,
        phases=phases,
    )
