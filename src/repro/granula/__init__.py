"""Granula: fine-grained performance evaluation (paper §2.5.2).

Three modules mirror the three Granula components:

* **modeler** — experts define, once per platform, a hierarchy of
  execution phases (e.g. *graph loading* contains *reading* and
  *partitioning*) plus derivation rules, so evaluation is automated;
* **archiver** — applies a performance model to a job's event log and
  produces a *performance archive*: complete (all observed and derived
  results included), descriptive (results described to non-experts), and
  examinable (every result carries a traceable source);
* **visualizer** — renders an archive for humans (text tree / HTML).
"""

from repro.granula.model import (
    PhaseSpec,
    ChildRule,
    PlatformPerformanceModel,
    DEFAULT_MODEL,
    model_for_platform,
)
from repro.granula.archiver import PhaseRecord, PerformanceArchive, build_archive
from repro.granula.visualizer import render_text, render_html

__all__ = [
    "PhaseSpec",
    "ChildRule",
    "PlatformPerformanceModel",
    "DEFAULT_MODEL",
    "model_for_platform",
    "PhaseRecord",
    "PerformanceArchive",
    "build_archive",
    "render_text",
    "render_html",
]
