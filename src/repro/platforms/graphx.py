"""Apache GraphX driver (community, distributed, Spark RDDs).

Calibration anchors (paper):
* Table 8 — BFS on D300(L): Tproc 101.5 s, makespan 298.3 s. The
  slowest platform throughout Figure 4.
* §4.2 — "GraphX is unable to complete CDLP", failing even on R4(S):
  modeled as a crashing implementation.
* Table 9 — vertical speedups 4.5 (BFS) / 2.9 (PR); no HT benefit.
* §4.4 — needs 2 machines for BFS and 4 for PR on D1000 (memory);
  speedup 2.3 with 8× resources (BFS), 1.2 with 4× (PR) — "no
  performance increase past 4 machines".
* §4.5 — worst weak-scaling slowdown of all platforms (15.2×).
* Table 10 — smallest failing dataset G25 (8.7): the heaviest per-element
  footprint (RDD lineage + boxing) with strong skew sensitivity.
* Table 11 — CV 2.6% / 4.5%.
"""

from __future__ import annotations

from repro.platforms.base import PlatformDriver, PlatformInfo
from repro.platforms.model import PerformanceModel

__all__ = ["GraphXDriver", "GRAPHX_INFO", "GRAPHX_MODEL"]

GRAPHX_INFO = PlatformInfo(
    name="GraphX",
    vendor="Apache",
    language="Scala",
    programming_model="Spark",
    origin="community",
    distributed=True,
    version="1.6.0",
)

GRAPHX_MODEL = PerformanceModel(
    base_evps=3.16e6,
    tproc_floor=4.0,
    algorithm_adjust={"pr": 0.45, "wcc": 0.9, "lcc": 3.0, "sssp": 1.3},
    parallel_fraction={"bfs": 0.830, "pr": 0.699, "*": 0.78},
    ht_yield=0.0,
    dist_shock=1.55,
    dist_exponent={"bfs": 0.35, "pr": 0.13, "*": 0.3},
    dist_floor=3.0,
    bytes_per_element=70.0,
    skew_sensitivity=1.7,
    boundary_fraction=0.08,
    replication=0.4,
    memory_alg_mult={"lcc": 6.0, "pr": 1.45},
    fixed_overhead=30.0,
    load_rate=1.85e6,
    upload_rate=4.0e6,
    variability_cv_single=0.026,
    variability_cv_distributed=0.045,
)


class GraphXDriver(PlatformDriver):
    """Graph processing on Spark resilient distributed datasets."""

    crash_algorithms = frozenset({"cdlp"})

    def __init__(self):
        super().__init__(GRAPHX_INFO, GRAPHX_MODEL)
