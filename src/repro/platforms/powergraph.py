"""PowerGraph driver (community, distributed, Gather-Apply-Scatter).

Calibration anchors (paper):
* Table 8 — BFS on D300(L): Tproc 2.1 s, makespan 214.7 s — roughly an
  order of magnitude slower than GraphMat/PGX.D, far ahead of the JVM
  platforms.
* §4.2 — one of only two platforms (with OpenG) that completes LCC.
* Table 9 — vertical speedups 11.8 (BFS) / 10.3 (PR).
* §4.4 — completes D1000 on any machine count; speedup 6.9 (BFS) but
  only 1.8 (PR).
* §4.5 — weak-scaling slowdown up to 8.2×.
* Table 10 — processes the largest graphs on one machine; smallest
  failure is R5/com-friendster (9.3): lean C++ footprint, vertex-cut
  partitioning tolerates skew (designed for power-law graphs).
* Table 11 — the least variable platform: CV 1.5% / 4.5%.
"""

from __future__ import annotations

from repro.platforms.base import PlatformDriver, PlatformInfo
from repro.platforms.model import PerformanceModel
from repro.platforms.native import engine_runners

__all__ = ["PowerGraphDriver", "POWERGRAPH_INFO", "POWERGRAPH_MODEL"]

POWERGRAPH_INFO = PlatformInfo(
    name="PowerGraph",
    vendor="CMU",
    language="C++",
    programming_model="GAS",
    origin="community",
    distributed=True,
    version="2.2",
)

POWERGRAPH_MODEL = PerformanceModel(
    base_evps=171.3e6,
    tproc_floor=0.3,
    algorithm_adjust={"pr": 1.0, "wcc": 0.7, "cdlp": 0.5, "lcc": 0.5, "sssp": 1.1},
    scale_sensitivity=2.0,
    rate_skew_sensitivity=0.3,
    parallel_fraction={"bfs": 0.978, "pr": 0.958, "*": 0.97},
    ht_yield=0.1,
    dist_shock=1.3,
    dist_exponent={"bfs": 0.9, "pr": 0.5, "*": 0.7},
    dist_floor=0.3,
    bytes_per_element=50.0,
    skew_sensitivity=0.4,
    boundary_fraction=0.05,
    replication=0.5,
    memory_alg_mult={"lcc": 2.5, "pr": 1.1},
    swap_threshold=0.85,
    fixed_overhead=10.0,
    load_rate=1.52e6,
    upload_rate=6.0e6,
    variability_cv_single=0.015,
    variability_cv_distributed=0.045,
)


class PowerGraphDriver(PlatformDriver):
    """Gather-Apply-Scatter execution with vertex-cut partitioning.

    In native mode jobs really run as gather/apply/scatter programs on
    the miniature GAS engine (:mod:`repro.engines.gas`).
    """

    def __init__(self, execution: str = "reference"):
        super().__init__(POWERGRAPH_INFO, POWERGRAPH_MODEL, execution=execution)

    def _native_runner(self, algorithm: str):
        from repro.engines import gas

        return engine_runners(gas).get(algorithm)
