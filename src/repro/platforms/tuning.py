"""Automatic tuning policies (paper Figure 1, box 3).

"The graph analysis platform may optionally include policies to
automatically tune the system under test for different parts of the
benchmark workload." The evaluation repeatedly notes the absence of
such policies — GraphMat "does not select [its backend] autonomously"
(§4.2), PGX.D "can be tuned to be more memory-efficient, but does not
do so autonomously" (§4.6). This module supplies the missing policy: a
resource recommender that walks the platform's own performance model to
find the cheapest configuration that fits in memory and meets the SLA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.harness.sla import SLA_MAKESPAN_SECONDS
from repro.platforms.base import PlatformDriver
from repro.platforms.cluster import ClusterResources
from repro.platforms.model import WorkloadProfile

__all__ = ["TuningDecision", "recommend_resources", "capacity_frontier"]


@dataclass(frozen=True)
class TuningDecision:
    """Outcome of one tuning query."""

    feasible: bool
    resources: Optional[ClusterResources]
    predicted_tproc: Optional[float]
    predicted_makespan: Optional[float]
    predicted_memory_fraction: Optional[float]
    reason: str


def _evaluate(
    driver: PlatformDriver,
    algorithm: str,
    profile: WorkloadProfile,
    resources: ClusterResources,
    sla_seconds: float,
) -> Optional[TuningDecision]:
    model = driver.model
    demand = model.memory_demand_per_machine(algorithm, profile, resources)
    capacity = model.memory_capacity_per_machine(resources)
    if demand > capacity:
        return None
    tproc = model.processing_time(algorithm, profile, resources)
    makespan = model.makespan(algorithm, profile, resources, processing_time=tproc)
    if makespan > sla_seconds:
        return None
    return TuningDecision(
        feasible=True,
        resources=resources,
        predicted_tproc=tproc,
        predicted_makespan=makespan,
        predicted_memory_fraction=demand / capacity,
        reason=(
            f"{resources.machines} machine(s): fits memory at "
            f"{100 * demand / capacity:.0f}%, makespan "
            f"{makespan:.0f} s within the SLA"
        ),
    )


def recommend_resources(
    driver: PlatformDriver,
    algorithm: str,
    profile: WorkloadProfile,
    *,
    machine_options: Sequence[int] = (1, 2, 4, 8, 16),
    sla_seconds: float = SLA_MAKESPAN_SECONDS,
) -> TuningDecision:
    """The smallest machine count that fits memory and meets the SLA.

    This is the paper's definition of a workload's *baseline* resources
    ("the minimum amount of resources needed by the platform to
    successfully complete the workload", §2.3), computed from the model
    instead of discovered by trial runs.
    """
    if not machine_options:
        raise ConfigurationError("machine_options must be non-empty")
    if not driver.supports(algorithm):
        return TuningDecision(
            False, None, None, None, None,
            f"{driver.name} has no {algorithm.upper()} implementation",
        )
    if algorithm in driver.crash_algorithms:
        return TuningDecision(
            False, None, None, None, None,
            f"{driver.name}'s {algorithm.upper()} implementation crashes",
        )
    options = sorted(set(int(m) for m in machine_options))
    if not driver.info.distributed:
        options = [m for m in options if m == 1]
        if not options:
            return TuningDecision(
                False, None, None, None, None,
                f"{driver.name} is single-machine only",
            )
    for machines in options:
        decision = _evaluate(
            driver, algorithm, profile, ClusterResources(machines=machines),
            sla_seconds,
        )
        if decision is not None:
            return decision
    return TuningDecision(
        False, None, None, None, None,
        f"no configuration up to {options[-1]} machine(s) fits memory and "
        f"the SLA",
    )


def capacity_frontier(
    driver: PlatformDriver,
    algorithm: str,
    profile: WorkloadProfile,
    *,
    machine_options: Sequence[int] = (1, 2, 4, 8, 16),
    sla_seconds: float = SLA_MAKESPAN_SECONDS,
) -> Tuple[Tuple[int, Optional[float]], ...]:
    """(machines, predicted Tproc or None-if-infeasible) per option.

    The raw material for capacity planning: where the feasibility
    frontier sits and how Tproc moves past it.
    """
    frontier = []
    for machines in sorted(set(int(m) for m in machine_options)):
        if machines > 1 and not driver.info.distributed:
            frontier.append((machines, None))
            continue
        decision = _evaluate(
            driver, algorithm, profile, ClusterResources(machines=machines),
            sla_seconds,
        )
        frontier.append(
            (machines, decision.predicted_tproc if decision else None)
        )
    return tuple(frontier)
