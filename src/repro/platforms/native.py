"""Adapters from algorithm parameters to the programming-model engines.

Used by drivers that support native execution (Giraph -> Pregel,
PowerGraph -> GAS, GraphMat -> SpMV): maps each algorithm acronym and
its benchmark-description parameters onto the engine's front-end
signature. LCC has no engine formulation in any of the three models
(its neighborhood intersections are not neighborhood-sum shaped), so it
is absent and native-mode drivers fall back to the reference kernel.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping

__all__ = ["engine_runners"]


def engine_runners(module) -> Dict[str, Callable]:
    """Acronym -> callable(graph, params) over one engine module."""
    return {
        "bfs": lambda g, p: module.run_bfs(g, p["source_vertex"]),
        "pr": lambda g, p: module.run_pagerank(
            g, p.get("iterations", 30), p.get("damping", 0.85)
        ),
        "wcc": lambda g, p: module.run_wcc(g),
        "cdlp": lambda g, p: module.run_cdlp(g, p.get("iterations", 10)),
        "sssp": lambda g, p: module.run_sssp(g, p["source_vertex"]),
    }
