"""Apache Giraph driver (community, distributed, Pregel on Hadoop).

Calibration anchors (paper):
* Table 8 — BFS on D300(L): Tproc 22.3 s, makespan 276.6 s.
* Figure 4 — consistently ~2 orders of magnitude slower than GraphMat /
  PGX.D; high per-superstep overhead visible on tiny graphs.
* Table 9 — vertical speedups 6.0 (BFS) / 8.1 (PR); slight HT benefit.
* §4.4 — large performance hit from 1 → 2 machines; PR on D1000 breaks
  the SLA on 2 machines; overall speedups 3.3 (BFS) / 5.3 (PR).
* Table 10 — smallest failing dataset G26 (9.0) while D1000 (9.0)
  succeeds: high sensitivity to Graph500 skew, moderate JVM footprint.
* Table 11 — CV 5.0% (single) / 9.8% (distributed).
"""

from __future__ import annotations

from repro.platforms.base import PlatformDriver, PlatformInfo
from repro.platforms.model import PerformanceModel
from repro.platforms.native import engine_runners

__all__ = ["GiraphDriver", "GIRAPH_INFO", "GIRAPH_MODEL"]

GIRAPH_INFO = PlatformInfo(
    name="Giraph",
    vendor="Apache",
    language="Java",
    programming_model="Pregel",
    origin="community",
    distributed=True,
    version="1.1.0",
)

GIRAPH_MODEL = PerformanceModel(
    base_evps=17.8e6,
    tproc_floor=5.0,
    algorithm_adjust={"pr": 1.0, "wcc": 0.8, "cdlp": 0.45, "lcc": 4.0, "sssp": 1.2},
    parallel_fraction={"bfs": 0.91, "pr": 0.928, "*": 0.92},
    ht_yield=0.25,
    dist_shock=5.5,
    dist_shock_adjust={"pr": 1.45},
    dist_exponent={"bfs": 1.5, "pr": 1.62, "*": 1.4},
    dist_floor=2.0,
    bytes_per_element=55.0,
    skew_sensitivity=1.0,
    boundary_fraction=0.05,
    replication=0.3,
    memory_alg_mult={"lcc": 8.0, "pr": 1.1},
    swap_penalty=2.0,
    fixed_overhead=60.0,
    load_rate=1.6e6,
    upload_rate=5.0e6,
    variability_cv_single=0.050,
    variability_cv_distributed=0.098,
)


class GiraphDriver(PlatformDriver):
    """Vertex-centric (Pregel) execution on Hadoop MapReduce.

    In native mode (``execution="native"``) jobs really run as vertex
    programs on the miniature Pregel engine (:mod:`repro.engines.pregel`)
    — the programming model Giraph implements.
    """

    def __init__(self, execution: str = "reference"):
        super().__init__(GIRAPH_INFO, GIRAPH_MODEL, execution=execution)

    def _native_runner(self, algorithm: str):
        from repro.engines import pregel

        return engine_runners(pregel).get(algorithm)
