"""GraphMat driver (industry/Intel, SpMV; manual S/D backend choice).

Calibration anchors (paper):
* Table 8 — BFS on D300(L): Tproc 0.3 s, makespan 22.8 s — the fastest
  single-node platform (vertex programs mapped to sparse-matrix ops).
* §4.2 — "GraphMat can run either the S or D backend, but does not
  select so autonomously; SSSP is not supported in S, so we use D only
  for this algorithm": the driver mirrors the manual selection rule.
* LCC fails on R4(S)/D300(L): SpMV formulations of triangle counting
  blow up memory (modeled via a large LCC memory multiplier).
* Table 9 — vertical speedups 6.9 (BFS) / 11.3 (PR); no HT benefit.
* §4.4 — "GraphMat shows a clear outlier for PR on a single machine,
  most likely because of swapping": D1000 fills ~78% of one node's
  memory, beyond the swap threshold.
* Table 10 — smallest failing dataset G26 (9.0), succeeding D1000 of
  equal scale (skew sensitivity).
* Table 11 — CV 9.7% / 5.7% — fast but comparatively variable.
"""

from __future__ import annotations

from repro.platforms.base import PlatformDriver, PlatformInfo
from repro.platforms.cluster import ClusterResources
from repro.platforms.model import PerformanceModel
from repro.platforms.native import engine_runners

__all__ = ["GraphMatDriver", "GRAPHMAT_INFO", "GRAPHMAT_MODEL"]

GRAPHMAT_INFO = PlatformInfo(
    name="GraphMat",
    vendor="Intel",
    language="C++",
    programming_model="SpMV",
    origin="industry",
    distributed=True,  # D backend (GraphPad, MPI)
    version="Feb '16",
)

GRAPHMAT_MODEL = PerformanceModel(
    base_evps=1233.0e6,
    tproc_floor=0.05,
    algorithm_adjust={"pr": 0.9, "wcc": 1.0, "cdlp": 2.4, "lcc": 3.0, "sssp": 1.2},
    parallel_fraction={"bfs": 0.928, "pr": 0.974, "*": 0.95},
    ht_yield=0.0,
    dist_shock=1.6,
    dist_exponent={"bfs": 0.75, "pr": 0.8, "*": 0.75},
    dist_floor=0.3,
    bytes_per_element=50.0,
    skew_sensitivity=1.0,
    boundary_fraction=0.06,
    replication=0.35,
    memory_alg_mult={"lcc": 40.0, "pr": 1.15},
    swap_threshold=0.70,
    swap_penalty=4.0,
    fixed_overhead=5.0,
    load_rate=17.6e6,
    upload_rate=8.0e6,
    variability_cv_single=0.097,
    variability_cv_distributed=0.057,
)


class GraphMatDriver(PlatformDriver):
    """SpMV execution; backend "S" (shared memory) or "D" (MPI)."""

    def __init__(self, backend: str = "auto", execution: str = "reference"):
        """``backend``: "S", "D", or "auto" (the harness's manual rule).

        In native mode jobs really run as semiring sparse-matrix products
        on the miniature SpMV engine (:mod:`repro.engines.spmv`).
        """
        super().__init__(GRAPHMAT_INFO, GRAPHMAT_MODEL, execution=execution)
        backend = backend.upper() if backend != "auto" else backend
        if backend not in ("S", "D", "auto"):
            raise ValueError(f"backend must be 'S', 'D', or 'auto', got {backend!r}")
        self.backend = backend

    def _native_runner(self, algorithm: str):
        from repro.engines import spmv

        return engine_runners(spmv).get(algorithm)

    def _select_backend(self, algorithm: str, resources: ClusterResources) -> str:
        """Mirror the paper's manual backend rule.

        SSSP is only available in the distributed backend; multi-machine
        runs force D; otherwise the configured preference applies
        (default: S on one machine).
        """
        if algorithm == "sssp" or resources.machines > 1:
            return "D"
        if self.backend == "auto":
            return "S"
        return self.backend
