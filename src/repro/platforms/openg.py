"""OpenG driver (industry/Georgia Tech + IBM, hand-written native code).

Calibration anchors (paper):
* Table 8 — BFS on D300(L): Tproc 1.8 s, makespan 5.4 s — tiny overhead
  (no JVM, no deployment; loading dominated by raw I/O).
* §4.1 — "OpenG's queue-based BFS implementation results in a large
  performance gain over platforms that process all vertices using an
  iterative algorithm" on R2(XS), whose BFS covers ~10% of the graph:
  the model scales BFS work by the covered fraction.
* §4.2 — ~order of magnitude slower than PGX.D/GraphMat for BFS, PR,
  SSSP; close to them on WCC; *best* on CDLP; one of two platforms that
  complete LCC.
* Non-distributed: single machine only (Table 5 type "I, S"; no entry in
  the distributed rows of Table 11).
* Table 9 — vertical speedups 6.3 (BFS) / 6.4 (PR).
* Table 10 — smallest failing dataset R5 (9.3): lean native footprint.
* Table 11 — CV 4.8% (single).
"""

from __future__ import annotations

from repro.platforms.base import PlatformDriver, PlatformInfo
from repro.platforms.model import PerformanceModel

__all__ = ["OpenGDriver", "OPENG_INFO", "OPENG_MODEL"]

OPENG_INFO = PlatformInfo(
    name="OpenG",
    vendor="Georgia Tech",
    language="C++",
    programming_model="Native code",
    origin="industry",
    distributed=False,
    version="Feb '16",
)

OPENG_MODEL = PerformanceModel(
    base_evps=165.5e6,
    tproc_floor=0.03,
    algorithm_adjust={"pr": 1.8, "wcc": 0.45, "cdlp": 0.28, "lcc": 0.5, "sssp": 2.0},
    parallel_fraction={"bfs": 0.897, "pr": 0.900, "*": 0.90},
    ht_yield=0.0,
    distributed=False,
    bytes_per_element=35.0,
    skew_sensitivity=0.6,
    memory_alg_mult={"lcc": 2.0},
    fixed_overhead=0.5,
    load_rate=100.0e6,
    upload_rate=20.0e6,
    variability_cv_single=0.048,
    variability_cv_distributed=0.0,
    queue_based_bfs=True,
)


class OpenGDriver(PlatformDriver):
    """Hand-optimized native kernels (GraphBIG), single machine only."""

    def __init__(self):
        super().__init__(OPENG_INFO, OPENG_MODEL)
