"""Hardware model of the benchmarking environment (paper §3.2, Table 7).

DAS-5 compute nodes: 2× Intel Xeon E5-2630 (16 cores, 32 threads with
Hyper-Threading), 64 GiB memory, 1 Gbit/s Ethernet + FDR InfiniBand.
The perf models consume these resource descriptions: core counts drive
the vertical-scaling experiments, memory capacity drives stress-test and
out-of-memory failures, machine counts drive horizontal scaling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["MachineSpec", "ClusterResources", "DAS5_MACHINE"]

GIB = 2 ** 30


@dataclass(frozen=True)
class MachineSpec:
    """One compute node."""

    name: str
    cores: int
    threads: int  # hardware threads incl. Hyper-Threading
    memory_bytes: int
    network_gbps: float

    def __post_init__(self):
        if self.cores < 1 or self.threads < self.cores:
            raise ConfigurationError("need threads >= cores >= 1")
        if self.memory_bytes <= 0:
            raise ConfigurationError("memory must be positive")


#: The DAS-5 node used for all paper experiments (Table 7).
DAS5_MACHINE = MachineSpec(
    name="DAS-5 (2x Xeon E5-2630)",
    cores=16,
    threads=32,
    memory_bytes=64 * GIB,
    network_gbps=1.0,
)


@dataclass(frozen=True)
class ClusterResources:
    """Resources granted to one benchmark job."""

    machines: int = 1
    threads: int = None  # type: ignore[assignment]  # None = all hw threads
    machine: MachineSpec = DAS5_MACHINE

    def __post_init__(self):
        if self.machines < 1:
            raise ConfigurationError("machines must be >= 1")
        if self.threads is not None and not 1 <= self.threads <= self.machine.threads:
            raise ConfigurationError(
                f"threads must be in [1, {self.machine.threads}], got {self.threads}"
            )

    @property
    def threads_per_machine(self) -> int:
        return self.threads if self.threads is not None else self.machine.threads

    @property
    def distributed(self) -> bool:
        return self.machines > 1

    @property
    def total_memory_bytes(self) -> int:
        return self.machines * self.machine.memory_bytes

    def describe(self) -> str:
        return (
            f"{self.machines} x {self.machine.name}, "
            f"{self.threads_per_machine} threads/machine"
        )
