"""Graph partitioning strategies and their measured cost (paper §3.1, §4.5).

The platforms under test differ fundamentally in how they place a graph
on a cluster:

* **hash edge-cut** (Giraph, GraphX default, GraphMat): vertices are
  hashed to machines; every edge crossing machines forces a *ghost*
  (remote replica) of its endpoint. On skewed graphs nearly all edges of
  a hub cross machines.
* **greedy vertex-cut** (PowerGraph): *edges* are placed on machines and
  a vertex is replicated on every machine holding one of its edges.
  PowerGraph "is designed for real-world graphs which have a skewed
  power-law degree distribution" (§3.1) precisely because vertex-cuts
  bound the replication of hubs by the machine count, while edge-cuts
  ghost a hub once per remote neighbor machine anyway — and unbalance
  edges badly.

These implementations really partition the miniature graphs, so the
replication factors and balance numbers that justify the performance
models' memory terms can be *measured*, not assumed (see
``benchmarks/bench_ablation_partitioning.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graph.graph import Graph

__all__ = [
    "PartitionStats",
    "hash_edge_cut",
    "greedy_vertex_cut",
    "EdgeCutPartition",
    "VertexCutPartition",
]


@dataclass(frozen=True)
class PartitionStats:
    """Quality measures of one partitioning."""

    machines: int
    strategy: str
    #: Average number of machine-local copies (master + ghosts/mirrors)
    #: per vertex; 1.0 is ideal.
    replication_factor: float
    #: Fraction of edges whose endpoints live on different machines
    #: (edge-cut) or that required a new vertex replica (vertex-cut).
    cut_fraction: float
    #: Edges on the most loaded machine divided by the mean (1.0 ideal).
    edge_imbalance: float
    #: Vertex copies on the most loaded machine divided by the mean.
    vertex_imbalance: float


@dataclass(frozen=True)
class EdgeCutPartition:
    """A vertex assignment plus derived placement data."""

    machines: int
    #: machine of each vertex (dense index -> machine).
    vertex_owner: np.ndarray
    #: machine of each logical edge (owner of its source).
    edge_owner: np.ndarray
    stats: PartitionStats


@dataclass(frozen=True)
class VertexCutPartition:
    """An edge assignment plus the induced vertex replication."""

    machines: int
    #: machine of each logical edge.
    edge_owner: np.ndarray
    #: boolean matrix [machines, vertices]: replica present?
    replicas: np.ndarray
    stats: PartitionStats


def _check(graph: Graph, machines: int) -> None:
    if machines < 1:
        raise ConfigurationError("machines must be >= 1")
    if graph.num_vertices == 0:
        raise ConfigurationError("cannot partition an empty graph")


def _imbalance(counts: np.ndarray) -> float:
    mean = counts.mean()
    return float(counts.max() / mean) if mean > 0 else 1.0


def hash_edge_cut(graph: Graph, machines: int, *, seed: int = 0) -> EdgeCutPartition:
    """Hash vertices to machines; edges live with their source vertex.

    A vertex is replicated (ghosted) on every remote machine that owns a
    neighbor, which is how Pregel-style systems exchange messages.
    """
    _check(graph, machines)
    rng = np.random.default_rng(seed)
    # Salted hash: a permutation of vertices, then modulo machines.
    perm = rng.permutation(graph.num_vertices)
    vertex_owner = perm % machines
    src, dst = graph.edge_src, graph.edge_dst
    edge_owner = vertex_owner[src]

    # Ghosts: machine m needs a copy of v if an edge it owns touches v
    # and v is owned elsewhere. Count exact copies per (machine, vertex).
    copies = np.zeros((machines, graph.num_vertices), dtype=bool)
    copies[vertex_owner, np.arange(graph.num_vertices)] = True  # masters
    copies[edge_owner, dst] = True
    if not graph.directed:
        # Undirected engines exchange in both directions.
        reverse_owner = vertex_owner[dst]
        copies[reverse_owner, src] = True

    total_copies = copies.sum()
    cut = np.count_nonzero(vertex_owner[src] != vertex_owner[dst])
    edge_counts = np.bincount(edge_owner, minlength=machines)
    vertex_counts = copies.sum(axis=1)
    stats = PartitionStats(
        machines=machines,
        strategy="hash-edge-cut",
        replication_factor=float(total_copies / graph.num_vertices),
        cut_fraction=float(cut / max(1, graph.num_edges)),
        edge_imbalance=_imbalance(edge_counts),
        vertex_imbalance=_imbalance(vertex_counts),
    )
    return EdgeCutPartition(
        machines=machines,
        vertex_owner=vertex_owner,
        edge_owner=edge_owner,
        stats=stats,
    )


def greedy_vertex_cut(graph: Graph, machines: int) -> VertexCutPartition:
    """PowerGraph's greedy heuristic: place each edge to minimize new
    vertex replicas, breaking ties toward the least-loaded machine.

    Rules (Gonzalez et al., OSDI'12):
    1. both endpoints have replicas on a common machine -> use it;
    2. one endpoint has replicas -> place with that endpoint;
    3. neither has replicas -> least-loaded machine.
    """
    _check(graph, machines)
    n = graph.num_vertices
    replicas = np.zeros((machines, n), dtype=bool)
    load = np.zeros(machines, dtype=np.int64)
    edge_owner = np.zeros(graph.num_edges, dtype=np.int64)

    for k in range(graph.num_edges):
        u = int(graph.edge_src[k])
        v = int(graph.edge_dst[k])
        u_set = replicas[:, u]
        v_set = replicas[:, v]
        common = np.nonzero(u_set & v_set)[0]
        if len(common):
            candidates = common
        else:
            either = np.nonzero(u_set | v_set)[0]
            candidates = either if len(either) else np.arange(machines)
        machine = int(candidates[np.argmin(load[candidates])])
        edge_owner[k] = machine
        replicas[machine, u] = True
        replicas[machine, v] = True
        load[machine] += 1

    placed = replicas.sum(axis=0)
    # Isolated vertices still need one master copy.
    total_copies = int(placed.sum() + np.count_nonzero(placed == 0))
    new_replica_edges = int((placed > 1).sum())
    stats = PartitionStats(
        machines=machines,
        strategy="greedy-vertex-cut",
        replication_factor=float(total_copies / n),
        cut_fraction=float(new_replica_edges / max(1, n)),
        edge_imbalance=_imbalance(load.astype(np.float64)),
        vertex_imbalance=_imbalance(replicas.sum(axis=1).astype(np.float64)),
    )
    return VertexCutPartition(
        machines=machines,
        edge_owner=edge_owner,
        replicas=replicas,
        stats=stats,
    )


def compare_strategies(
    graph: Graph, machines: int, *, seed: int = 0
) -> Tuple[PartitionStats, PartitionStats]:
    """(edge-cut stats, vertex-cut stats) for one graph and cluster size."""
    return (
        hash_edge_cut(graph, machines, seed=seed).stats,
        greedy_vertex_cut(graph, machines).stats,
    )
