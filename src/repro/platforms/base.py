"""The Graphalytics driver API (paper Figure 1, component 10).

A platform driver integrates the harness with one graph-analysis
platform. The harness instructs the driver to *upload* graphs (including
format conversion), *execute* an algorithm with given parameters and
resources, and return the output for validation.

In this reproduction every driver really executes the algorithm — the
reference kernels run in-process on the materialized miniature graph, so
outputs are genuine and validated — while the full-scale run-times,
memory demands, and failures are produced by the driver's calibrated
:class:`~repro.platforms.model.PerformanceModel`. Both sides are kept
strictly separate in the result record (``measured_*`` vs ``modeled_*``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.algorithms.registry import ALGORITHMS, get_algorithm
from repro.graph.graph import Graph
from repro.platforms.cluster import ClusterResources
from repro.platforms.model import PerformanceModel, WorkloadProfile
from repro.trace import current_tracer

__all__ = [
    "JobStatus",
    "PlatformInfo",
    "UploadHandle",
    "JobResult",
    "PlatformDriver",
    "profile_from_graph",
]


class JobStatus(enum.Enum):
    """Terminal state of one benchmark job."""

    SUCCEEDED = "succeeded"
    FAILED_MEMORY = "failed-memory"
    CRASHED = "crashed"
    NOT_SUPPORTED = "not-supported"


@dataclass(frozen=True)
class PlatformInfo:
    """Static platform roster entry (paper Table 5)."""

    name: str
    vendor: str
    language: str
    programming_model: str
    origin: str          # "community" or "industry"
    distributed: bool    # supports multi-machine deployments
    version: str

    @property
    def type_code(self) -> str:
        """Table 5 code, e.g. ``C, D`` or ``I, S``."""
        first = "C" if self.origin == "community" else "I"
        second = "D" if self.distributed else "S"
        return f"{first}, {second}"


@dataclass
class UploadHandle:
    """A graph uploaded (converted) into a platform's internal format."""

    graph: Graph
    profile: WorkloadProfile
    platform: str
    modeled_upload_time: float
    measured_upload_seconds: float
    deleted: bool = False


@dataclass
class JobResult:
    """Everything recorded about one (platform, algorithm, dataset) job."""

    platform: str
    algorithm: str
    dataset: str
    resources: ClusterResources
    status: JobStatus
    failure_reason: str = ""
    run_index: int = 0
    backend: str = ""                 # e.g. GraphMat "S" / "D"
    # modeled, full scale (seconds / bytes)
    modeled_processing_time: Optional[float] = None
    modeled_makespan: Optional[float] = None
    modeled_upload_time: Optional[float] = None
    modeled_memory_demand: Optional[float] = None
    # measured on this machine, miniature scale (seconds)
    measured_processing_seconds: Optional[float] = None
    # real algorithm output on the miniature graph (dense-index array)
    output: Optional[np.ndarray] = None
    # Granula-consumable event log: [{"phase", "start", "end", ...}, ...]
    events: List[Dict[str, object]] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return self.status is JobStatus.SUCCEEDED

    def as_record(self) -> Dict[str, object]:
        """Flat dict for the results database (no arrays)."""
        return {
            "platform": self.platform,
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "machines": self.resources.machines,
            "threads": self.resources.threads_per_machine,
            "status": self.status.value,
            "failure_reason": self.failure_reason,
            "run_index": self.run_index,
            "backend": self.backend,
            "modeled_processing_time": self.modeled_processing_time,
            "modeled_makespan": self.modeled_makespan,
            "modeled_upload_time": self.modeled_upload_time,
            "modeled_memory_demand": self.modeled_memory_demand,
            "measured_processing_seconds": self.measured_processing_seconds,
        }


def profile_from_graph(
    graph: Graph,
    *,
    name: str = "",
    memory_skew: Optional[float] = None,
    bfs_coverage: float = 0.95,
) -> WorkloadProfile:
    """Derive a workload profile by measuring a (miniature) graph.

    Used when benchmarking a user-supplied graph that has no registry
    entry: degree moments and component counts are measured directly;
    ``memory_skew`` defaults to a heuristic on the degree skew.
    """
    from repro.algorithms.wcc import weakly_connected_components

    degrees = graph.degrees().astype(np.float64)
    mean_degree = float(degrees.mean()) if len(degrees) else 0.0
    if mean_degree > 0:
        cv2 = float(degrees.var() / mean_degree ** 2)
    else:
        cv2 = 0.0
    if memory_skew is None:
        memory_skew = 1.0 + min(3.0, cv2 / 10.0)
    components = len(np.unique(weakly_connected_components(graph))) if graph.num_vertices else 0
    return WorkloadProfile(
        name=name or graph.name or "user-graph",
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        directed=graph.directed,
        weighted=graph.is_weighted,
        mean_degree=mean_degree,
        degree_cv2=cv2,
        memory_skew=float(memory_skew),
        bfs_coverage=bfs_coverage,
        component_count=components,
    )


class PlatformDriver:
    """Base driver: upload / execute / delete against a simulated platform.

    Subclasses provide ``info`` and ``model`` and may override the quirk
    hooks (:meth:`_select_backend`, :attr:`crash_algorithms`,
    :attr:`unsupported_algorithms`, :meth:`_native_runner`).

    ``execution`` selects what actually computes the output on the
    miniature graph: ``"reference"`` (default) runs the vectorized
    reference kernels; ``"native"`` runs the platform's own programming
    model — the Pregel, GAS, or SpMV engine of :mod:`repro.engines` —
    where the subclass provides one. Outputs are validation-equivalent
    either way (enforced by the engine test suite); native mode is
    slower but executes the model the platform is named after.
    """

    #: Algorithms whose vendor implementation is missing (PGX.D: LCC).
    unsupported_algorithms: frozenset = frozenset()
    #: Algorithms whose implementation crashes (GraphX: CDLP, §4.2).
    crash_algorithms: frozenset = frozenset()

    def __init__(
        self,
        info: PlatformInfo,
        model: PerformanceModel,
        *,
        execution: str = "reference",
    ):
        if execution not in ("reference", "native"):
            raise ConfigurationError(
                f"execution must be 'reference' or 'native', got {execution!r}"
            )
        self.info = info
        self.model = model
        self.execution = execution

    def _native_runner(self, algorithm: str):
        """A callable(graph, params) for native-model execution, or None."""
        return None

    def _run_algorithm(self, algorithm: str, graph: Graph, params):
        if self.execution == "native":
            runner = self._native_runner(algorithm)
            if runner is not None:
                return runner(graph, dict(params or {}))
        return get_algorithm(algorithm).run(graph, params)

    # -- capability -------------------------------------------------------

    @property
    def name(self) -> str:
        return self.info.name

    def supported_algorithms(self) -> frozenset:
        return frozenset(ALGORITHMS) - self.unsupported_algorithms

    def supports(self, algorithm: str) -> bool:
        return algorithm.lower() in self.supported_algorithms()

    def validate_resources(self, resources: ClusterResources) -> None:
        if resources.machines > 1 and not self.info.distributed:
            raise ConfigurationError(
                f"{self.name} is a non-distributed platform; it cannot use "
                f"{resources.machines} machines"
            )

    # -- driver API ----------------------------------------------------------

    def upload(
        self, graph: Graph, profile: Optional[WorkloadProfile] = None
    ) -> UploadHandle:
        """Convert a graph into the platform's format.

        The conversion truly runs (the Graph's CSR arrays are what the
        in-process execution consumes); the modeled time covers the
        full-scale dataset.
        """
        if profile is None:
            profile = profile_from_graph(graph)
        with current_tracer().span(
            "upload", platform=self.name, dataset=profile.name
        ) as upload_span:
            # Touch the adjacency so the conversion cost is real, not lazy.
            _ = graph.out_indptr[-1], graph.in_indptr[-1]
        elapsed = upload_span.duration
        return UploadHandle(
            graph=graph,
            profile=profile,
            platform=self.name,
            modeled_upload_time=self.model.upload_time(profile),
            measured_upload_seconds=elapsed,
        )

    def delete(self, handle: UploadHandle) -> None:
        """Release an uploaded graph."""
        handle.deleted = True

    def _select_backend(self, algorithm: str, resources: ClusterResources) -> str:
        """Backend label recorded in results (overridden by GraphMat)."""
        return ""

    def execute(
        self,
        handle: UploadHandle,
        algorithm: str,
        params: Optional[Mapping[str, object]] = None,
        resources: Optional[ClusterResources] = None,
        *,
        run_index: int = 0,
        seed: int = 0,
    ) -> JobResult:
        """Run one algorithm job; never raises for modeled failures."""
        if handle.deleted:
            raise ConfigurationError("graph was deleted from the platform")
        algorithm = algorithm.lower()
        resources = resources or ClusterResources()
        self.validate_resources(resources)
        profile = handle.profile
        backend = self._select_backend(algorithm, resources)
        tracer = current_tracer()

        def _result(status: JobStatus, reason: str = "", **kwargs) -> JobResult:
            return JobResult(
                platform=self.name,
                algorithm=algorithm,
                dataset=profile.name,
                resources=resources,
                status=status,
                failure_reason=reason,
                run_index=run_index,
                backend=backend,
                modeled_upload_time=handle.modeled_upload_time,
                **kwargs,
            )

        if algorithm in self.unsupported_algorithms:
            return _result(
                JobStatus.NOT_SUPPORTED,
                f"{self.name} provides no {algorithm.upper()} implementation",
            )
        get_algorithm(algorithm)  # raises for unknown acronyms
        if algorithm in self.crash_algorithms:
            return _result(
                JobStatus.CRASHED,
                f"{self.name}'s {algorithm.upper()} implementation crashes",
            )
        demand = self.model.memory_demand_per_machine(algorithm, profile, resources)
        capacity = self.model.memory_capacity_per_machine(resources)
        if demand > capacity:
            return _result(
                JobStatus.FAILED_MEMORY,
                f"needs {demand / 2**30:.1f} GiB/machine, capacity "
                f"{capacity / 2**30:.1f} GiB",
                modeled_memory_demand=demand,
            )

        # Real execution on the miniature graph (reference kernels, or
        # the platform's own programming model in native mode). The
        # processing span is the measurement — no separate re-timing.
        with tracer.span(
            "execute", platform=self.name, algorithm=algorithm,
            dataset=profile.name,
        ):
            with tracer.span("processing", algorithm=algorithm) as proc_span:
                output = self._run_algorithm(algorithm, handle.graph, params)
        measured = proc_span.duration

        tproc = self.model.processing_time(algorithm, profile, resources)
        tproc = self.model.apply_variability(
            tproc,
            resources,
            seed_key=(
                seed,
                self.name,
                algorithm,
                profile.name,
                resources.machines,
                resources.threads_per_machine,
                run_index,
            ),
        )
        makespan = self.model.makespan(
            algorithm, profile, resources, processing_time=tproc
        )
        result = _result(
            JobStatus.SUCCEEDED,
            modeled_processing_time=tproc,
            modeled_makespan=makespan,
            modeled_memory_demand=demand,
            measured_processing_seconds=measured,
            output=output,
        )
        result.events = self._build_events(algorithm, profile, tproc, makespan)
        return result

    def _build_events(
        self,
        algorithm: str,
        profile: WorkloadProfile,
        tproc: float,
        makespan: float,
    ) -> List[Dict[str, object]]:
        """Granula-consumable phase log on the modeled timeline."""
        startup_end = self.model.fixed_overhead
        load_end = startup_end + self.model.load_time(profile)
        proc_end = load_end + tproc
        return [
            {"phase": "startup", "start": 0.0, "end": startup_end},
            {
                "phase": "load",
                "start": startup_end,
                "end": load_end,
                "elements": profile.elements,
            },
            {
                "phase": "processing",
                "start": load_end,
                "end": proc_end,
                "algorithm": algorithm,
            },
            {"phase": "cleanup", "start": proc_end, "end": makespan},
        ]

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} ({self.info.type_code})>"
