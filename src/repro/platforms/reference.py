"""The reference platform: a real, measured, in-process driver.

Requirement R5 demands "easy ways to add new platforms and systems to
test". This driver is the existence proof: a seventh platform that runs
the reference implementations *as the system under test*, reporting its
**measured** wall-clock as Tproc instead of a calibrated model. It is
not part of the paper's Table 5 roster (the experiments pin the six
published platforms), but it plugs into the same harness, registry,
validation, and Granula pipeline:

    >>> from repro.platforms.reference import ReferenceDriver
    >>> driver = ReferenceDriver()
    >>> handle = driver.upload(graph)
    >>> result = driver.execute(handle, "bfs", {"source_vertex": 0})
    >>> result.modeled_processing_time  # == measured wall-clock

Because its numbers are real, it is also the honest baseline for the
miniature-scale kernel benchmarks.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.algorithms.registry import get_algorithm
from repro.platforms.base import (
    JobResult,
    JobStatus,
    PlatformDriver,
    PlatformInfo,
    UploadHandle,
)
from repro.platforms.cluster import ClusterResources
from repro.platforms.model import PerformanceModel
from repro.trace import current_tracer

__all__ = ["ReferenceDriver", "REFERENCE_INFO"]

REFERENCE_INFO = PlatformInfo(
    name="PythonRef",
    vendor="Graphalytics-Repro",
    language="Python",
    programming_model="NumPy kernels",
    origin="community",
    distributed=False,
    version="1.0",
)

#: A minimal model: only used for upload-time bookkeeping and the
#: (measured-scale) memory sanity bound; timing comes from the clock.
_REFERENCE_MODEL = PerformanceModel(
    base_evps=1.0,            # unused: execute() overrides with wall-clock
    tproc_floor=0.0,
    distributed=False,
    bytes_per_element=200.0,  # numpy CSR + Python overhead, measured scale
    fixed_overhead=0.0,
    load_rate=50e6,
    upload_rate=50e6,
    variability_cv_single=0.0,
    variability_cv_distributed=0.0,
)


class ReferenceDriver(PlatformDriver):
    """Runs the reference kernels for real; Tproc is the measured time.

    With ``partitions`` set, execution routes through the sharded engine
    in :mod:`repro.engines.partitioned` instead of the single-process
    kernels. Outputs are bit-identical either way (the partitioned
    engine's core contract), so the switch changes only *how* the
    measured wall-clock is produced — which is exactly what the scaling
    experiments need.
    """

    def __init__(
        self,
        partitions: Optional[int] = None,
        partition_strategy: str = "hash",
    ):
        super().__init__(REFERENCE_INFO, _REFERENCE_MODEL)
        self.partitions = partitions
        self.partition_strategy = partition_strategy

    def _run_algorithm(self, algorithm: str, graph, params):
        if self.partitions is None:
            return super()._run_algorithm(algorithm, graph, params)
        # Imported lazily: the partitioned coordinator pulls in the
        # runtime pool, whose import chain reaches back to this module.
        from repro.engines.partitioned import run_algorithm as run_partitioned

        # PageRank goes through the GAS model: its sharded sweeps repeat
        # the reference kernel's numpy reductions exactly, so the driver
        # keeps bit-identical outputs (the Pregel formulation rounds
        # differently at the last ulp).
        return run_partitioned(
            graph,
            algorithm,
            dict(params or {}),
            partitions=self.partitions,
            strategy=self.partition_strategy,
            model="gas" if algorithm == "pr" else "auto",
        )

    def execute(
        self,
        handle: UploadHandle,
        algorithm: str,
        params: Optional[Mapping[str, object]] = None,
        resources: Optional[ClusterResources] = None,
        *,
        run_index: int = 0,
        seed: int = 0,
    ) -> JobResult:
        algorithm = algorithm.lower()
        resources = resources or ClusterResources()
        self.validate_resources(resources)
        get_algorithm(algorithm)  # raises for unknown acronyms

        graph = handle.graph
        tracer = current_tracer()
        with tracer.span(
            "execute", platform=self.name, algorithm=algorithm,
            dataset=handle.profile.name,
        ):
            with tracer.span("load") as load_span:
                with tracer.span("out-csr") as out_span:
                    _ = graph.out_indptr[-1]  # ensure CSR is hot
                with tracer.span("in-csr") as in_span:
                    _ = graph.in_indptr[-1]
            with tracer.span("processing", algorithm=algorithm) as proc_span:
                # Through the driver lifecycle hook, like every other
                # driver (lint rule CON002): execution stays swappable.
                with tracer.span("kernel", algorithm=algorithm) as kernel_span:
                    output = self._run_algorithm(algorithm, graph, params)
        load_seconds = load_span.duration
        measured = proc_span.duration

        makespan = load_seconds + measured

        def _child(span, parent_span, offset: float) -> dict:
            """A measured sub-phase record on the job-relative timeline."""
            start = offset + (span.start - parent_span.start)
            end = start + span.duration
            return {
                "phase": span.name,
                "start": start,
                "end": end,
                "source": "measured",
            }
        result = JobResult(
            platform=self.name,
            algorithm=algorithm,
            dataset=handle.profile.name,
            resources=resources,
            status=JobStatus.SUCCEEDED,
            run_index=run_index,
            modeled_upload_time=handle.measured_upload_seconds,
            modeled_processing_time=measured,   # measured IS the number
            modeled_makespan=makespan,
            modeled_memory_demand=None,
            measured_processing_seconds=measured,
            output=output,
        )
        result.events = [
            {"phase": "startup", "start": 0.0, "end": 0.0},
            {"phase": "load", "start": 0.0, "end": load_seconds,
             "elements": handle.graph.num_vertices + handle.graph.num_edges,
             "children": [
                 _child(out_span, load_span, 0.0),
                 _child(in_span, load_span, 0.0),
             ]},
            {"phase": "processing", "start": load_seconds, "end": load_seconds + measured,
             "algorithm": algorithm,
             "children": [_child(kernel_span, proc_span, load_seconds)]},
            {"phase": "cleanup", "start": makespan, "end": makespan},
        ]
        return result
