"""Simulated graph-analysis platforms (paper §3.1, Table 5).

Each driver implements the Graphalytics driver API (upload / execute /
retrieve / delete) against a *real* in-process execution of the reference
algorithms, while full-scale run-times, memory demands, and failures come
from a calibrated per-platform performance model — see DESIGN.md §2 for
the substitution rationale and calibration sources.
"""

from repro.platforms.cluster import MachineSpec, ClusterResources, DAS5_MACHINE
from repro.platforms.base import (
    PlatformDriver,
    PlatformInfo,
    UploadHandle,
    JobResult,
    JobStatus,
)
from repro.platforms.model import PerformanceModel, WorkloadProfile
from repro.platforms.registry import (
    PLATFORMS,
    get_platform,
    platform_names,
    create_driver,
)
from repro.platforms.partitioning import (
    PartitionStats,
    hash_edge_cut,
    greedy_vertex_cut,
    compare_strategies,
)
from repro.platforms.tuning import (
    TuningDecision,
    recommend_resources,
    capacity_frontier,
)

__all__ = [
    "MachineSpec",
    "ClusterResources",
    "DAS5_MACHINE",
    "PlatformDriver",
    "PlatformInfo",
    "UploadHandle",
    "JobResult",
    "JobStatus",
    "PerformanceModel",
    "WorkloadProfile",
    "PLATFORMS",
    "get_platform",
    "platform_names",
    "create_driver",
    "PartitionStats",
    "hash_edge_cut",
    "greedy_vertex_cut",
    "compare_strategies",
    "TuningDecision",
    "recommend_resources",
    "capacity_frontier",
]
