"""Platform registry: the six drivers of paper Table 5."""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.exceptions import ConfigurationError
from repro.platforms.base import PlatformDriver, PlatformInfo
from repro.platforms.giraph import GiraphDriver, GIRAPH_INFO
from repro.platforms.graphx import GraphXDriver, GRAPHX_INFO
from repro.platforms.powergraph import PowerGraphDriver, POWERGRAPH_INFO
from repro.platforms.graphmat import GraphMatDriver, GRAPHMAT_INFO
from repro.platforms.openg import OpenGDriver, OPENG_INFO
from repro.platforms.pgxd import PGXDDriver, PGXD_INFO
from repro.platforms.reference import ReferenceDriver, REFERENCE_INFO

__all__ = [
    "PLATFORMS",
    "EXTRA_PLATFORMS",
    "get_platform",
    "platform_names",
    "create_driver",
]

#: name -> (info, driver factory), in the paper's Table 5 order.
PLATFORMS: Dict[str, Tuple[PlatformInfo, Callable[[], PlatformDriver]]] = {
    "giraph": (GIRAPH_INFO, GiraphDriver),
    "graphx": (GRAPHX_INFO, GraphXDriver),
    "powergraph": (POWERGRAPH_INFO, PowerGraphDriver),
    "graphmat": (GRAPHMAT_INFO, GraphMatDriver),
    "openg": (OPENG_INFO, OpenGDriver),
    "pgxd": (PGXD_INFO, PGXDDriver),
}

#: Platforms beyond the paper's Table 5 roster (requirement R5: easy to
#: add new platforms). Not included in the paper's experiments.
EXTRA_PLATFORMS: Dict[str, Tuple[PlatformInfo, Callable[[], PlatformDriver]]] = {
    "pythonref": (REFERENCE_INFO, ReferenceDriver),
}


def platform_names() -> List[str]:
    """All registered platform keys, Table 5 order."""
    return list(PLATFORMS)


def _lookup(name: str) -> Tuple[PlatformInfo, Callable[[], PlatformDriver]]:
    key = name.lower()
    if key in PLATFORMS:
        return PLATFORMS[key]
    if key in EXTRA_PLATFORMS:
        return EXTRA_PLATFORMS[key]
    known = ", ".join(list(PLATFORMS) + list(EXTRA_PLATFORMS))
    raise ConfigurationError(f"unknown platform {name!r}; known: {known}")


def get_platform(name: str) -> PlatformInfo:
    """Roster metadata for one platform (Table 5 or extras)."""
    return _lookup(name)[0]


def create_driver(name: str, **kwargs) -> PlatformDriver:
    """Instantiate a fresh driver for one platform."""
    _, factory = _lookup(name)
    return factory(**kwargs)
