"""Calibrated per-platform performance models.

Each simulated platform owns one :class:`PerformanceModel`, which turns a
full-scale workload description (:class:`WorkloadProfile`) plus granted
resources into modeled processing time, makespan components, memory
demand, and failure events. The models are *mechanistic*: every paper
finding is produced by a model component, not a lookup table —

* single-node speed: ``base_evps`` (elements/second at a full node),
  calibrated to Table 8;
* per-algorithm cost: global work factors (algorithm registry) times a
  per-platform adjustment, calibrated to Figures 4 and 6;
* vertical scaling: Amdahl's law with per-algorithm parallel fractions
  plus a hyper-threading yield, calibrated to Table 9 / Figure 7;
* horizontal scaling: a distribution shock when leaving single-machine
  mode plus a per-algorithm scaling exponent, calibrated to §4.4/§4.5;
* memory: bytes/element footprints with skew sensitivity, boundary
  (non-partitionable) fractions and replication, which mechanically
  produce the Table 10 stress-test failures and the out-of-memory events
  of §4.4–4.6; near-capacity runs incur a swap penalty (GraphMat's
  single-machine PageRank outlier, §4.4);
* variability: seeded log-normal jitter with per-platform CVs (Table 11).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from repro.algorithms.registry import get_algorithm
from repro.exceptions import ConfigurationError
from repro.platforms.cluster import ClusterResources

__all__ = ["WorkloadProfile", "PerformanceModel"]

#: Reference workload for rate definitions: D300(L), elements = |V| + |E|.
_REFERENCE_ELEMENTS = 308.3e6

#: Fraction of node memory actually usable by a platform's heap.
_USABLE_MEMORY_FRACTION = 0.95


@dataclass(frozen=True)
class WorkloadProfile:
    """Full-scale shape descriptors of one dataset (model inputs)."""

    name: str
    num_vertices: int
    num_edges: int
    directed: bool
    weighted: bool
    #: Mean adjacency degree (2|E|/|V| undirected, |E|/|V| out-degree).
    mean_degree: float
    #: Squared coefficient of variation of the degree distribution;
    #: E[d^2] = mean_degree^2 (1 + degree_cv2). Drives LCC cost.
    degree_cv2: float
    #: Partition-imbalance / hub-replication multiplier (>= 1). Graph500
    #: graphs are far more skewed than Datagen graphs of equal scale —
    #: the §4.6 finding hinges on this.
    memory_skew: float = 1.0
    #: Fraction of the graph reached from the benchmark BFS root.
    bfs_coverage: float = 0.95
    #: Number of weakly connected components (PGX.D's WCC penalty, §4.2).
    component_count: int = 1

    @property
    def elements(self) -> int:
        return self.num_vertices + self.num_edges

    @property
    def scale(self) -> float:
        return round(math.log10(self.elements), 1) if self.elements else 0.0

    @property
    def degree_second_moment_sum(self) -> float:
        """Approximate sum over vertices of degree^2 (LCC work)."""
        return self.num_vertices * self.mean_degree ** 2 * (1.0 + self.degree_cv2)


@dataclass(frozen=True)
class PerformanceModel:
    """All calibrated knobs of one platform (see module docstring)."""

    # -- single-node speed ------------------------------------------------
    base_evps: float                 # elements/s, BFS, one full node
    tproc_floor: float               # fixed seconds inside every Tproc
    algorithm_adjust: Mapping[str, float] = field(default_factory=dict)
    #: Rate degradation on very large inputs (cache locality):
    #: divide the rate by (1 + scale_sensitivity * log10(elements/ref)).
    scale_sensitivity: float = 0.0
    #: Rate degradation on skewed inputs: divide by (1 + x*(skew-1)).
    rate_skew_sensitivity: float = 0.0

    # -- vertical scaling (threads on one machine) ------------------------
    parallel_fraction: Mapping[str, float] = field(default_factory=dict)
    ht_yield: float = 0.0            # capacity of a hyper-thread vs a core

    # -- horizontal scaling (machines) ------------------------------------
    distributed: bool = True
    dist_shock: float = 1.5          # slowdown factor entering 2+ machines
    dist_shock_adjust: Mapping[str, float] = field(default_factory=dict)
    dist_exponent: Mapping[str, float] = field(default_factory=dict)
    dist_floor: float = 0.5          # extra fixed seconds when distributed

    # -- memory model ------------------------------------------------------
    bytes_per_element: float = 50.0
    skew_sensitivity: float = 1.0    # footprint mult: 1 + s*(skew-1)
    boundary_fraction: float = 0.05  # share of footprint on every machine
    replication: float = 0.3         # ghosts: 1 + r*(1 - 1/M)
    memory_alg_mult: Mapping[str, float] = field(default_factory=dict)
    swap_threshold: float = 0.70     # memory fraction where swapping starts
    swap_penalty: float = 4.0        # Tproc multiplier at 100% memory

    # -- makespan / upload --------------------------------------------------
    fixed_overhead: float = 10.0     # deployment/startup seconds
    load_rate: float = 10e6          # elements/s, loading into the platform
    upload_rate: float = 10e6        # elements/s, format conversion

    # -- robustness ----------------------------------------------------------
    variability_cv_single: float = 0.05
    variability_cv_distributed: float = 0.05

    # -- quirks ---------------------------------------------------------------
    queue_based_bfs: bool = False    # OpenG: BFS work ∝ covered elements
    wcc_component_penalty: float = 0.0  # PGX.D: per-decade component cost

    # ---------------------------------------------------------------------
    def _adjust(self, algorithm: str) -> float:
        return float(self.algorithm_adjust.get(algorithm, 1.0))

    def _fraction(self, algorithm: str) -> float:
        table = self.parallel_fraction
        return float(table.get(algorithm, table.get("*", 0.9)))

    def _exponent(self, algorithm: str) -> float:
        table = self.dist_exponent
        return float(table.get(algorithm, table.get("*", 0.8)))

    def work_elements(self, algorithm: str, profile: WorkloadProfile) -> float:
        """Algorithm work, in BFS-edge-visit equivalents."""
        spec = get_algorithm(algorithm)
        if spec.quadratic_in_degree:
            base = profile.degree_second_moment_sum
        else:
            base = float(profile.elements)
            if algorithm == "bfs" and self.queue_based_bfs:
                # Queue-based BFS touches only the reached portion of the
                # graph; iterative platforms sweep everything (the §4.1
                # OpenG-on-R2 finding).
                base *= profile.bfs_coverage
        work = base * spec.work_factor * self._adjust(algorithm)
        if algorithm == "wcc" and self.wcc_component_penalty > 0:
            work *= 1.0 + self.wcc_component_penalty * math.log10(
                max(1, profile.component_count)
            )
        return work

    # -- scaling ---------------------------------------------------------

    def vertical_speedup(self, threads: int, resources: ClusterResources) -> float:
        """Amdahl speedup of `threads` vs 1 thread, with HT yield."""
        machine = resources.machine
        cores = machine.cores
        effective = min(threads, cores) + max(0, threads - cores) * self.ht_yield
        return effective

    def _amdahl(self, algorithm: str, threads: int, resources: ClusterResources) -> float:
        p = self._fraction(algorithm)
        capacity = self.vertical_speedup(threads, resources)
        return 1.0 / ((1.0 - p) + p / capacity)

    def thread_scaling_factor(
        self, algorithm: str, resources: ClusterResources
    ) -> float:
        """Rate multiplier vs a full node (base_evps is full-node speed)."""
        full = self._amdahl(algorithm, resources.machine.threads, resources)
        actual = self._amdahl(algorithm, resources.threads_per_machine, resources)
        return actual / full

    def machine_scaling_factor(self, algorithm: str, machines: int) -> float:
        """Rate multiplier vs a single machine."""
        if machines <= 1:
            return 1.0
        gamma = self._exponent(algorithm)
        shock = self.dist_shock * float(self.dist_shock_adjust.get(algorithm, 1.0))
        return (machines / 2.0) ** gamma / shock

    def _rate_modifier(self, profile: WorkloadProfile) -> float:
        """Dataset sensitivity: large and skewed graphs process slower."""
        modifier = 1.0
        if self.scale_sensitivity > 0 and profile.elements > _REFERENCE_ELEMENTS:
            modifier *= 1.0 + self.scale_sensitivity * math.log10(
                profile.elements / _REFERENCE_ELEMENTS
            )
        if self.rate_skew_sensitivity > 0:
            modifier *= 1.0 + self.rate_skew_sensitivity * (profile.memory_skew - 1.0)
        return modifier

    # -- memory -----------------------------------------------------------

    def memory_footprint_bytes(self, algorithm: str, profile: WorkloadProfile) -> float:
        """Total in-memory bytes needed for the dataset + algorithm state."""
        skew_mult = 1.0 + self.skew_sensitivity * (profile.memory_skew - 1.0)
        alg_mult = float(self.memory_alg_mult.get(algorithm, 1.0))
        return profile.elements * self.bytes_per_element * skew_mult * alg_mult

    def memory_demand_per_machine(
        self, algorithm: str, profile: WorkloadProfile, resources: ClusterResources
    ) -> float:
        """Peak bytes on the most loaded machine."""
        footprint = self.memory_footprint_bytes(algorithm, profile)
        machines = resources.machines
        if machines == 1:
            return footprint
        beta = self.boundary_fraction
        partition = 1.0 / machines + beta * (1.0 - 1.0 / machines)
        ghosts = 1.0 + self.replication * (1.0 - 1.0 / machines)
        return footprint * partition * ghosts

    def memory_capacity_per_machine(self, resources: ClusterResources) -> float:
        return resources.machine.memory_bytes * _USABLE_MEMORY_FRACTION

    def fits_in_memory(
        self, algorithm: str, profile: WorkloadProfile, resources: ClusterResources
    ) -> bool:
        demand = self.memory_demand_per_machine(algorithm, profile, resources)
        return demand <= self.memory_capacity_per_machine(resources)

    def swap_multiplier(
        self, algorithm: str, profile: WorkloadProfile, resources: ClusterResources
    ) -> float:
        """Tproc penalty when the job nearly fills memory (1.0 = none)."""
        demand = self.memory_demand_per_machine(algorithm, profile, resources)
        capacity = self.memory_capacity_per_machine(resources)
        fraction = demand / capacity
        if fraction <= self.swap_threshold:
            return 1.0
        span = 1.0 - self.swap_threshold
        over = min(fraction, 1.0) - self.swap_threshold
        return 1.0 + (self.swap_penalty - 1.0) * (over / span)

    # -- headline outputs ---------------------------------------------------

    def processing_time(
        self,
        algorithm: str,
        profile: WorkloadProfile,
        resources: ClusterResources,
    ) -> float:
        """Modeled Tproc in seconds (no jitter; see apply_variability)."""
        if resources.machines > 1 and not self.distributed:
            raise ConfigurationError("platform is not distributed")
        work = self.work_elements(algorithm, profile)
        rate = self.base_evps
        rate *= self.thread_scaling_factor(algorithm, resources)
        rate *= self.machine_scaling_factor(algorithm, resources.machines)
        rate /= self._rate_modifier(profile)
        seconds = self.tproc_floor + work / rate
        if resources.machines > 1:
            seconds += self.dist_floor
        seconds *= self.swap_multiplier(algorithm, profile, resources)
        return seconds

    def load_time(self, profile: WorkloadProfile) -> float:
        return profile.elements / self.load_rate

    def upload_time(self, profile: WorkloadProfile) -> float:
        return profile.elements / self.upload_rate

    def makespan(
        self,
        algorithm: str,
        profile: WorkloadProfile,
        resources: ClusterResources,
        *,
        processing_time: Optional[float] = None,
    ) -> float:
        """Modeled makespan: startup + loading + processing + teardown."""
        tproc = (
            processing_time
            if processing_time is not None
            else self.processing_time(algorithm, profile, resources)
        )
        teardown = 0.05 * self.fixed_overhead
        return self.fixed_overhead + self.load_time(profile) + tproc + teardown

    def variability_cv(self, resources: ClusterResources) -> float:
        if resources.machines > 1:
            return self.variability_cv_distributed
        return self.variability_cv_single

    def apply_variability(
        self,
        seconds: float,
        resources: ClusterResources,
        *,
        seed_key: tuple,
    ) -> float:
        """Mean-preserving log-normal jitter with the platform's CV."""
        cv = self.variability_cv(resources)
        if cv <= 0:
            return seconds
        sigma = math.sqrt(math.log(1.0 + cv * cv))
        # Python's builtin hash() is salted per process; derive the RNG
        # seed from a stable digest so repeated benchmark runs reproduce.
        digest = hashlib.sha256(repr(seed_key).encode("utf-8")).digest()
        rng = np.random.default_rng(int.from_bytes(digest[:8], "little"))
        multiplier = math.exp(rng.normal(-0.5 * sigma * sigma, sigma))
        return seconds * multiplier
