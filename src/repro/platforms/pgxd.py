"""PGX.D driver (industry/Oracle, distributed push-pull engine).

Calibration anchors (paper):
* Table 8 — BFS on D300(L): Tproc 0.5 s but makespan 268.7 s — the
  largest overhead ratio of all platforms (0.2%): slow deployment and
  graph loading, very fast compute.
* §4.2 — LCC is not implemented ("NA" in Figure 6); WCC degrades on
  graphs with many components (push-pull label exchange), modeled via
  ``wcc_component_penalty``.
* Table 9 — the best vertical scaler: speedups 15.0 (BFS) / 13.9 (PR),
  with visible HT benefit (cooperative context-switching).
* §4.4 — fails both algorithms on a single machine (memory:
  "specifically optimized for machines with large amounts of cores and
  memory"); BFS sub-second from 4 machines then scales poorly; PR
  speedup 3.8 using 8× the baseline.
* §4.5 — fails multiple weak-scaling configurations due to memory
  (its large communication buffers are modeled as a high
  non-partitionable boundary fraction).
* Table 10 — smallest failing dataset G25 (8.7).
* Table 11 — CV 8.2% / 7.1% (small absolute deviations, §4.7).
"""

from __future__ import annotations

from repro.platforms.base import PlatformDriver, PlatformInfo
from repro.platforms.model import PerformanceModel

__all__ = ["PGXDDriver", "PGXD_INFO", "PGXD_MODEL"]

PGXD_INFO = PlatformInfo(
    name="PGX.D",
    vendor="Oracle",
    language="C++",
    programming_model="Push-pull",
    origin="industry",
    distributed=True,
    version="Feb '16",
)

PGXD_MODEL = PerformanceModel(
    base_evps=770.0e6,
    tproc_floor=0.1,
    algorithm_adjust={"pr": 0.9, "wcc": 0.8, "cdlp": 2.2, "sssp": 1.0},
    parallel_fraction={"bfs": 0.989, "pr": 0.981, "*": 0.985},
    ht_yield=0.25,
    dist_shock=1.35,
    dist_exponent={"bfs": 1.3, "pr": 0.3, "*": 1.0},
    dist_floor=0.35,
    bytes_per_element=75.0,
    skew_sensitivity=2.0,
    boundary_fraction=0.35,
    replication=0.25,
    memory_alg_mult={"pr": 1.1},
    swap_threshold=0.85,
    fixed_overhead=11.0,
    load_rate=1.2e6,
    upload_rate=3.0e6,
    variability_cv_single=0.082,
    variability_cv_distributed=0.071,
    wcc_component_penalty=0.35,
)


class PGXDDriver(PlatformDriver):
    """Push-pull distributed engine with cooperative context switching."""

    unsupported_algorithms = frozenset({"lcc"})

    def __init__(self):
        super().__init__(PGXD_INFO, PGXD_MODEL)
