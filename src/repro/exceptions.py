"""Exception hierarchy for the Graphalytics reproduction.

All library errors derive from :class:`GraphalyticsError` so callers can
catch one base class at API boundaries.
"""

from __future__ import annotations


class GraphalyticsError(Exception):
    """Base class for every error raised by this library."""


class GraphFormatError(GraphalyticsError):
    """A graph file or edge list violates the Graphalytics data model."""


class ValidationError(GraphalyticsError):
    """Algorithm output does not match the reference output."""


class UnsupportedAlgorithmError(GraphalyticsError):
    """A platform driver does not implement the requested algorithm."""

    def __init__(self, platform: str, algorithm: str):
        super().__init__(f"platform {platform!r} does not support algorithm {algorithm!r}")
        self.platform = platform
        self.algorithm = algorithm


class SLAViolationError(GraphalyticsError):
    """A benchmark job broke the service-level agreement (timeout/crash)."""


class OutOfMemoryError(GraphalyticsError):
    """The modeled memory demand of a job exceeds cluster capacity."""

    def __init__(self, demand_bytes: int, capacity_bytes: int, detail: str = ""):
        msg = (
            f"modeled memory demand {demand_bytes / 2**30:.1f} GiB exceeds "
            f"capacity {capacity_bytes / 2**30:.1f} GiB"
        )
        if detail:
            msg = f"{msg} ({detail})"
        super().__init__(msg)
        self.demand_bytes = demand_bytes
        self.capacity_bytes = capacity_bytes


class ConfigurationError(GraphalyticsError):
    """A benchmark configuration is inconsistent or incomplete."""


class DatasetError(GraphalyticsError):
    """A dataset is unknown, or its materialization failed."""


class GenerationError(GraphalyticsError):
    """A synthetic graph generator received invalid parameters."""
