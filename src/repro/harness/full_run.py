"""Full benchmark orchestration: all eight experiments in one run.

"Graphalytics conducts automatically the complex set of experiments
summarized in Table 6" (paper §4). This module runs the entire suite,
collects every job in one results database, renders the composite
report, and (optionally) submits the validated run to a results
repository — the complete Figure 1 pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.harness.config import BenchmarkConfig
from repro.harness.experiments import EXPERIMENTS, ExperimentReport
from repro.harness.report import render_report, save_report
from repro.harness.repository import ResultsRepository, RunMetadata
from repro.harness.results import ResultsDatabase
from repro.harness.runner import BenchmarkRunner
from repro.trace import current_tracer, write_trace

__all__ = ["FullRunResult", "run_full_benchmark"]


@dataclass
class FullRunResult:
    """Everything one full benchmark run produced."""

    database: ResultsDatabase
    reports: Dict[str, ExperimentReport] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    @property
    def job_count(self) -> int:
        return len(self.database)

    def render(self) -> str:
        return render_report(
            self.database, title="Graphalytics full benchmark run"
        )


def run_full_benchmark(
    *,
    seed: int = 0,
    experiment_ids: Optional[List[str]] = None,
    report_path: Optional[Union[str, Path]] = None,
    repository: Optional[ResultsRepository] = None,
    run_metadata: Optional[RunMetadata] = None,
    workers: int = 1,
    run_dir: Optional[Union[str, Path]] = None,
    partitions: Optional[int] = None,
    partition_strategy: str = "hash",
) -> FullRunResult:
    """Run the (selected) experiment suite end to end.

    One shared runner keeps dataset materializations and uploads cached
    across experiments, exactly like the real harness's single session.

    Experiment bodies are sequential by design (baselines feed later
    jobs), so ``workers > 1`` parallelizes their *inputs* instead: the
    runtime materializes every dataset and validation reference the
    selected experiments need on a worker pool, then primes the shared
    runner so the serial suite runs entirely on warm data.

    With ``run_dir`` the suite is journaled: every completed job is
    recorded durably before the next starts, and re-invoking with the
    same directory (or ``graphalytics resume <run_dir>``) replays the
    recorded jobs and executes only the remainder (docs/robustness.md).
    """
    runner = BenchmarkRunner(BenchmarkConfig(
        seed=seed,
        partitions=partitions,
        partition_strategy=partition_strategy,
    ))
    result = FullRunResult(database=runner.database)
    selected = [EXPERIMENTS[eid] for eid in experiment_ids or list(EXPERIMENTS)]
    tracer = current_tracer()
    trace_mark = tracer.mark()
    counters_before = tracer.counters
    journal = None
    if run_dir is not None:
        from repro.runtime.journal import JournalError, RunJournal

        if RunJournal.journal_path(run_dir).exists():
            replay = RunJournal.load(run_dir)
            header = replay.header
            if header.get("kind") != "full-run":
                raise JournalError(
                    f"{RunJournal.journal_path(run_dir)} records a "
                    f"{header.get('kind')!r} run, not a full benchmark run"
                )
            if int(header.get("seed", -1)) != seed:
                raise JournalError(
                    f"journal was written with seed {header.get('seed')}, "
                    f"cannot resume with seed {seed}"
                )
            journal = RunJournal.open(run_dir)
            runner.attach_journal(journal, replay)
            result.notes.append(
                f"[journal] resumed from {run_dir}: "
                f"{sum(len(q) for q in replay.serial_results.values())} "
                f"recorded job(s) will replay instead of re-executing"
            )
        else:
            journal = RunJournal.create(
                run_dir,
                {
                    "kind": "full-run",
                    "seed": seed,
                    "experiments": [e.experiment_id for e in selected],
                    "report": str(report_path) if report_path else None,
                    "partitions": runner.config.partitions,
                    "partition_strategy": runner.config.partition_strategy,
                },
            )
            runner.attach_journal(journal)
    if workers > 1:
        from repro.runtime.executor import RuntimeConfig, prefetch_into_runner

        datasets: List[str] = []
        algorithms: List[str] = []
        for experiment in selected:
            datasets.extend(d for d in experiment.datasets if d not in datasets)
            algorithms.extend(
                a for a in experiment.algorithms if a not in algorithms
            )
        prefetch = prefetch_into_runner(
            runner,
            datasets=datasets,
            algorithms=algorithms,
            runtime=RuntimeConfig(workers=workers),
        )
        if prefetch is not None:
            result.notes.append(
                f"[runtime] prefetched {prefetch.dag_size} artifacts on "
                f"{workers} workers in {prefetch.elapsed_seconds:.2f} s "
                f"({prefetch.cache_stats.describe()})"
            )
    with tracer.span("full-run", seed=seed):
        # Experiment.run opens one "experiment" span per suite entry, so
        # the exported tree reads full-run > experiment > job > ...
        for experiment in selected:
            experiment_id = experiment.experiment_id
            report = experiment.run(runner)
            result.reports[experiment_id] = report
            result.notes.extend(
                f"[{experiment_id}] {note}" for note in report.notes
            )
    if journal is not None:
        journal.append({"type": "run-complete"})
        journal.close()
        runner.detach_journal()
        runner.database.save(Path(run_dir) / "results.json")
    if run_dir is not None and tracer.enabled:
        delta = {
            name: value - counters_before.get(name, 0.0)
            for name, value in tracer.counters.items()
            if value != counters_before.get(name, 0.0)
        }
        write_trace(
            Path(run_dir) / "trace.jsonl",
            tracer.spans_since(trace_mark),
            counters=delta,
        )
    if report_path is not None:
        save_report(
            runner.database,
            report_path,
            title="Graphalytics full benchmark run",
        )
    if repository is not None:
        metadata = run_metadata or RunMetadata(
            run_id=f"full-run-seed{seed}",
            system_under_test="simulated Table 5 platforms on DAS-5 model",
        )
        repository.submit(metadata, runner.database)
    return result
