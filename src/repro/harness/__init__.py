"""The Graphalytics test harness (paper §2.3–§2.5, Figure 1).

Processes the benchmark description and configuration, orchestrates
drivers, validates outputs against the reference implementations,
computes the benchmark metrics, and stores results.
"""

from repro.harness.scale import graph_scale, scale_class, SCALE_CLASSES, class_order
from repro.harness.datasets import (
    Dataset,
    DATASETS,
    get_dataset,
    dataset_ids,
    datasets_up_to_class,
)
from repro.harness.metrics import (
    edges_per_second,
    edges_and_vertices_per_second,
    speedup,
    coefficient_of_variation,
)
from repro.harness.sla import SLA_MAKESPAN_SECONDS, sla_compliant
from repro.harness.config import BenchmarkConfig
from repro.harness.results import ResultsDatabase, BenchmarkResult
from repro.harness.runner import BenchmarkRunner
from repro.harness.survey import (
    SURVEY_UNWEIGHTED,
    SURVEY_WEIGHTED,
    survey_table,
    two_stage_selection,
)
from repro.harness.experiments import EXPERIMENTS, Experiment, get_experiment
from repro.harness.renewal import RenewalProcess
from repro.harness.report import render_report, save_report, summarize
from repro.harness.repository import ResultsRepository, RunMetadata
from repro.harness.archive import materialize_archive, archive_manifest
from repro.harness.full_run import FullRunResult, run_full_benchmark
from repro.harness.figures import render_dataset_variety, render_scaling
from repro.harness.analysis import (
    summarize_measurements,
    speedup_matrix,
    compare_platforms,
)

__all__ = [
    "graph_scale",
    "scale_class",
    "SCALE_CLASSES",
    "class_order",
    "Dataset",
    "DATASETS",
    "get_dataset",
    "dataset_ids",
    "datasets_up_to_class",
    "edges_per_second",
    "edges_and_vertices_per_second",
    "speedup",
    "coefficient_of_variation",
    "SLA_MAKESPAN_SECONDS",
    "sla_compliant",
    "BenchmarkConfig",
    "ResultsDatabase",
    "BenchmarkResult",
    "BenchmarkRunner",
    "SURVEY_UNWEIGHTED",
    "SURVEY_WEIGHTED",
    "survey_table",
    "two_stage_selection",
    "EXPERIMENTS",
    "Experiment",
    "get_experiment",
    "RenewalProcess",
    "render_report",
    "save_report",
    "summarize",
    "ResultsRepository",
    "RunMetadata",
    "materialize_archive",
    "archive_manifest",
    "FullRunResult",
    "run_full_benchmark",
    "render_dataset_variety",
    "render_scaling",
    "summarize_measurements",
    "speedup_matrix",
    "compare_platforms",
]
