"""Related-work comparison matrix (paper §5, Table 12).

Encodes the paper's requirement coverage (R1–R5) of prior studies and
benchmarks, so the Table 12 reproduction is data, not prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["RelatedWork", "RELATED_WORK", "related_work_table"]


@dataclass(frozen=True)
class RelatedWork:
    """One Table 12 row."""

    name: str
    kind: str                 # "B" benchmark | "S" study
    target_structure: str     # R1: D/P/MC/GPU combination
    programming: str          # R1: supported programming models
    input_params: str         # R2: 0 / S / E / +
    datasets: str             # R2: Rnd / Exp / 1-stage / 2-stage
    algorithms: str           # R2: Rnd / Exp / 1-stage / 2-stage
    scalable: str             # R2: scalable workload?
    scalability_tests: str    # R3: W/S/V/H
    robustness: bool          # R3
    renewal: bool             # R4


RELATED_WORK: Tuple[RelatedWork, ...] = (
    RelatedWork("CloudSuite (graph elements)", "B", "D/MC", "PowerGraph",
                "S", "Rnd", "Exp", "—", "No", False, False),
    RelatedWork("Montresor et al.", "S", "D/MC", "3 classes",
                "0", "Rnd", "Exp", "—", "No", False, False),
    RelatedWork("HPC-SGAB", "B", "P", "—", "S", "Exp", "Exp", "—",
                "No", False, False),
    RelatedWork("Graph500", "B", "P/MC/GPU", "—", "S", "Exp", "Exp", "—",
                "No", False, False),
    RelatedWork("GreenGraph500", "B", "P/MC/GPU", "—", "S", "Exp", "Exp",
                "—", "No", False, False),
    RelatedWork("WGB", "B", "D", "—", "SE+", "Exp", "Exp", "1B Edges",
                "No", False, False),
    RelatedWork("Own prior work (Guo et al., Capota et al.)", "S",
                "D/MC/GPU", "10 classes", "S", "Exp", "1-stage",
                "1B Edges", "W/S/V/H", False, False),
    RelatedWork("Ozsu et al.", "S", "D", "Pregel", "0", "Exp,Rnd", "Exp",
                "—", "W/S/V/H", False, False),
    RelatedWork("BigDataBench (graph elements)", "B", "D/MC", "Hadoop",
                "S", "Rnd", "Rnd", "—", "S", False, False),
    RelatedWork("Satish et al.", "S", "D/MC", "6 classes", "S", "Exp,Rnd",
                "Exp", "—", "W", False, False),
    RelatedWork("Yi et al. (Lu et al.)", "S", "D", "4 classes", "S",
                "Exp,Rnd", "Exp", "—", "S", False, False),
    RelatedWork("GraphBIG", "B", "P/MC/GPU", "System G", "S", "Exp", "Exp",
                "—", "No", False, False),
    RelatedWork("Cherkasova et al. (Eisenman et al.)", "S", "MC", "Galois",
                "0", "Rnd", "Exp", "—", "No", False, False),
    RelatedWork("LDBC Graphalytics (this work)", "B", "D/MC/GPU",
                "10+ classes", "SE+", "2-stage", "2-stage", "Process",
                "W/S/V/H", True, True),
)


def related_work_table() -> List[dict]:
    """Table 12 as dict rows."""
    return [
        {
            "name": w.name,
            "type": w.kind,
            "target_structure": w.target_structure,
            "programming": w.programming,
            "input": w.input_params,
            "datasets": w.datasets,
            "algorithms": w.algorithms,
            "scalable": w.scalable,
            "scalability_tests": w.scalability_tests,
            "robustness": "Yes" if w.robustness else "No",
            "renewal": "Yes" if w.renewal else "No",
        }
        for w in RELATED_WORK
    ]
