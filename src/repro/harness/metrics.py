"""Benchmark metrics (paper §2.3).

* **Tproc** — processing time, reported by the drivers (via Granula).
* **EPS** — edges per second: |E| / Tproc (as in Graph500).
* **EVPS** — edges and vertices per second: (|E| + |V|) / Tproc, i.e.
  10^scale / Tproc — closely related to the Graphalytics scale.
* **Speedup** — Tproc(baseline resources) / Tproc(scaled resources),
  where the baseline is the minimum amount of resources with which the
  platform completes the workload.
* **CV** — coefficient of variation of repeated Tproc measurements:
  std / mean, scale-independent.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "edges_per_second",
    "edges_and_vertices_per_second",
    "speedup",
    "slowdown",
    "coefficient_of_variation",
]


def _check_positive_time(seconds: float) -> float:
    seconds = float(seconds)
    if seconds <= 0:
        raise ConfigurationError(f"processing time must be positive, got {seconds}")
    return seconds


def edges_per_second(num_edges: int, processing_seconds: float) -> float:
    """EPS: |E| / Tproc."""
    return int(num_edges) / _check_positive_time(processing_seconds)


def edges_and_vertices_per_second(
    num_vertices: int, num_edges: int, processing_seconds: float
) -> float:
    """EVPS: (|V| + |E|) / Tproc."""
    return (int(num_vertices) + int(num_edges)) / _check_positive_time(
        processing_seconds
    )


def speedup(baseline_seconds: float, scaled_seconds: float) -> float:
    """Ratio of baseline over scaled Tproc (>1 means scaling helped)."""
    return _check_positive_time(baseline_seconds) / _check_positive_time(
        scaled_seconds
    )


def slowdown(baseline_seconds: float, scaled_seconds: float) -> float:
    """Inverse of :func:`speedup` (used in the weak-scaling analysis)."""
    return 1.0 / speedup(baseline_seconds, scaled_seconds)


def coefficient_of_variation(samples: Sequence[float]) -> float:
    """std/mean of repeated measurements (population std, as in the paper)."""
    values = np.asarray(list(samples), dtype=np.float64)
    if len(values) < 2:
        raise ConfigurationError("CV needs at least two samples")
    mean = values.mean()
    if mean <= 0:
        raise ConfigurationError("CV needs a positive mean")
    return float(values.std() / mean)
