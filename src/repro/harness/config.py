"""Benchmark configuration (paper Figure 1, boxes 1–2).

The Graphalytics team provides the benchmark description (algorithms,
datasets, per-dataset parameters); the benchmark user may select a
subset of the workload and pick the resources of the system under test.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.algorithms.registry import ALGORITHMS
from repro.harness.datasets import DATASETS
from repro.harness.sla import SLA_MAKESPAN_SECONDS
from repro.platforms.cluster import ClusterResources
from repro.platforms.registry import EXTRA_PLATFORMS, PLATFORMS

__all__ = ["BenchmarkConfig"]


@dataclass
class BenchmarkConfig:
    """One benchmark selection: platforms × datasets × algorithms."""

    platforms: List[str] = field(default_factory=lambda: list(PLATFORMS))
    datasets: List[str] = field(default_factory=lambda: list(DATASETS))
    algorithms: List[str] = field(default_factory=lambda: list(ALGORITHMS))
    resources: ClusterResources = field(default_factory=ClusterResources)
    repetitions: int = 1
    seed: int = 0
    validate_outputs: bool = True
    sla_seconds: float = SLA_MAKESPAN_SECONDS
    #: Skip (platform, dataset, algorithm) combos the platform cannot run
    #: (e.g. SSSP on unweighted datasets) instead of erroring.
    skip_impossible: bool = True
    #: Shard count for the partitioned engine (pythonref only). ``None``
    #: keeps the single-process engines; ``"auto"`` sizes to the host
    #: CPUs; >= 1 routes execution through
    #: :mod:`repro.engines.partitioned` with that many shard workers.
    partitions: Optional[int] = None
    #: Edge-cut strategy for the partitioned engine ("hash" or "range").
    partition_strategy: str = "hash"

    def __post_init__(self):
        self.platforms = [p.lower() for p in self.platforms]
        self.algorithms = [a.lower() for a in self.algorithms]
        known_platforms = set(PLATFORMS) | set(EXTRA_PLATFORMS)
        unknown = [p for p in self.platforms if p not in known_platforms]
        if unknown:
            raise ConfigurationError(f"unknown platforms: {unknown}")
        unknown = [d for d in self.datasets if d not in DATASETS]
        if unknown:
            raise ConfigurationError(f"unknown datasets: {unknown}")
        unknown = [a for a in self.algorithms if a not in ALGORITHMS]
        if unknown:
            raise ConfigurationError(f"unknown algorithms: {unknown}")
        if self.repetitions < 1:
            raise ConfigurationError("repetitions must be >= 1")
        if self.sla_seconds <= 0:
            raise ConfigurationError("sla_seconds must be positive")
        if self.partitions is not None:
            if self.partitions == "auto":
                self.partitions = os.cpu_count() or 1
            try:
                self.partitions = int(self.partitions)
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"partitions must be a positive integer or 'auto', "
                    f"got {self.partitions!r}"
                )
            if self.partitions < 1:
                raise ConfigurationError("partitions must be >= 1")
        from repro.engines.partitioned.partition import PARTITION_STRATEGIES

        if self.partition_strategy not in PARTITION_STRATEGIES:
            raise ConfigurationError(
                f"unknown partition strategy: {self.partition_strategy!r} "
                f"(expected one of {PARTITION_STRATEGIES})"
            )

    def subset(self, **overrides) -> "BenchmarkConfig":
        """A copy with the given fields replaced."""
        data = {
            "platforms": list(self.platforms),
            "datasets": list(self.datasets),
            "algorithms": list(self.algorithms),
            "resources": self.resources,
            "repetitions": self.repetitions,
            "seed": self.seed,
            "validate_outputs": self.validate_outputs,
            "sla_seconds": self.sla_seconds,
            "skip_impossible": self.skip_impossible,
            "partitions": self.partitions,
            "partition_strategy": self.partition_strategy,
        }
        data.update(overrides)
        return BenchmarkConfig(**data)
