"""Service-level agreement (paper §2.3).

"For all experiments, Graphalytics defines a service-level agreement:
generate the output for a given algorithm and dataset with a makespan of
up to 1 hour. A job breaks this SLA, and thus does not complete
successfully, if its makespan exceeds 1 hour or if it crashes."
"""

from __future__ import annotations

from repro.platforms.base import JobResult, JobStatus

__all__ = ["SLA_MAKESPAN_SECONDS", "sla_compliant", "job_successful"]

#: The makespan budget: one hour.
SLA_MAKESPAN_SECONDS: float = 3600.0


def sla_compliant(result: JobResult, *, budget: float = SLA_MAKESPAN_SECONDS) -> bool:
    """Whether one job met the SLA (completed, within the makespan budget)."""
    if result.status is not JobStatus.SUCCEEDED:
        return False
    if result.modeled_makespan is None:
        return True
    return result.modeled_makespan <= budget


def job_successful(result: JobResult, *, budget: float = SLA_MAKESPAN_SECONDS) -> bool:
    """Alias with the paper's phrasing: a job 'completes successfully'
    only if it does not break the SLA."""
    return sla_compliant(result, budget=budget)
