"""ASCII figure rendering for experiment reports.

The paper presents the baseline/scalability results as log-scale scatter
plots (Figures 4–9). This dependency-free renderer draws the same shape
in a terminal: one row per series item, platforms as letter markers on a
log-scale time axis — so ``graphalytics run dataset-variety --figure``
output is readable without matplotlib.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

__all__ = ["LogScatter", "render_dataset_variety", "render_scaling"]

#: Marker letters per platform, mirroring the paper's legend order.
_MARKERS = {
    "Giraph": "G",
    "GraphX": "X",
    "PowerGraph": "P",
    "GraphMat": "M",
    "OpenG": "O",
    "PGX.D": "D",
}


class LogScatter:
    """Rows of labeled values plotted on one shared log10 axis."""

    def __init__(self, *, width: int = 60, unit: str = "s"):
        if width < 20:
            raise ValueError("width must be at least 20 columns")
        self.width = width
        self.unit = unit
        self._rows: List[tuple] = []  # (label, {marker: value})

    def add_row(self, label: str, points: Dict[str, Optional[float]]) -> None:
        self._rows.append((label, dict(points)))

    def _bounds(self) -> Optional[tuple]:
        values = [
            v
            for _, points in self._rows
            for v in points.values()
            if v is not None and v > 0
        ]
        if not values:
            return None
        low = math.floor(math.log10(min(values)))
        high = math.ceil(math.log10(max(values)))
        if high == low:
            high += 1
        return low, high

    def render(self) -> str:
        bounds = self._bounds()
        if bounds is None:
            return "(no data)"
        low, high = bounds
        span = high - low
        label_width = max((len(label) for label, _ in self._rows), default=5)
        lines = []
        for label, points in self._rows:
            canvas = [" "] * (self.width + 1)
            for marker, value in sorted(points.items()):
                cell = "F" if value is None else None
                if value is not None and value > 0:
                    position = (math.log10(value) - low) / span
                    col = int(round(position * self.width))
                    col = min(max(col, 0), self.width)
                    existing = canvas[col]
                    canvas[col] = "*" if existing != " " else marker[0]
                elif cell:
                    canvas[self.width] = "F"
            lines.append(f"{label:>{label_width}s} |{''.join(canvas)}|")
        # Axis with decade ticks.
        axis = [" "] * (self.width + 1)
        ticks = []
        for decade in range(low, high + 1):
            position = (decade - low) / span
            col = int(round(position * self.width))
            axis[min(col, self.width)] = "+"
            ticks.append((col, f"1e{decade}"))
        lines.append(f"{'':>{label_width}s} +{''.join(axis)}+")
        tick_line = [" "] * (self.width + 8)
        for col, text in ticks:
            for i, ch in enumerate(text):
                pos = col + i
                if pos < len(tick_line):
                    tick_line[pos] = ch
        lines.append(f"{'':>{label_width}s}  {''.join(tick_line).rstrip()} {self.unit}")
        return "\n".join(lines)


def _legend() -> str:
    return "legend: " + "  ".join(
        f"{marker}={name}" for name, marker in _MARKERS.items()
    ) + "  *=overlap  F=failed"


def render_dataset_variety(report, algorithm: str = "bfs") -> str:
    """Figure 4-style plot from a dataset-variety experiment report."""
    scatter = LogScatter()
    seen: List[str] = []
    for row in report.rows:
        if row.get("algorithm") != algorithm:
            continue
        if row["dataset"] not in seen:
            seen.append(row["dataset"])
    for dataset in seen:
        points: Dict[str, Optional[float]] = {}
        for row in report.rows:
            if row.get("algorithm") == algorithm and row["dataset"] == dataset:
                marker = _MARKERS.get(str(row["platform"]), "?")
                points[marker] = row.get("tproc")
        scatter.add_row(dataset, points)
    title = f"Tproc for {algorithm.upper()} (log scale)"
    return f"{title}\n{scatter.render()}\n{_legend()}"


def render_scaling(
    report,
    algorithm: str,
    *,
    x_field: str = "machines",
    x_values: Sequence[int] = (1, 2, 4, 8, 16),
) -> str:
    """Figure 7/8-style plot: one row per resource step."""
    scatter = LogScatter()
    for x in x_values:
        points: Dict[str, Optional[float]] = {}
        for row in report.rows:
            if row.get("algorithm") != algorithm or row.get(x_field) != x:
                continue
            marker = _MARKERS.get(str(row["platform"]), "?")
            points[marker] = row.get("tproc")
        scatter.add_row(f"{x_field}={x}", points)
    title = f"Tproc for {algorithm.upper()} vs {x_field} (log scale)"
    return f"{title}\n{scatter.render()}\n{_legend()}"
