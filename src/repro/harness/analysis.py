"""Statistical analysis of benchmark results (Figure 1: "Results
Analysis & Modeling").

Raw job records become defensible comparisons here: summary statistics
with confidence intervals for repeated measurements, pairwise speedup
matrices between platforms, and significance tests on whether one
platform is really faster than another given run-to-run variability
(§4.7 measures that variability; this module consumes it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.harness.results import ResultsDatabase

__all__ = [
    "MeasurementSummary",
    "summarize_measurements",
    "speedup_matrix",
    "compare_platforms",
]


@dataclass(frozen=True)
class MeasurementSummary:
    """Statistics of repeated Tproc measurements for one workload."""

    count: int
    mean: float
    std: float
    cv: float
    ci_low: float
    ci_high: float

    @property
    def ci_halfwidth(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0


def _t_critical(df: int, confidence: float) -> float:
    """Two-sided t critical value (scipy when present, normal fallback)."""
    try:
        from scipy import stats

        return float(stats.t.ppf(0.5 + confidence / 2.0, df))
    except ImportError:  # pragma: no cover - scipy is installed here
        return 1.96


def summarize_measurements(
    samples: Sequence[float], *, confidence: float = 0.95
) -> MeasurementSummary:
    """Mean, sample std, CV, and a t-based confidence interval."""
    values = np.asarray(list(samples), dtype=np.float64)
    if len(values) < 2:
        raise ConfigurationError("need at least two measurements")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0,1), got {confidence}")
    mean = float(values.mean())
    std = float(values.std(ddof=1))
    half = _t_critical(len(values) - 1, confidence) * std / math.sqrt(len(values))
    return MeasurementSummary(
        count=len(values),
        mean=mean,
        std=std,
        cv=std / mean if mean > 0 else 0.0,
        ci_low=mean - half,
        ci_high=mean + half,
    )


def speedup_matrix(
    database: ResultsDatabase,
    *,
    algorithm: str,
    dataset: str,
    machines: Optional[int] = None,
) -> Dict[Tuple[str, str], float]:
    """{(row platform, column platform): Tproc_row / Tproc_col}.

    Values above 1 mean the *column* platform is faster. Platforms
    without a successful measurement are omitted.
    """
    means: Dict[str, float] = {}
    platforms = sorted({r.platform for r in database})
    for platform in platforms:
        times = database.processing_times(
            platform=platform, algorithm=algorithm, dataset=dataset,
            machines=machines,
        )
        if times:
            means[platform] = float(np.mean(times))
    matrix: Dict[Tuple[str, str], float] = {}
    for row, row_mean in means.items():
        for col, col_mean in means.items():
            matrix[(row, col)] = row_mean / col_mean
    return matrix


@dataclass(frozen=True)
class PlatformComparison:
    """Outcome of a two-platform significance test on one workload."""

    faster: str
    slower: str
    speedup: float
    significant: bool
    p_value: Optional[float]


def compare_platforms(
    database: ResultsDatabase,
    platform_a: str,
    platform_b: str,
    *,
    algorithm: str,
    dataset: str,
    alpha: float = 0.05,
) -> PlatformComparison:
    """Welch's t-test over repeated measurements of two platforms.

    With fewer than two repetitions per side the comparison falls back
    to the point estimate and is reported as not significant.
    """
    times_a = database.processing_times(
        platform=platform_a, algorithm=algorithm, dataset=dataset
    )
    times_b = database.processing_times(
        platform=platform_b, algorithm=algorithm, dataset=dataset
    )
    if not times_a or not times_b:
        raise ConfigurationError(
            f"no successful measurements for {platform_a!r} and/or "
            f"{platform_b!r} on ({algorithm}, {dataset})"
        )
    mean_a, mean_b = float(np.mean(times_a)), float(np.mean(times_b))
    if mean_a <= mean_b:
        faster, slower, speedup = platform_a, platform_b, mean_b / mean_a
    else:
        faster, slower, speedup = platform_b, platform_a, mean_a / mean_b
    if len(times_a) < 2 or len(times_b) < 2:
        return PlatformComparison(faster, slower, speedup, False, None)
    try:
        from scipy import stats

        _, p_value = stats.ttest_ind(times_a, times_b, equal_var=False)
        p_value = float(p_value)
    except ImportError:  # pragma: no cover
        p_value = None
    significant = p_value is not None and p_value < alpha
    return PlatformComparison(faster, slower, speedup, significant, p_value)
