"""Graph scales and "T-shirt size" classes (paper §2.2.4, Table 2).

The scale of a graph is ``log10(|V| + |E|)`` rounded to one decimal.
Scales are grouped into classes spanning 0.5 scale units, labelled with
T-shirt sizes; the reference point is class L, intuitively the largest
class whose graphs complete BFS within an hour on one commodity machine.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.exceptions import ConfigurationError

__all__ = ["graph_scale", "scale_class", "SCALE_CLASSES", "class_order"]

#: Table 2: half-open scale ranges and their labels.
SCALE_CLASSES: Tuple[Tuple[float, float, str], ...] = (
    (float("-inf"), 7.0, "2XS"),
    (7.0, 7.5, "XS"),
    (7.5, 8.0, "S"),
    (8.0, 8.5, "M"),
    (8.5, 9.0, "L"),
    (9.0, 9.5, "XL"),
    (9.5, float("inf"), "2XL"),
)

#: Labels from smallest to largest (for comparisons such as "up to L").
_ORDER: Tuple[str, ...] = tuple(label for _, _, label in SCALE_CLASSES)


def graph_scale(num_vertices: int, num_edges: int) -> float:
    """``log10(|V| + |E|)``, rounded to one decimal place."""
    total = int(num_vertices) + int(num_edges)
    if total <= 0:
        return 0.0
    return round(math.log10(total), 1)


def scale_class(scale: float) -> str:
    """Table 2 label for a scale value."""
    for low, high, label in SCALE_CLASSES:
        if low <= scale < high:
            return label
    raise ConfigurationError(f"no class for scale {scale}")  # pragma: no cover


def class_order(label: str) -> int:
    """Rank of a class label (2XS = 0); raises for unknown labels."""
    try:
        return _ORDER.index(label)
    except ValueError:
        raise ConfigurationError(
            f"unknown scale class {label!r}; known: {', '.join(_ORDER)}"
        ) from None


def classes_up_to(label: str) -> List[str]:
    """All labels from 2XS up to and including ``label``."""
    return list(_ORDER[: class_order(label) + 1])
