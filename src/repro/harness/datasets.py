"""The Graphalytics dataset catalog (paper Tables 3 and 4).

Every entry carries two things:

* the **full-scale workload profile** — the published |V|, |E|, scale,
  directedness, plus shape descriptors (degree moments, skew, BFS
  coverage) that the platform performance models consume; these are the
  numbers the paper's experiments are driven by;
* a **miniature materialization recipe** — a deterministic generator
  producing a structurally similar small graph on which the reference
  algorithms *really* run (execution, output validation, measured
  wall-clock). See DESIGN.md §2 for the substitution policy.

Shape descriptors not printed in the paper (degree CV², memory skew,
BFS coverage, component counts) are set from the known character of each
graph; ``bfs_coverage`` of R2 reflects §4.1 ("The BFS on this graph
covers approximately 10% of the vertices").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.exceptions import DatasetError
from repro.graph.graph import Graph
from repro.harness.scale import scale_class, class_order
from repro.platforms.model import WorkloadProfile

__all__ = [
    "Dataset",
    "DATASETS",
    "get_dataset",
    "dataset_ids",
    "datasets_up_to_class",
    "REAL_DATASETS",
    "SYNTHETIC_DATASETS",
]


def _resolve_source(graph: Graph) -> int:
    """Benchmark BFS/SSSP root on the miniature: the max-degree vertex.

    The official benchmark description pins one root per dataset; picking
    the hub makes miniature traversals cover a meaningful portion of the
    graph while staying deterministic.
    """
    degrees = graph.degrees()
    return int(graph.vertex_ids[int(np.argmax(degrees))])


@dataclass
class Dataset:
    """One catalog entry: full-scale profile + miniature recipe."""

    dataset_id: str                 # e.g. "R4", "D300", "G22"
    profile: WorkloadProfile
    domain: str                     # Knowledge / Gaming / Social / Synthetic
    source: str                     # "real" | "datagen" | "graph500"
    materializer: Callable[[int], Graph] = field(repr=False)
    #: Fixed algorithm parameters (benchmark description, Figure 1 box 1).
    pr_iterations: int = 30
    cdlp_iterations: int = 10
    _cache: Dict[int, Graph] = field(default_factory=dict, repr=False)

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def scale(self) -> float:
        return self.profile.scale

    @property
    def tshirt(self) -> str:
        return scale_class(self.profile.scale)

    @property
    def label(self) -> str:
        """Catalog label as printed in the paper, e.g. ``R4(S)``."""
        return f"{self.dataset_id}({self.tshirt})"

    @property
    def weighted(self) -> bool:
        return self.profile.weighted

    def materialize(self, seed: int = 0) -> Graph:
        """Deterministically build (and cache) the miniature graph."""
        if seed not in self._cache:
            graph = self.materializer(seed)
            if graph.directed != self.profile.directed:
                raise DatasetError(
                    f"{self.dataset_id}: recipe directedness mismatch"
                )
            if graph.is_weighted != self.profile.weighted:
                raise DatasetError(f"{self.dataset_id}: recipe weight mismatch")
            self._cache[seed] = graph
        return self._cache[seed]

    def prime(self, seed: int, graph: Graph) -> None:
        """Install an externally materialized graph into the per-process memo.

        Used by the runtime's content-addressed cache: a graph loaded
        from the shared spill directory is byte-identical to one the
        recipe would build, so it can stand in for a fresh
        materialization. The same directedness/weight validation as
        :meth:`materialize` applies.
        """
        if graph.directed != self.profile.directed:
            raise DatasetError(f"{self.dataset_id}: primed graph directedness mismatch")
        if graph.is_weighted != self.profile.weighted:
            raise DatasetError(f"{self.dataset_id}: primed graph weight mismatch")
        self._cache.setdefault(seed, graph)

    def algorithm_parameters(self, algorithm: str, seed: int = 0) -> Mapping[str, object]:
        """Benchmark-description parameters for one algorithm."""
        algorithm = algorithm.lower()
        if algorithm in ("bfs", "sssp"):
            return {"source_vertex": _resolve_source(self.materialize(seed))}
        if algorithm == "pr":
            return {"iterations": self.pr_iterations}
        if algorithm == "cdlp":
            return {"iterations": self.cdlp_iterations}
        return {}


def _profile(
    name: str,
    v: float,
    e: float,
    *,
    directed: bool,
    weighted: bool,
    cv2: float,
    skew: float,
    coverage: float = 0.95,
    components: int = 1,
) -> WorkloadProfile:
    v = int(round(v))
    e = int(round(e))
    return WorkloadProfile(
        name=name,
        num_vertices=v,
        num_edges=e,
        directed=directed,
        weighted=weighted,
        mean_degree=2.0 * e / v,
        degree_cv2=cv2,
        memory_skew=skew,
        bfs_coverage=coverage,
        component_count=components,
    )


def _replica(profile_kind: str, v: int, e: int, **kwargs):
    def build(seed: int) -> Graph:
        from repro.datagen.realworld import synthetic_replica

        return synthetic_replica(profile_kind, v, e, seed=seed, **kwargs)

    return build


def _datagen(persons: int, mean_degree: float, target_cc: Optional[float] = None):
    def build(seed: int) -> Graph:
        from repro.datagen.generator import generate

        return generate(
            persons,
            mean_degree=mean_degree,
            target_clustering_coefficient=target_cc,
            weighted=True,
            seed=seed,
        )

    return build


def _graph500(scale: int, edgefactor: int):
    def build(seed: int) -> Graph:
        from repro.datagen.graph500 import graph500

        return graph500(scale, edgefactor=edgefactor, seed=seed)

    return build


M = 1e6
B = 1e9

#: Table 3 — real-world datasets.
REAL_DATASETS: List[Dataset] = [
    Dataset(
        "R1",
        _profile("wiki-talk", 2.39 * M, 5.02 * M, directed=True, weighted=False,
                 cv2=60.0, skew=1.40, coverage=0.50, components=170000),
        domain="Knowledge", source="real",
        materializer=_replica("talk", 1200, 2500, directed=True),
    ),
    Dataset(
        "R2",
        _profile("kgs", 0.83 * M, 17.9 * M, directed=False, weighted=False,
                 cv2=3.0, skew=1.05, coverage=0.10, components=50000),
        domain="Gaming", source="real",
        materializer=_replica("coplay", 400, 8000),
    ),
    Dataset(
        "R3",
        _profile("cit-patents", 3.77 * M, 16.5 * M, directed=True, weighted=False,
                 cv2=2.0, skew=1.00, coverage=0.15, components=4000),
        domain="Knowledge", source="real",
        materializer=_replica("citation", 1200, 5200, directed=True),
    ),
    Dataset(
        "R4",
        _profile("dota-league", 0.61 * M, 50.9 * M, directed=False, weighted=True,
                 cv2=0.5, skew=1.15, coverage=0.95, components=60000),
        domain="Gaming", source="real",
        materializer=_replica("coplay", 400, 12000, weighted=True),
    ),
    Dataset(
        "R5",
        _profile("com-friendster", 65.6 * M, 1.81 * B, directed=False,
                 weighted=False, cv2=8.0, skew=1.25),
        domain="Social", source="real",
        materializer=_replica("social", 2000, 28000),
    ),
    Dataset(
        "R6",
        _profile("twitter_mpi", 52.6 * M, 1.97 * B, directed=True, weighted=False,
                 cv2=40.0, skew=1.35, coverage=0.85),
        domain="Social", source="real",
        materializer=_replica("social", 1600, 30000, directed=True),
    ),
]

#: Table 4 — synthetic datasets (Datagen + Graph500).
SYNTHETIC_DATASETS: List[Dataset] = [
    Dataset(
        "D100",
        _profile("datagen-100", 1.67 * M, 102 * M, directed=False, weighted=True,
                 cv2=1.5, skew=1.0),
        domain="Synthetic (social)", source="datagen",
        materializer=_datagen(500, 24.0),
    ),
    Dataset(
        "D100'",
        _profile("datagen-100-cc0.05", 1.67 * M, 103 * M, directed=False,
                 weighted=True, cv2=1.5, skew=1.0),
        domain="Synthetic (social)", source="datagen",
        materializer=_datagen(500, 24.0, target_cc=0.05),
    ),
    Dataset(
        "D100\"",
        _profile("datagen-100-cc0.15", 1.67 * M, 103 * M, directed=False,
                 weighted=True, cv2=1.5, skew=1.0),
        domain="Synthetic (social)", source="datagen",
        materializer=_datagen(500, 24.0, target_cc=0.15),
    ),
    Dataset(
        "D300",
        _profile("datagen-300", 4.35 * M, 304 * M, directed=False, weighted=True,
                 cv2=1.5, skew=1.0),
        domain="Synthetic (social)", source="datagen",
        materializer=_datagen(900, 28.0),
    ),
    Dataset(
        "D1000",
        _profile("datagen-1000", 12.8 * M, 1.01 * B, directed=False, weighted=True,
                 cv2=1.5, skew=1.0),
        domain="Synthetic (social)", source="datagen",
        materializer=_datagen(1600, 32.0),
    ),
    Dataset(
        "G22",
        _profile("graph500-22", 2.40 * M, 64.2 * M, directed=False, weighted=False,
                 cv2=30.0, skew=1.5, coverage=0.80),
        domain="Synthetic (power-law)", source="graph500",
        materializer=_graph500(9, 13),
    ),
    Dataset(
        "G23",
        _profile("graph500-23", 4.61 * M, 129 * M, directed=False, weighted=False,
                 cv2=30.0, skew=1.5, coverage=0.80),
        domain="Synthetic (power-law)", source="graph500",
        materializer=_graph500(10, 14),
    ),
    Dataset(
        "G24",
        _profile("graph500-24", 8.87 * M, 260 * M, directed=False, weighted=False,
                 cv2=30.0, skew=1.5, coverage=0.80),
        domain="Synthetic (power-law)", source="graph500",
        materializer=_graph500(11, 15),
    ),
    Dataset(
        "G25",
        _profile("graph500-25", 17.1 * M, 524 * M, directed=False, weighted=False,
                 cv2=30.0, skew=1.5, coverage=0.80),
        domain="Synthetic (power-law)", source="graph500",
        materializer=_graph500(12, 15),
    ),
    Dataset(
        "G26",
        _profile("graph500-26", 32.8 * M, 1.05 * B, directed=False, weighted=False,
                 cv2=30.0, skew=1.5, coverage=0.80),
        domain="Synthetic (power-law)", source="graph500",
        materializer=_graph500(13, 16),
    ),
]

#: The full catalog, id -> Dataset, in paper order (Table 3 then Table 4).
DATASETS: Dict[str, Dataset] = {
    ds.dataset_id: ds for ds in REAL_DATASETS + SYNTHETIC_DATASETS
}


def dataset_ids() -> List[str]:
    return list(DATASETS)


def get_dataset(dataset_id: str) -> Dataset:
    """Look up by id ("R4") or by name ("dota-league")."""
    if dataset_id in DATASETS:
        return DATASETS[dataset_id]
    for ds in DATASETS.values():
        if ds.name == dataset_id:
            return ds
    raise DatasetError(
        f"unknown dataset {dataset_id!r}; known ids: {', '.join(DATASETS)}"
    )


def datasets_up_to_class(label: str) -> List[Dataset]:
    """All catalog datasets whose T-shirt class is at most ``label``."""
    limit = class_order(label)
    return [ds for ds in DATASETS.values() if class_order(ds.tshirt) <= limit]
