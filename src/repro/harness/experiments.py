"""The Graphalytics experiment suite (paper §2.3, Table 6, §4.1–4.8).

Each experiment is a self-contained object with Table 6 metadata and a
``run`` method producing an :class:`ExperimentReport` (structured rows
ready to print as the paper's tables/figures). The benchmark scripts in
``benchmarks/`` are thin wrappers over these.

| Category    | Experiment          | Algorithms | Datasets       | #nodes | #threads |
|-------------|---------------------|-----------|----------------|--------|----------|
| Baseline    | 4.1 Dataset variety | BFS, PR   | all up to L    | 1      | —        |
| Baseline    | 4.2 Algorithm var.  | all       | R4(S), D300(L) | 1      | —        |
| Scalability | 4.3 Vertical        | BFS, PR   | D300(L)        | 1      | 1–32     |
| Scalability | 4.4 Strong/Horiz.   | BFS, PR   | D1000(XL)      | 1–16   | —        |
| Scalability | 4.5 Weak/Horiz.     | BFS, PR   | G22–G26        | 1–16   | —        |
| Robustness  | 4.6 Stress test     | BFS       | all            | 1      | —        |
| Robustness  | 4.7 Variability     | BFS       | D300, D1000    | 1, 16  | —        |
| Self-test   | 4.8 Data generation | —         | SF 30–10000    | 4–16   | —        |
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.harness.config import BenchmarkConfig
from repro.harness.datasets import DATASETS, datasets_up_to_class, get_dataset
from repro.harness.metrics import coefficient_of_variation, speedup
from repro.harness.runner import BenchmarkRunner
from repro.harness.scale import class_order
from repro.platforms.cluster import ClusterResources
from repro.platforms.registry import PLATFORMS

__all__ = ["Experiment", "ExperimentReport", "EXPERIMENTS", "get_experiment"]

_ALL_PLATFORMS: Tuple[str, ...] = tuple(PLATFORMS)
_DISTRIBUTED_PLATFORMS: Tuple[str, ...] = tuple(
    name for name, (info, _) in PLATFORMS.items() if info.distributed
)


@dataclass
class ExperimentReport:
    """Structured output of one experiment."""

    experiment_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def rows_for(self, **filters) -> List[Dict[str, object]]:
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in filters.items()):
                out.append(row)
        return out


@dataclass
class Experiment:
    """Table 6 metadata plus an executable body."""

    experiment_id: str
    section: str
    category: str
    title: str
    algorithms: Tuple[str, ...]
    datasets: Tuple[str, ...]
    nodes: Tuple[int, ...]
    threads: Tuple[int, ...]
    metrics: Tuple[str, ...]
    _body: callable = field(repr=False, default=None)  # type: ignore[assignment]

    def run(
        self,
        runner: Optional[BenchmarkRunner] = None,
        *,
        seed: int = 0,
        run_dir=None,
    ) -> ExperimentReport:
        """Execute the body; with ``run_dir``, journaled and resumable.

        A journaled experiment records every completed job durably under
        *run_dir*; re-running with the same directory replays the
        recorded jobs and executes only the remainder, so a crashed
        experiment finishes where it stopped (docs/robustness.md).
        With *run_dir* the experiment also exports its span tree to
        ``run_dir/trace.jsonl`` (docs/observability.md).
        """
        from repro.trace import current_tracer

        runner = runner or BenchmarkRunner(BenchmarkConfig(seed=seed))
        journal = None
        if run_dir is not None:
            from repro.runtime.journal import JournalError, RunJournal

            if RunJournal.journal_path(run_dir).exists():
                replay = RunJournal.load(run_dir)
                header = replay.header
                if (
                    header.get("kind") != "experiment"
                    or header.get("experiment") != self.experiment_id
                ):
                    raise JournalError(
                        f"{RunJournal.journal_path(run_dir)} does not record "
                        f"experiment {self.experiment_id!r}"
                    )
                if int(header.get("seed", -1)) != runner.config.seed:
                    raise JournalError(
                        f"journal was written with seed {header.get('seed')}, "
                        f"cannot resume with seed {runner.config.seed}"
                    )
                journal = RunJournal.open(run_dir)
                runner.attach_journal(journal, replay)
            else:
                journal = RunJournal.create(
                    run_dir,
                    {
                        "kind": "experiment",
                        "experiment": self.experiment_id,
                        "seed": runner.config.seed,
                    },
                )
                runner.attach_journal(journal)
        report = ExperimentReport(self.experiment_id, self.title)
        tracer = current_tracer()
        trace_mark = tracer.mark()
        counters_before = tracer.counters
        with tracer.span(
            "experiment", experiment=self.experiment_id, section=self.section
        ):
            self._body(self, runner, report)
        if journal is not None:
            journal.append({"type": "run-complete"})
            journal.close()
            runner.detach_journal()
        if run_dir is not None and tracer.enabled:
            from pathlib import Path

            from repro.trace import write_trace

            delta = {
                name: value - counters_before.get(name, 0.0)
                for name, value in tracer.counters.items()
                if value != counters_before.get(name, 0.0)
            }
            write_trace(
                Path(run_dir) / "trace.jsonl",
                tracer.spans_since(trace_mark),
                counters=delta,
            )
        return report


def _resources(machines: int = 1, threads: Optional[int] = None) -> ClusterResources:
    return ClusterResources(machines=machines, threads=threads)


def _status_code(result) -> str:
    """Paper figure annotations: ok, F (failed), NA (not implemented)."""
    if result.status == "not-supported":
        return "NA"
    if result.succeeded and result.sla_compliant:
        return "ok"
    return "F"


# -- 4.1 Dataset variety ----------------------------------------------------

def _run_dataset_variety(exp: Experiment, runner: BenchmarkRunner,
                         report: ExperimentReport) -> None:
    for platform in _ALL_PLATFORMS:
        for dataset_id in exp.datasets:
            for algorithm in exp.algorithms:
                result = runner.run_job(platform, dataset_id, algorithm)
                report.rows.append(
                    {
                        "platform": result.platform,
                        "dataset": dataset_id,
                        "dataset_label": get_dataset(dataset_id).label,
                        "algorithm": algorithm,
                        "tproc": result.modeled_processing_time,
                        "eps": result.eps,
                        "evps": result.evps,
                        "makespan": result.modeled_makespan,
                        "sla_compliant": result.sla_compliant,
                        "status": _status_code(result),
                    }
                )


# -- 4.2 Algorithm variety ----------------------------------------------------

def _run_algorithm_variety(exp: Experiment, runner: BenchmarkRunner,
                           report: ExperimentReport) -> None:
    for dataset_id in exp.datasets:
        dataset = get_dataset(dataset_id)
        for algorithm in exp.algorithms:
            for platform in _ALL_PLATFORMS:
                if not runner.can_run(platform, dataset, algorithm):
                    report.rows.append(
                        {
                            "platform": platform,
                            "dataset": dataset_id,
                            "algorithm": algorithm,
                            "tproc": None,
                            "sla_compliant": None,
                            "status": "NA",
                        }
                    )
                    continue
                result = runner.run_job(platform, dataset_id, algorithm)
                report.rows.append(
                    {
                        "platform": result.platform,
                        "dataset": dataset_id,
                        "algorithm": algorithm,
                        "tproc": (
                            result.modeled_processing_time
                            if result.succeeded and result.sla_compliant
                            else None
                        ),
                        "backend": result.backend,
                        "sla_compliant": result.sla_compliant,
                        "status": _status_code(result),
                    }
                )


# -- 4.3 Vertical scalability ---------------------------------------------------

def _run_vertical(exp: Experiment, runner: BenchmarkRunner,
                  report: ExperimentReport) -> None:
    dataset_id = exp.datasets[0]
    for platform in _ALL_PLATFORMS:
        for algorithm in exp.algorithms:
            baseline: Optional[float] = None
            best = 0.0
            for threads in exp.threads:
                result = runner.run_job(
                    platform, dataset_id, algorithm,
                    resources=_resources(threads=threads),
                )
                tproc = result.modeled_processing_time
                if tproc is not None and baseline is None:
                    baseline = tproc
                s = speedup(baseline, tproc) if (baseline and tproc) else None
                if s:
                    best = max(best, s)
                report.rows.append(
                    {
                        "platform": result.platform,
                        "algorithm": algorithm,
                        "threads": threads,
                        "tproc": tproc,
                        "speedup": s,
                        "sla_compliant": result.sla_compliant,
                        "status": _status_code(result),
                    }
                )
            report.notes.append(
                f"{platform}/{algorithm}: max vertical speedup {best:.1f}"
            )


# -- 4.4 / 4.5 Horizontal scalability -----------------------------------------------

def _run_strong(exp: Experiment, runner: BenchmarkRunner,
                report: ExperimentReport) -> None:
    dataset_id = exp.datasets[0]
    for platform in _DISTRIBUTED_PLATFORMS:
        for algorithm in exp.algorithms:
            baseline: Optional[float] = None
            for machines in exp.nodes:
                result = runner.run_job(
                    platform, dataset_id, algorithm,
                    resources=_resources(machines=machines),
                )
                ok = result.succeeded and result.sla_compliant
                tproc = result.modeled_processing_time if ok else None
                if tproc is not None and baseline is None:
                    baseline = tproc
                report.rows.append(
                    {
                        "platform": result.platform,
                        "algorithm": algorithm,
                        "machines": machines,
                        "tproc": tproc,
                        "speedup": (
                            speedup(baseline, tproc) if (baseline and tproc) else None
                        ),
                        "sla_compliant": result.sla_compliant,
                        "status": _status_code(result),
                    }
                )


def _run_weak(exp: Experiment, runner: BenchmarkRunner,
              report: ExperimentReport) -> None:
    series = list(zip(exp.datasets, exp.nodes))
    for platform in _DISTRIBUTED_PLATFORMS:
        for algorithm in exp.algorithms:
            baseline: Optional[float] = None
            for dataset_id, machines in series:
                result = runner.run_job(
                    platform, dataset_id, algorithm,
                    resources=_resources(machines=machines),
                )
                ok = result.succeeded and result.sla_compliant
                tproc = result.modeled_processing_time if ok else None
                if tproc is not None and baseline is None:
                    baseline = tproc
                report.rows.append(
                    {
                        "platform": result.platform,
                        "algorithm": algorithm,
                        "dataset": dataset_id,
                        "machines": machines,
                        "tproc": tproc,
                        # ideal weak scaling keeps Tproc constant; the
                        # paper reports the inverse of speedup:
                        "slowdown": (
                            tproc / baseline if (baseline and tproc) else None
                        ),
                        "sla_compliant": result.sla_compliant,
                        "status": _status_code(result),
                    }
                )


# -- 4.6 Stress test -----------------------------------------------------------

def _run_stress(exp: Experiment, runner: BenchmarkRunner,
                report: ExperimentReport) -> None:
    datasets = sorted(
        (get_dataset(d) for d in exp.datasets),
        key=lambda ds: (ds.profile.scale, ds.dataset_id),
    )
    for platform in _ALL_PLATFORMS:
        smallest_failure = None
        for dataset in datasets:
            result = runner.run_job(platform, dataset.dataset_id, "bfs")
            failed = not (result.succeeded and result.sla_compliant)
            report.rows.append(
                {
                    "platform": result.platform,
                    "dataset": dataset.dataset_id,
                    "scale": dataset.profile.scale,
                    "sla_compliant": result.sla_compliant,
                    "status": _status_code(result),
                    "failure_reason": result.failure_reason,
                }
            )
            if failed and smallest_failure is None:
                smallest_failure = dataset
        report.notes.append(
            f"{platform}: smallest failing dataset "
            + (
                f"{smallest_failure.label} (scale {smallest_failure.profile.scale})"
                if smallest_failure
                else "none (all datasets processed)"
            )
        )
        report.rows.append(
            {
                "platform": platform,
                "summary": "stress-limit",
                "dataset": smallest_failure.dataset_id if smallest_failure else None,
                "scale": smallest_failure.profile.scale if smallest_failure else None,
            }
        )


# -- 4.7 Variability ------------------------------------------------------------

def _run_variability(exp: Experiment, runner: BenchmarkRunner,
                     report: ExperimentReport) -> None:
    repetitions = 10
    configs = [
        ("S", exp.datasets[0], 1, _ALL_PLATFORMS),
        ("D", exp.datasets[1], 16, _DISTRIBUTED_PLATFORMS),
    ]
    for label, dataset_id, machines, platforms in configs:
        for platform in platforms:
            times: List[float] = []
            compliant = True
            for run_index in range(repetitions):
                result = runner.run_job(
                    platform, dataset_id, "bfs",
                    resources=_resources(machines=machines),
                    run_index=run_index,
                )
                compliant = compliant and result.sla_compliant
                if result.succeeded and result.modeled_processing_time:
                    times.append(result.modeled_processing_time)
            if len(times) >= 2:
                mean = sum(times) / len(times)
                cv = coefficient_of_variation(times)
            else:
                mean = cv = None
            report.rows.append(
                {
                    "config": label,
                    "platform": platform,
                    "dataset": dataset_id,
                    "machines": machines,
                    "runs": len(times),
                    "mean": mean,
                    "cv": cv,
                    # Every repetition must meet the SLA for the config
                    # to count as compliant (paper §4.7 robustness view).
                    "sla_compliant": compliant,
                }
            )


# -- 4.8 Data generation ----------------------------------------------------------

def _run_datagen(exp: Experiment, runner: BenchmarkRunner,
                 report: ExperimentReport) -> None:
    from repro.datagen.flow import FlowVersion, estimate_generation_time

    for sf in (30, 100, 300, 1000, 3000):
        t_old = estimate_generation_time(sf, machines=16, version=FlowVersion.V0_2_1)
        t_new = estimate_generation_time(sf, machines=16, version=FlowVersion.V0_2_6)
        report.rows.append(
            {
                "panel": "old-vs-new",
                "scale_factor": sf,
                "machines": 16,
                "t_v0_2_1": t_old,
                "t_v0_2_6": t_new,
                "speedup": t_old / t_new,
            }
        )
    for machines in (4, 8, 16):
        for sf in (30, 100, 300, 1000, 3000, 10000):
            t = estimate_generation_time(
                sf, machines=machines, version=FlowVersion.V0_2_6
            )
            report.rows.append(
                {
                    "panel": "cluster-size",
                    "scale_factor": sf,
                    "machines": machines,
                    "t_v0_2_6": t,
                }
            )


def _baseline_dataset_ids() -> Tuple[str, ...]:
    """All catalog datasets up to class L, paper order."""
    return tuple(ds.dataset_id for ds in datasets_up_to_class("L"))


EXPERIMENTS: Dict[str, Experiment] = {
    exp.experiment_id: exp
    for exp in (
        Experiment(
            "dataset-variety", "4.1", "Baseline", "Dataset variety",
            ("bfs", "pr"), _baseline_dataset_ids(), (1,), (),
            ("tproc", "eps", "evps"), _run_dataset_variety,
        ),
        Experiment(
            "algorithm-variety", "4.2", "Baseline", "Algorithm variety",
            ("bfs", "pr", "wcc", "cdlp", "lcc", "sssp"), ("R4", "D300"),
            (1,), (), ("tproc",), _run_algorithm_variety,
        ),
        Experiment(
            "vertical-scalability", "4.3", "Scalability", "Vertical scalability",
            ("bfs", "pr"), ("D300",), (1,), (1, 2, 4, 8, 16, 32),
            ("tproc", "speedup"), _run_vertical,
        ),
        Experiment(
            "strong-scalability", "4.4", "Scalability",
            "Strong horizontal scalability",
            ("bfs", "pr"), ("D1000",), (1, 2, 4, 8, 16), (),
            ("tproc", "speedup"), _run_strong,
        ),
        Experiment(
            "weak-scalability", "4.5", "Scalability",
            "Weak horizontal scalability",
            ("bfs", "pr"), ("G22", "G23", "G24", "G25", "G26"),
            (1, 2, 4, 8, 16), (), ("tproc", "speedup"), _run_weak,
        ),
        Experiment(
            "stress-test", "4.6", "Robustness", "Stress test",
            ("bfs",), tuple(DATASETS), (1,), (), ("sla",), _run_stress,
        ),
        Experiment(
            "variability", "4.7", "Robustness", "Performance variability",
            ("bfs",), ("D300", "D1000"), (1, 16), (), ("cv",), _run_variability,
        ),
        Experiment(
            "data-generation", "4.8", "Self-test", "Data generation",
            (), (), (4, 8, 16), (), ("tgen",), _run_datagen,
        ),
    )
}


def get_experiment(experiment_id: str) -> Experiment:
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(EXPERIMENTS)}"
        ) from None
