"""Public results repository (paper Figure 1, boxes 11–12).

"Validated results are stored in an online repository to track benchmark
results across platforms." Through PR 9 the repository was a directory
of JSON run archives with an ``.index.json`` shadow index and an
``flock`` sidecar serializing writers; this module is now a thin facade
over :mod:`repro.resultsdb` — every run lives in one WAL-mode SQLite
database (``results.db`` inside the repository directory) and a
submission is one ``BEGIN IMMEDIATE`` transaction, so concurrent
writers serialize on SQLite's own lock. That retires the flock sidecar,
the shadow index, and — crucially — the non-POSIX hole the old design
had: on platforms without ``fcntl`` the lock degraded to *no mutual
exclusion at all*, while a transaction is exclusive on every platform
SQLite runs on. This module no longer imports ``fcntl`` for anything.

A directory holding legacy ``{run_id}.json`` archives keeps working:
the facade imports any archive the store does not know yet on first
contact (non-destructively — the JSON files stay where they are), so
pre-existing repositories answer through the same API without an
explicit migration step. ``graphalytics db import`` does the same thing
with verification and reporting for deliberate migrations.

The cross-run queries (:meth:`ResultsRepository.best_platform`,
:meth:`ResultsRepository.regressions`) delegate to the canned queries
in :mod:`repro.resultsdb.queries`, which preserve the JSON backend's
exact answers.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.exceptions import ConfigurationError, ValidationError
from repro.harness.results import BenchmarkResult, ResultsDatabase
from repro.resultsdb import queries as _queries
from repro.resultsdb.queries import Regression
from repro.resultsdb.store import STORE_NAME, ResultsStore

__all__ = ["RunMetadata", "ResultsRepository", "Regression"]

_RUN_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


@dataclass(frozen=True)
class RunMetadata:
    """Descriptive metadata of one submitted run."""

    run_id: str
    system_under_test: str
    submitter: str = ""
    description: str = ""

    def __post_init__(self):
        if not _RUN_ID_PATTERN.match(self.run_id):
            raise ConfigurationError(
                f"run id {self.run_id!r} must be alphanumeric with ._-"
            )
        if not self.system_under_test:
            raise ConfigurationError("system_under_test must be non-empty")


class ResultsRepository:
    """A directory-rooted repository of validated benchmark runs.

    The root directory holds one ``results.db`` store; legacy JSON run
    archives found next to it are absorbed (read-only) on first use.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._store = ResultsStore(self.root / STORE_NAME)
        self._absorb_legacy_archives()

    @property
    def store(self) -> ResultsStore:
        """The underlying results store (for canned queries, stats)."""
        return self._store

    def _absorb_legacy_archives(self) -> None:
        """Import pre-store ``{run_id}.json`` archives, at most once each.

        Dot-prefixed files are the legacy layout's sidecars
        (``.index.json``, ``.lock``) — never run archives, since run
        ids cannot start with a dot. Absorption is non-destructive and
        idempotent: archives already known to the store are skipped, so
        a repository that mixes eras (old JSON runs, new store runs)
        settles into one query surface.
        """
        known = set(self._store.run_ids())
        payloads = []
        for path in sorted(self.root.glob("*.json")):
            if path.name.startswith(".") or path.stem in known:
                continue
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue  # foreign or torn file; not a legacy archive
            metadata = payload.get("metadata")
            if not isinstance(metadata, dict):
                continue
            if str(metadata.get("run_id", "")) != path.stem:
                continue
            if not payload.get("results"):
                continue
            payloads.append(payload)
        if payloads:
            self._store.submit_payloads(payloads)

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        metadata: RunMetadata,
        database: ResultsDatabase,
        *,
        require_validation: bool = True,
    ) -> Path:
        """Store a run; rejects duplicates and unvalidated submissions.

        ``require_validation`` enforces the paper's rule that only
        validated results enter the public repository: every *successful*
        job must have passed output validation.

        Submission is one SQLite transaction opened with ``BEGIN
        IMMEDIATE``: concurrent submitters — service run children,
        parallel harness processes, even on platforms without POSIX
        ``fcntl`` — serialize on the database's write lock, so exactly
        one claims a given run id and none can lose another's rows.
        Returns the store's database path.
        """
        if len(database) == 0:
            raise ConfigurationError("refusing to store an empty run")
        if require_validation:
            unvalidated = [
                r for r in database if r.succeeded and r.validated is not True
            ]
            if unvalidated:
                raise ValidationError(
                    f"{len(unvalidated)} successful jobs lack output "
                    f"validation; submit with require_validation=False only "
                    f"for private runs"
                )
        self._store.submit_run(
            {
                "run_id": metadata.run_id,
                "system_under_test": metadata.system_under_test,
                "submitter": metadata.submitter,
                "description": metadata.description,
            },
            [r.as_dict() for r in database],
        )
        return self._store.path

    # -- retrieval ----------------------------------------------------------

    def run_ids(self) -> List[str]:
        return self._store.run_ids()

    def metadata(self, run_id: str) -> RunMetadata:
        payload = self._store.canonical_payload(run_id)
        return RunMetadata(**payload["metadata"])

    def load(self, run_id: str) -> ResultsDatabase:
        return ResultsDatabase(
            [
                BenchmarkResult(**record)
                for record in self._store.run_records(run_id)
            ]
        )

    def index(self) -> Dict[str, Dict[str, object]]:
        """Run id -> summary; derived from the store, no shadow file."""
        return {
            run_id: {"system_under_test": sut, "jobs": jobs}
            for run_id, sut, jobs in self._store.query(
                "SELECT run_id, system_under_test, job_count FROM runs"
                " ORDER BY run_id"
            )
        }

    # -- cross-run analysis -------------------------------------------------

    def best_platform(
        self, algorithm: str, dataset: str
    ) -> Optional[Dict[str, object]]:
        """Across all stored runs: the fastest compliant job for a workload."""
        return _queries.best_platform(self._store, algorithm, dataset)

    def regressions(
        self, old_run: str, new_run: str, *, threshold: float = 1.10
    ) -> List[Regression]:
        """Workloads at least ``threshold`` times slower in the new run."""
        return _queries.regressions(
            self._store, old_run, new_run, threshold=threshold
        )
