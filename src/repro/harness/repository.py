"""Public results repository (paper Figure 1, boxes 11–12).

"Validated results are stored in an online repository to track benchmark
results across platforms." This module implements the repository as a
directory of JSON run archives with structural validation on submission,
plus cross-run queries: best platform per workload, and regression
detection between two runs of the same platform.
"""

from __future__ import annotations

import json
import os
import re
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

try:  # POSIX advisory locking; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.exceptions import ConfigurationError, ValidationError
from repro.ioutil import atomic_write
from repro.harness.results import BenchmarkResult, ResultsDatabase

__all__ = ["RunMetadata", "ResultsRepository", "Regression"]

_RUN_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: Shared-index file name. Dot-prefixed so :meth:`ResultsRepository.run_ids`
#: can tell it apart from run archives (run ids never start with a dot).
_INDEX_NAME = ".index.json"
_LOCK_NAME = ".lock"


@dataclass(frozen=True)
class RunMetadata:
    """Descriptive metadata of one submitted run."""

    run_id: str
    system_under_test: str
    submitter: str = ""
    description: str = ""

    def __post_init__(self):
        if not _RUN_ID_PATTERN.match(self.run_id):
            raise ConfigurationError(
                f"run id {self.run_id!r} must be alphanumeric with ._-"
            )
        if not self.system_under_test:
            raise ConfigurationError("system_under_test must be non-empty")


@dataclass(frozen=True)
class Regression:
    """One workload where a newer run is slower than an older one."""

    platform: str
    algorithm: str
    dataset: str
    old_seconds: float
    new_seconds: float

    @property
    def slowdown(self) -> float:
        return self.new_seconds / self.old_seconds


class ResultsRepository:
    """A directory of validated benchmark runs."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _run_path(self, run_id: str) -> Path:
        return self.root / f"{run_id}.json"

    # -- mutual exclusion ---------------------------------------------------

    @contextmanager
    def _lock(self):
        """Exclusive advisory lock over repository mutations.

        The benchmark service submits runs from overlapping requests;
        without the lock two submitters can interleave the
        exists-check/read-index/write-index sequence and one update
        silently vanishes (or a duplicate run id slips through the
        duplicate check). ``flock`` on a sidecar file serializes
        writers across processes; readers stay lock-free because every
        artifact is written via :func:`atomic_write` (they see the old
        or the new file, never a torn one).
        """
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        fd = os.open(str(self.root / _LOCK_NAME), os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        metadata: RunMetadata,
        database: ResultsDatabase,
        *,
        require_validation: bool = True,
    ) -> Path:
        """Store a run; rejects duplicates and unvalidated submissions.

        ``require_validation`` enforces the paper's rule that only
        validated results enter the public repository: every *successful*
        job must have passed output validation.

        Submission is safe under concurrent writers: the duplicate
        check, the run write, and the shared-index update all happen
        under an exclusive advisory lock (see :meth:`_lock`), so two
        overlapping service requests cannot both claim one run id or
        lose each other's index entry.
        """
        if len(database) == 0:
            raise ConfigurationError("refusing to store an empty run")
        if require_validation:
            unvalidated = [
                r for r in database if r.succeeded and r.validated is not True
            ]
            if unvalidated:
                raise ValidationError(
                    f"{len(unvalidated)} successful jobs lack output "
                    f"validation; submit with require_validation=False only "
                    f"for private runs"
                )
        payload = {
            "metadata": {
                "run_id": metadata.run_id,
                "system_under_test": metadata.system_under_test,
                "submitter": metadata.submitter,
                "description": metadata.description,
            },
            "results": [r.as_dict() for r in database],
        }
        path = self._run_path(metadata.run_id)
        with self._lock():
            if path.exists():
                raise ConfigurationError(
                    f"run {metadata.run_id!r} already exists"
                )
            atomic_write(path, json.dumps(payload, indent=1))
            index = self._read_index()
            index[metadata.run_id] = {
                "system_under_test": metadata.system_under_test,
                "jobs": len(database),
            }
            atomic_write(
                self.root / _INDEX_NAME,
                json.dumps(index, indent=1, sort_keys=True),
            )
        return path

    def _read_index(self) -> Dict[str, Dict[str, object]]:
        """The shared run index; tolerates a missing or foreign file."""
        path = self.root / _INDEX_NAME
        if not path.exists():
            return {}
        try:
            with open(path, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return {}
        return loaded if isinstance(loaded, dict) else {}

    def index(self) -> Dict[str, Dict[str, object]]:
        """Run id -> summary, as maintained by locked submissions."""
        return self._read_index()

    # -- retrieval --------------------------------------------------------------

    def run_ids(self) -> List[str]:
        return sorted(
            p.stem for p in self.root.glob("*.json")
            if not p.name.startswith(".")
        )

    def metadata(self, run_id: str) -> RunMetadata:
        payload = self._load(run_id)
        return RunMetadata(**payload["metadata"])

    def load(self, run_id: str) -> ResultsDatabase:
        payload = self._load(run_id)
        return ResultsDatabase(
            [BenchmarkResult(**record) for record in payload["results"]]
        )

    def _load(self, run_id: str) -> Dict:
        path = self._run_path(run_id)
        if not path.exists():
            raise ConfigurationError(f"unknown run {run_id!r}")
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    # -- cross-run analysis --------------------------------------------------------

    def best_platform(
        self, algorithm: str, dataset: str
    ) -> Optional[Dict[str, object]]:
        """Across all stored runs: the fastest compliant job for a workload."""
        best: Optional[Dict[str, object]] = None
        for run_id in self.run_ids():
            for r in self.load(run_id):
                if (
                    r.algorithm == algorithm.lower()
                    and r.dataset == dataset
                    and r.succeeded
                    and r.sla_compliant
                    and r.modeled_processing_time is not None
                ):
                    if best is None or r.modeled_processing_time < best["tproc"]:
                        best = {
                            "run_id": run_id,
                            "platform": r.platform,
                            "tproc": r.modeled_processing_time,
                        }
        return best

    def regressions(
        self, old_run: str, new_run: str, *, threshold: float = 1.10
    ) -> List[Regression]:
        """Workloads at least ``threshold`` times slower in the new run."""
        old = self.load(old_run)
        new = self.load(new_run)
        old_index: Dict[tuple, float] = {}
        for r in old:
            if r.succeeded and r.modeled_processing_time:
                key = (r.platform, r.algorithm, r.dataset, r.machines, r.threads)
                old_index[key] = r.modeled_processing_time
        found: List[Regression] = []
        for r in new:
            if not (r.succeeded and r.modeled_processing_time):
                continue
            key = (r.platform, r.algorithm, r.dataset, r.machines, r.threads)
            if key in old_index:
                old_time = old_index[key]
                if r.modeled_processing_time > threshold * old_time:
                    found.append(
                        Regression(
                            platform=r.platform,
                            algorithm=r.algorithm,
                            dataset=r.dataset,
                            old_seconds=old_time,
                            new_seconds=r.modeled_processing_time,
                        )
                    )
        return sorted(found, key=lambda reg: -reg.slowdown)
