"""Benchmark orchestration (paper Figure 1, box 5: harness services).

The runner instructs each platform driver to upload graphs, executes the
configured (platform × dataset × algorithm) jobs, validates outputs
against the reference implementations, extracts Tproc through the
Granula archive of each job's event log, computes the derived metrics,
and fills the results database.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.algorithms.registry import get_algorithm, run_reference
from repro.algorithms.validation import validate_output
from repro.granula.archiver import build_archive
from repro.harness.config import BenchmarkConfig
from repro.harness.datasets import Dataset, get_dataset
from repro.harness.metrics import edges_per_second, edges_and_vertices_per_second
from repro.harness.results import BenchmarkResult, ResultsDatabase
from repro.harness.sla import sla_compliant
from repro.platforms.base import JobResult, PlatformDriver, UploadHandle
from repro.platforms.cluster import ClusterResources
from repro.platforms.registry import create_driver
from repro.trace import current_tracer

__all__ = ["BenchmarkRunner"]


class BenchmarkRunner:
    """Runs benchmark jobs and records results.

    One runner instance caches per-platform uploads and per-dataset
    reference outputs, so experiment suites that revisit the same
    workloads stay fast.
    """

    def __init__(self, config: Optional[BenchmarkConfig] = None):
        self.config = config or BenchmarkConfig()
        self.database = ResultsDatabase()
        self._drivers: Dict[str, PlatformDriver] = {}
        self._handles: Dict[Tuple[str, str], UploadHandle] = {}
        self._references: Dict[Tuple[str, str], np.ndarray] = {}
        #: RuntimeRunResult of the last concurrent ``run()``, if any.
        self.last_run = None
        #: Write-ahead journal for the sequential path (see attach_journal).
        self._journal = None
        self._journal_replay = None

    # -- plumbing -----------------------------------------------------------

    def driver(self, platform: str) -> PlatformDriver:
        platform = platform.lower()
        if platform not in self._drivers:
            kwargs = {}
            if platform == "pythonref" and self.config.partitions is not None:
                # Only the measured reference platform executes for real;
                # the modeled Table-5 drivers have nothing to shard.
                kwargs = {
                    "partitions": self.config.partitions,
                    "partition_strategy": self.config.partition_strategy,
                }
            self._drivers[platform] = create_driver(platform, **kwargs)
        return self._drivers[platform]

    def _handle(self, platform: str, dataset: Dataset) -> UploadHandle:
        key = (platform.lower(), dataset.dataset_id)
        if key not in self._handles:
            graph = dataset.materialize(self.config.seed)
            self._handles[key] = self.driver(platform).upload(
                graph, profile=dataset.profile
            )
        return self._handles[key]

    def _reference_output(
        self, dataset: Dataset, algorithm: str, params: Mapping[str, object]
    ) -> np.ndarray:
        key = (dataset.dataset_id, algorithm)
        if key not in self._references:
            graph = dataset.materialize(self.config.seed)
            self._references[key] = run_reference(algorithm, graph, params)
        return self._references[key]

    def prime_reference(
        self, dataset_id: str, algorithm: str, output: np.ndarray
    ) -> None:
        """Install a precomputed validation reference (runtime prefetch)."""
        self._references[(dataset_id, algorithm.lower())] = output

    def attach_journal(self, journal, replay=None) -> None:
        """Make sequential ``run_job`` calls crash-safe and resumable.

        Every completed job is appended durably to *journal* before the
        next one starts; with *replay* (a loaded
        :class:`~repro.runtime.journal.JournalReplay`), jobs the crashed
        run already completed return their recorded rows instead of
        re-executing. Recorded rows are matched by job identity and
        consumed FIFO per identity, so deterministic experiment bodies
        resume exactly where they stopped.
        """
        self._journal = journal
        self._journal_replay = replay

    def detach_journal(self) -> None:
        self._journal = None
        self._journal_replay = None

    def can_run(self, platform: str, dataset: Dataset, algorithm: str) -> bool:
        """Whether the combination is runnable at all.

        Weighted algorithms need weighted datasets; non-distributed
        platforms cannot take multi-machine resources.
        """
        spec = get_algorithm(algorithm)
        if spec.weighted and not dataset.weighted:
            return False
        driver = self.driver(platform)
        if self.config.resources.machines > 1 and not driver.info.distributed:
            return False
        return True

    # -- job execution -----------------------------------------------------

    def run_job(
        self,
        platform: str,
        dataset_id: str,
        algorithm: str,
        *,
        resources: Optional[ClusterResources] = None,
        run_index: int = 0,
    ) -> BenchmarkResult:
        """Execute one job end to end and record it in the database.

        The whole job runs inside a ``job`` span whose attributes carry
        the final Tproc/makespan/EPS/EVPS — the span tree in a run's
        ``trace.jsonl`` therefore yields the same numbers as the results
        database (see docs/observability.md).
        """
        dataset = get_dataset(dataset_id)
        algorithm = algorithm.lower()
        resources = resources or self.config.resources
        with current_tracer().span(
            "job",
            platform=platform.lower(),
            dataset=dataset.dataset_id,
            algorithm=algorithm,
            run_index=run_index,
        ) as job_span:
            result = self._run_job_body(
                platform, dataset, algorithm, resources, run_index, job_span
            )
            job_span.attributes.update(
                status=result.status,
                tproc=result.modeled_processing_time,
                makespan=result.modeled_makespan,
                eps=result.eps,
                evps=result.evps,
            )
        return result

    def _run_job_body(
        self,
        platform: str,
        dataset: Dataset,
        algorithm: str,
        resources: ClusterResources,
        run_index: int,
        job_span,
    ) -> BenchmarkResult:
        serial_key = None
        if self._journal is not None or self._journal_replay is not None:
            from repro.runtime.journal import serial_job_key

            serial_key = serial_job_key(
                platform,
                dataset.dataset_id,
                algorithm,
                machines=resources.machines,
                threads=resources.threads,
                run_index=run_index,
                seed=self.config.seed,
            )
        if self._journal_replay is not None:
            record = self._journal_replay.take_serial(serial_key)
            if record is not None:
                result = BenchmarkResult(**record["result"])
                job_span.attributes["replayed"] = True
                self.database.add(result)
                return result
        driver = self.driver(platform)
        handle = self._handle(platform, dataset)
        params = dataset.algorithm_parameters(algorithm, self.config.seed)
        job = driver.execute(
            handle,
            algorithm,
            params,
            resources,
            run_index=run_index,
            seed=self.config.seed,
        )
        result = self._finalize(job, dataset, params)
        if self._journal is not None:
            # Journaled (durably) before the result is observable, so a
            # crash after this line cannot lose the completed job.
            self._journal.append(
                {
                    "type": "serial-job",
                    "key": serial_key,
                    "result": result.as_dict(),
                    "trace": job_span.span_id,
                }
            )
        self.database.add(result)
        return result

    def _finalize(
        self,
        job: JobResult,
        dataset: Dataset,
        params: Mapping[str, object],
    ) -> BenchmarkResult:
        """Validate, extract Tproc via Granula, derive metrics."""
        validated: Optional[bool] = None
        if job.succeeded and self.config.validate_outputs and job.output is not None:
            with current_tracer().span(
                "validate", algorithm=job.algorithm, dataset=dataset.dataset_id
            ) as validate_span:
                reference = self._reference_output(dataset, job.algorithm, params)
                try:
                    validate_output(job.algorithm, job.output, reference)
                    validated = True
                except ValidationError:
                    validated = False
                validate_span.attributes["validated"] = validated

        tproc = job.modeled_processing_time
        if job.succeeded and job.events:
            # The harness does not trust the platform's own number: Tproc
            # is extracted from the Granula performance archive built from
            # the job's event log (paper §2.5.2) — which itself now
            # carries measured span durations where they exist.
            archive = build_archive(job)
            tproc = archive.phase_duration("processing")

        eps = evps = None
        if job.succeeded and tproc and tproc > 0:
            profile = dataset.profile
            eps = edges_per_second(profile.num_edges, tproc)
            evps = edges_and_vertices_per_second(
                profile.num_vertices, profile.num_edges, tproc
            )

        return BenchmarkResult(
            platform=job.platform,
            algorithm=job.algorithm,
            dataset=dataset.dataset_id,
            machines=job.resources.machines,
            threads=job.resources.threads_per_machine,
            status=job.status.value,
            failure_reason=job.failure_reason,
            run_index=job.run_index,
            backend=job.backend,
            modeled_processing_time=tproc,
            modeled_makespan=job.modeled_makespan,
            modeled_upload_time=job.modeled_upload_time,
            modeled_memory_demand=job.modeled_memory_demand,
            measured_processing_seconds=job.measured_processing_seconds,
            eps=eps,
            evps=evps,
            sla_compliant=sla_compliant(job, budget=self.config.sla_seconds),
            validated=validated,
        )

    # -- batch runs --------------------------------------------------------

    def run(self, *, workers: int = 1, runtime=None, run_dir=None) -> ResultsDatabase:
        """Run the full configured selection; returns the database.

        With ``workers > 1`` (or an explicit
        :class:`~repro.runtime.executor.RuntimeConfig`) the matrix is
        executed by the concurrent runtime: a dependency-aware job DAG
        dispatched onto a multiprocessing worker pool sharing a
        content-addressed graph cache. The merged database is
        deterministic — identical to the serial run except for the
        environment-dependent ``measured_*`` wall-clocks (see
        ``ResultsDatabase.canonical_json`` and docs/runtime.md).

        With ``run_dir`` the run is journaled and crash-safe (always via
        the runtime, whatever the worker count): if the directory holds
        a journal from a crashed run of the *same* matrix, the run
        resumes from it instead of starting over (docs/robustness.md).
        """
        if workers > 1 or runtime is not None or run_dir is not None:
            from repro.runtime.executor import RuntimeConfig, execute_matrix
            from repro.runtime.journal import RunJournal

            if runtime is None:
                runtime = RuntimeConfig(workers=workers)
            resume = (
                run_dir is not None
                and RunJournal.journal_path(run_dir).exists()
            )
            outcome = execute_matrix(
                self.config, runtime, run_dir=run_dir, resume=resume
            )
            self.database.extend(outcome.database)
            self.last_run = outcome
            return self.database
        for platform in self.config.platforms:
            for dataset_id in self.config.datasets:
                dataset = get_dataset(dataset_id)
                for algorithm in self.config.algorithms:
                    if not self.can_run(platform, dataset, algorithm):
                        if self.config.skip_impossible:
                            continue
                        raise ValidationError(
                            f"cannot run {algorithm} on {dataset_id} with {platform}"
                        )
                    for rep in range(self.config.repetitions):
                        self.run_job(
                            platform, dataset_id, algorithm, run_index=rep
                        )
        return self.database
