"""The two-stage workload selection process (paper §2.2.2–2.2.3, Table 1).

Stage one identifies classes of algorithms that are representative of
real-world graph analysis, from two literature surveys over ten
conferences (VLDB, SIGMOD, SC, PPoPP, ...): one of 124 articles on
unweighted graphs (conducted for [20]) and one of 44 articles on
weighted graphs (conducted for the paper). Stage two selects algorithms
from the most common classes such that the selection is *diverse* —
covering a variety of computation and communication patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = [
    "SurveyClass",
    "SURVEY_UNWEIGHTED",
    "SURVEY_WEIGHTED",
    "survey_table",
    "two_stage_selection",
    "CORE_ALGORITHM_SELECTION",
]


@dataclass(frozen=True)
class SurveyClass:
    """One algorithm class with its literature occurrence count."""

    name: str
    count: int
    #: Candidate core algorithms in this class (empty for classes the
    #: selection skipped as non-representative or too narrow).
    candidates: Tuple[str, ...] = ()

    def percentage(self, total: int) -> float:
        return 100.0 * self.count / total


#: Table 1, upper half: survey of articles on unweighted graphs
#: (124 articles; one article may contain multiple algorithms).
SURVEY_UNWEIGHTED: Tuple[SurveyClass, ...] = (
    SurveyClass("Statistics", 24, ("pr", "lcc")),
    SurveyClass("Traversal", 69, ("bfs",)),
    SurveyClass("Components", 20, ("wcc", "cdlp")),
    SurveyClass("Graph Evolution", 6),
    SurveyClass("Other", 22),
)

#: Table 1, lower half: survey of articles on weighted graphs (44 articles).
SURVEY_WEIGHTED: Tuple[SurveyClass, ...] = (
    SurveyClass("Distances/Paths", 17, ("sssp",)),
    SurveyClass("Clustering", 7),
    SurveyClass("Partitioning", 5),
    SurveyClass("Routing", 5),
    SurveyClass("Other", 16),
)

#: The paper's resulting selection, with the diversity rationale of each
#: algorithm (computation/communication pattern coverage).
CORE_ALGORITHM_SELECTION: Dict[str, str] = {
    "bfs": "data-dependent frontier traversal, few active vertices per step",
    "pr": "stationary iteration, all vertices active, dense communication",
    "wcc": "label convergence, diminishing activity over time",
    "cdlp": "iteration with per-vertex histogram aggregation",
    "lcc": "neighborhood intersection, degree-quadratic work",
    "sssp": "weighted priority traversal on double-precision properties",
}


def survey_table() -> List[Dict[str, object]]:
    """Table 1 rows: class, selected candidates, count, percentage."""
    rows: List[Dict[str, object]] = []
    for survey_name, survey in (
        ("Unweighted", SURVEY_UNWEIGHTED),
        ("Weighted", SURVEY_WEIGHTED),
    ):
        total = sum(c.count for c in survey)
        for cls in survey:
            rows.append(
                {
                    "survey": survey_name,
                    "class": cls.name,
                    "candidates": tuple(c.upper() for c in cls.candidates),
                    "count": cls.count,
                    "percentage": round(cls.percentage(total), 1),
                }
            )
    return rows


def two_stage_selection(
    *,
    min_class_share: float = 0.10,
    max_per_class: int = 2,
) -> List[str]:
    """Run the two-stage process and return the selected acronyms.

    Stage 1: keep classes whose literature share is at least
    ``min_class_share`` (representativeness). Stage 2: from each kept
    class take up to ``max_per_class`` candidate algorithms with distinct
    computation patterns (diversity). With the paper's survey data and
    defaults this reproduces exactly the six core algorithms.
    """
    selected: List[str] = []
    for survey in (SURVEY_UNWEIGHTED, SURVEY_WEIGHTED):
        total = sum(c.count for c in survey)
        for cls in survey:
            if cls.name == "Other":
                continue  # not a coherent class; never selectable
            if cls.count / total < min_class_share:
                continue
            for algorithm in cls.candidates[:max_per_class]:
                if algorithm not in selected:
                    selected.append(algorithm)
    return selected
