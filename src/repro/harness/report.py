"""Benchmark report generation (paper Figure 1: "Results Analysis").

Turns a :class:`~repro.harness.results.ResultsDatabase` into a
human-readable report: an overview, per-algorithm platform comparisons,
SLA compliance, validation outcomes, and throughput summaries. Rendered
as Markdown so reports can be published as-is.
"""

from __future__ import annotations

from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.harness.results import BenchmarkResult, ResultsDatabase
from repro.ioutil import atomic_write

__all__ = ["render_report", "save_report", "summarize"]


def _format_seconds(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds >= 100:
        return f"{seconds:.0f} s"
    if seconds >= 1:
        return f"{seconds:.2f} s"
    return f"{seconds * 1000:.1f} ms"


def summarize(database: ResultsDatabase) -> Dict[str, object]:
    """Aggregate counters for the report header."""
    total = len(database)
    succeeded = sum(1 for r in database if r.succeeded)
    sla = sum(1 for r in database if r.sla_compliant)
    validated = sum(1 for r in database if r.validated)
    failures: Dict[str, int] = defaultdict(int)
    for r in database:
        if not r.succeeded:
            failures[r.status] += 1
    return {
        "jobs": total,
        "succeeded": succeeded,
        "sla_compliant": sla,
        "validated": validated,
        "failures": dict(failures),
        "platforms": sorted({r.platform for r in database}),
        "datasets": sorted({r.dataset for r in database}),
        "algorithms": sorted({r.algorithm for r in database}),
    }


def _group(
    database: ResultsDatabase,
) -> Dict[str, Dict[str, Dict[str, List[BenchmarkResult]]]]:
    """algorithm -> dataset -> platform -> results."""
    grouped: Dict[str, Dict[str, Dict[str, List[BenchmarkResult]]]] = (
        defaultdict(lambda: defaultdict(lambda: defaultdict(list)))
    )
    for r in database:
        grouped[r.algorithm][r.dataset][r.platform].append(r)
    return grouped


def _result_cell(results: List[BenchmarkResult]) -> str:
    ok = [r for r in results if r.succeeded and r.sla_compliant]
    if not ok:
        reasons = {r.status for r in results}
        if "not-supported" in reasons:
            return "NA"
        return "FAIL"
    times = [r.modeled_processing_time for r in ok if r.modeled_processing_time]
    if not times:
        return "ok"
    mean = sum(times) / len(times)
    return _format_seconds(mean)


def render_report(database: ResultsDatabase, *, title: str = "Graphalytics benchmark report") -> str:
    """Render the full Markdown report."""
    summary = summarize(database)
    lines: List[str] = [f"# {title}", ""]
    lines.append(
        f"{summary['jobs']} jobs — {summary['succeeded']} succeeded, "
        f"{summary['sla_compliant']} within the 1-hour SLA, "
        f"{summary['validated']} outputs validated."
    )
    if summary["failures"]:
        failure_text = ", ".join(
            f"{count}x {status}" for status, count in sorted(summary["failures"].items())
        )
        lines.append(f"Failures: {failure_text}.")
    lines.append("")
    lines.append(
        f"Platforms: {', '.join(summary['platforms'])}. "
        f"Datasets: {', '.join(summary['datasets'])}. "
        f"Algorithms: {', '.join(a.upper() for a in summary['algorithms'])}."
    )
    lines.append("")

    # SLA breaches (paper §2.4: a job counts only if it meets the
    # 1-hour makespan SLA). "not-supported" rows are NA, not breaches.
    breaches = [
        r for r in database
        if not r.sla_compliant and r.status != "not-supported"
    ]
    if breaches:
        lines.append("## SLA breaches")
        lines.append("")
        lines.append("| platform | algorithm | dataset | run | status |")
        lines.append("|---|---|---|---|---|")
        shown = breaches[:20]
        for r in shown:
            lines.append(
                f"| {r.platform} | {r.algorithm.upper()} | {r.dataset} "
                f"| {r.run_index} | {r.status} |"
            )
        if len(breaches) > len(shown):
            lines.append("")
            lines.append(f"... and {len(breaches) - len(shown)} more.")
        lines.append("")

    grouped = _group(database)
    for algorithm in sorted(grouped):
        lines.append(f"## {algorithm.upper()}")
        lines.append("")
        datasets = sorted(grouped[algorithm])
        platforms = sorted(
            {p for ds in grouped[algorithm].values() for p in ds}
        )
        lines.append("| dataset | " + " | ".join(platforms) + " |")
        lines.append("|" + "---|" * (len(platforms) + 1))
        for dataset in datasets:
            cells = [
                _result_cell(grouped[algorithm][dataset].get(platform, []))
                for platform in platforms
            ]
            lines.append(f"| {dataset} | " + " | ".join(cells) + " |")
        lines.append("")

        # Throughput (EVPS) leaders per dataset.
        leaders = []
        for dataset in datasets:
            best: Optional[BenchmarkResult] = None
            for platform_results in grouped[algorithm][dataset].values():
                for r in platform_results:
                    if r.succeeded and r.evps and (
                        best is None or r.evps > best.evps
                    ):
                        best = r
            if best is not None:
                leaders.append(
                    f"{dataset}: {best.platform} ({best.evps:.3g} EVPS)"
                )
        if leaders:
            lines.append("Fastest (EVPS): " + "; ".join(leaders) + ".")
            lines.append("")
    return "\n".join(lines)


def save_report(
    database: ResultsDatabase,
    path: Union[str, Path],
    *,
    title: str = "Graphalytics benchmark report",
) -> Path:
    return atomic_write(path, render_report(database, title=title))
