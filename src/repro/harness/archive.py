"""Workload archive: datasets + reference outputs on disk (Figure 1, box 6).

The real benchmark distributes datasets through "public workload
archives" together with per-algorithm *reference output* files. This
module materializes the miniature catalog in exactly that layout::

    <root>/
      R4/
        dota-league.v
        dota-league.e
        dota-league.properties     # directedness/weights metadata
        dota-league-BFS            # reference outputs, one per algorithm
        dota-league-PR
        ...

so a third-party implementation can be developed and validated against
this repository without importing it (via ``graphalytics validate``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.exceptions import DatasetError
from repro.ioutil import atomic_write
from repro.algorithms.output_io import write_output
from repro.algorithms.registry import ALGORITHMS, get_algorithm, run_reference
from repro.graph.io import write_graph
from repro.harness.datasets import Dataset, DATASETS, get_dataset

__all__ = ["materialize_archive", "archive_manifest", "load_archived_graph"]


def _dataset_dir(root: Path, dataset: Dataset) -> Path:
    return root / dataset.dataset_id


def materialize_archive(
    root: Union[str, Path],
    *,
    dataset_ids: Optional[Iterable[str]] = None,
    algorithms: Optional[Iterable[str]] = None,
    seed: int = 0,
) -> List[Path]:
    """Write datasets + reference outputs; returns the dataset dirs."""
    root = Path(root)
    selected = [
        get_dataset(d) for d in (dataset_ids if dataset_ids is not None else DATASETS)
    ]
    algorithm_list = [a.lower() for a in (algorithms or ALGORITHMS)]
    for algorithm in algorithm_list:
        get_algorithm(algorithm)  # validate early

    written: List[Path] = []
    for dataset in selected:
        directory = _dataset_dir(root, dataset)
        directory.mkdir(parents=True, exist_ok=True)
        graph = dataset.materialize(seed)
        prefix = directory / dataset.name
        write_graph(graph, prefix)
        properties = {
            "dataset_id": dataset.dataset_id,
            "name": dataset.name,
            "directed": graph.directed,
            "weighted": graph.is_weighted,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "seed": seed,
            "full_scale": {
                "vertices": dataset.profile.num_vertices,
                "edges": dataset.profile.num_edges,
                "scale": dataset.profile.scale,
                "class": dataset.tshirt,
            },
        }
        atomic_write(
            directory / f"{dataset.name}.properties",
            json.dumps(properties, indent=1),
        )
        for algorithm in algorithm_list:
            spec = get_algorithm(algorithm)
            if spec.weighted and not graph.is_weighted:
                continue
            params = dataset.algorithm_parameters(algorithm, seed)
            reference = run_reference(algorithm, graph, params)
            write_output(
                graph,
                reference,
                directory / f"{dataset.name}-{algorithm.upper()}",
                algorithm=algorithm,
            )
        written.append(directory)
    return written


def archive_manifest(root: Union[str, Path]) -> Dict[str, Dict[str, object]]:
    """Index of an archive directory: dataset id -> properties + outputs."""
    root = Path(root)
    if not root.is_dir():
        raise DatasetError(f"{root} is not an archive directory")
    manifest: Dict[str, Dict[str, object]] = {}
    for properties_path in sorted(root.glob("*/*.properties")):
        with open(properties_path, "r", encoding="utf-8") as handle:
            properties = json.load(handle)
        directory = properties_path.parent
        name = properties["name"]
        outputs = sorted(
            p.name.rsplit("-", 1)[1].lower()
            for p in directory.glob(f"{name}-*")
            if not p.name.endswith(".properties")
        )
        manifest[properties["dataset_id"]] = {
            **properties,
            "reference_outputs": outputs,
        }
    if not manifest:
        raise DatasetError(f"no archived datasets found under {root}")
    return manifest


def load_archived_graph(root: Union[str, Path], dataset_id: str):
    """Reload a dataset from an archive directory (round-trip path)."""
    from repro.graph.io import read_graph

    root = Path(root)
    directory = root / dataset_id
    properties_files = list(directory.glob("*.properties"))
    if len(properties_files) != 1:
        raise DatasetError(f"no archived dataset {dataset_id!r} under {root}")
    with open(properties_files[0], "r", encoding="utf-8") as handle:
        properties = json.load(handle)
    return read_graph(
        directory / properties["name"],
        directed=properties["directed"],
        weighted=properties["weighted"],
        name=properties["name"],
    )
