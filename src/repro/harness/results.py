"""Results database (paper Figure 1, box 9).

Stores one flat record per benchmark job, including both the modeled
full-scale metrics and the measured miniature wall-clock, the SLA
verdict, and the output-validation verdict. Serializes to JSON so runs
can be archived and compared.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.exceptions import ConfigurationError
from repro.ioutil import atomic_write

__all__ = ["BenchmarkResult", "ResultsDatabase"]


@dataclass(frozen=True)
class BenchmarkResult:
    """One job's record, flattened for storage and querying."""

    platform: str
    algorithm: str
    dataset: str
    machines: int
    threads: int
    status: str
    failure_reason: str = ""
    run_index: int = 0
    backend: str = ""
    modeled_processing_time: Optional[float] = None
    modeled_makespan: Optional[float] = None
    modeled_upload_time: Optional[float] = None
    modeled_memory_demand: Optional[float] = None
    measured_processing_seconds: Optional[float] = None
    eps: Optional[float] = None
    evps: Optional[float] = None
    sla_compliant: bool = False
    validated: Optional[bool] = None

    @property
    def succeeded(self) -> bool:
        return self.status == "succeeded"

    def as_dict(self) -> Dict[str, object]:
        # All fields are scalars, so a flat comprehension matches
        # dataclasses.asdict at a fraction of its recursive-copy cost —
        # this runs once per job for the journal and once for the save.
        return {name: getattr(self, name) for name in _RESULT_FIELDS}


_RESULT_FIELDS = tuple(f.name for f in fields(BenchmarkResult))


class ResultsDatabase:
    """Append-only store of :class:`BenchmarkResult` with simple queries."""

    def __init__(self, results: Optional[List[BenchmarkResult]] = None):
        self._results: List[BenchmarkResult] = list(results or [])

    def add(self, result: BenchmarkResult) -> None:
        self._results.append(result)

    def extend(self, results) -> None:
        for result in results:
            self.add(result)

    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator[BenchmarkResult]:
        return iter(self._results)

    def query(
        self,
        *,
        platform: Optional[str] = None,
        algorithm: Optional[str] = None,
        dataset: Optional[str] = None,
        machines: Optional[int] = None,
        threads: Optional[int] = None,
        status: Optional[str] = None,
    ) -> List[BenchmarkResult]:
        """All records matching every given filter."""
        out = []
        for r in self._results:
            if platform is not None and r.platform.lower() != platform.lower():
                continue
            if algorithm is not None and r.algorithm != algorithm.lower():
                continue
            if dataset is not None and r.dataset != dataset:
                continue
            if machines is not None and r.machines != machines:
                continue
            if threads is not None and r.threads != threads:
                continue
            if status is not None and r.status != status:
                continue
            out.append(r)
        return out

    def one(self, **filters) -> BenchmarkResult:
        """The single record matching the filters; raises otherwise."""
        matches = self.query(**filters)
        if len(matches) != 1:
            raise ConfigurationError(
                f"expected exactly one record for {filters}, found {len(matches)}"
            )
        return matches[0]

    def processing_times(self, **filters) -> List[float]:
        """Modeled Tproc of all successful matching jobs."""
        return [
            r.modeled_processing_time
            for r in self.query(**filters)
            if r.succeeded and r.modeled_processing_time is not None
        ]

    # -- persistence -----------------------------------------------------

    def canonical_json(self) -> str:
        """Deterministic serialization: ``measured_*`` fields nulled.

        Modeled metrics are pure functions of the job spec and seed;
        the ``measured_*`` wall-clocks are whatever this machine did
        today. Nulling them yields a string that is bit-identical across
        runs, worker counts, and completion orders — the comparator for
        the runtime's determinism contract (docs/runtime.md).
        """
        payload = []
        for result in self._results:
            record = result.as_dict()
            for key in record:
                if key.startswith("measured_"):
                    record[key] = None
            payload.append(record)
        return json.dumps(payload, indent=1, sort_keys=True)

    def save(self, path: Union[str, Path]) -> Path:
        # Atomic: a crash mid-save must never replace a loadable database
        # with a truncated one (see repro.ioutil).
        payload = [r.as_dict() for r in self._results]
        return atomic_write(path, json.dumps(payload, indent=1))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ResultsDatabase":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        return cls([BenchmarkResult(**record) for record in payload])
