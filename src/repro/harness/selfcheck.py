"""Installation self-check: is this benchmark deployment healthy?

A real benchmark suite ships a smoke check operators run before
trusting results. This one verifies, in seconds:

* catalog integrity — every dataset's printed scale recomputes from its
  |V|/|E|, miniatures materialize with matching shape;
* platform integrity — all Table 5 drivers instantiate, their quirks
  match the paper's capability matrix;
* kernel correctness — a quick algorithm sweep on a tiny graph,
  validated against precomputed invariants;
* calibration anchors — the Table 8 headline numbers still hold;
* determinism — two fresh runs of one job agree bit for bit;
* lint — the static determinism/conformance analyzer reports nothing
  beyond the committed baseline.

Exposed as ``graphalytics selfcheck``; each check returns a
:class:`CheckResult` so failures are reportable individually.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

__all__ = ["CheckResult", "run_selfcheck", "CHECKS"]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one self-check."""

    name: str
    passed: bool
    detail: str


def _check_dataset_catalog() -> str:
    from repro.harness.datasets import DATASETS
    from repro.harness.scale import graph_scale

    for ds in DATASETS.values():
        profile = ds.profile
        computed = graph_scale(profile.num_vertices, profile.num_edges)
        if computed != profile.scale:
            raise AssertionError(
                f"{ds.dataset_id}: scale {profile.scale} != computed {computed}"
            )
    return f"{len(DATASETS)} datasets, all scales recompute"


def _check_miniatures() -> str:
    from repro.harness.datasets import get_dataset

    checked = 0
    for dataset_id in ("R1", "R4", "D100", "G22"):
        ds = get_dataset(dataset_id)
        graph = ds.materialize()
        if graph.directed != ds.profile.directed:
            raise AssertionError(f"{dataset_id}: directedness mismatch")
        if graph.is_weighted != ds.profile.weighted:
            raise AssertionError(f"{dataset_id}: weight mismatch")
        if graph.num_edges == 0:
            raise AssertionError(f"{dataset_id}: empty miniature")
        checked += 1
    return f"{checked} miniatures materialize with matching shape"


def _check_platform_matrix() -> str:
    from repro.platforms.registry import PLATFORMS, create_driver

    drivers = {name: create_driver(name) for name in PLATFORMS}
    if len(drivers) != 6:
        raise AssertionError(f"expected 6 platforms, found {len(drivers)}")
    if drivers["pgxd"].supports("lcc"):
        raise AssertionError("PGX.D must not support LCC")
    if "cdlp" not in drivers["graphx"].crash_algorithms:
        raise AssertionError("GraphX CDLP must crash")
    if drivers["openg"].info.distributed:
        raise AssertionError("OpenG must be single-machine")
    if not drivers["openg"].model.queue_based_bfs:
        raise AssertionError("OpenG must use queue-based BFS")
    return "6 drivers, capability quirks in place"


def _check_kernels() -> str:
    import numpy as np

    from repro.algorithms import (
        breadth_first_search,
        local_clustering_coefficient,
        pagerank,
        weakly_connected_components,
    )
    from repro.graph.generators import complete_graph, path_graph

    path = path_graph(5)
    if breadth_first_search(path, 0).tolist() != [0, 1, 2, 3, 4]:
        raise AssertionError("BFS on a path is wrong")
    clique = complete_graph(4)
    if not np.allclose(local_clustering_coefficient(clique), 1.0):
        raise AssertionError("LCC on a clique is wrong")
    if abs(pagerank(clique).sum() - 1.0) > 1e-9:
        raise AssertionError("PageRank does not normalize")
    if len(np.unique(weakly_connected_components(path))) != 1:
        raise AssertionError("WCC on a path is wrong")
    return "kernel invariants hold"


def _check_calibration() -> str:
    from repro.harness.datasets import get_dataset
    from repro.platforms.cluster import ClusterResources
    from repro.platforms.registry import create_driver

    profile = get_dataset("D300").profile
    anchors = {"graphmat": 0.3, "giraph": 22.3, "pgxd": 0.5}
    for name, expected in anchors.items():
        model = create_driver(name).model
        tproc = model.processing_time("bfs", profile, ClusterResources())
        if abs(tproc - expected) / expected > 0.10:
            raise AssertionError(
                f"{name}: Table 8 anchor drifted ({tproc:.2f} vs {expected})"
            )
    return "Table 8 anchors within 10%"


def _check_determinism() -> str:
    from repro.harness.config import BenchmarkConfig
    from repro.harness.runner import BenchmarkRunner

    def one_run():
        runner = BenchmarkRunner(BenchmarkConfig(seed=123))
        return runner.run_job("powergraph", "G22", "bfs").modeled_processing_time

    if one_run() != one_run():
        raise AssertionError("repeated runs disagree")
    return "repeated runs agree bit for bit"


def _check_lint() -> str:
    from pathlib import Path

    import repro
    from repro.lint import (
        LintEngine,
        load_baseline,
        load_config,
        partition_findings,
    )

    config = load_config(Path(repro.__file__))
    engine = LintEngine(config)
    findings = engine.run([Path(repro.__file__).parent])
    baseline = load_baseline(config.baseline_path)
    new, baselined = partition_findings(findings, baseline)
    if new:
        first = new[0]
        raise AssertionError(
            f"{len(new)} non-baseline lint findings; first: "
            f"{first.path}:{first.line} {first.rule_id} {first.message}"
        )
    suffix = f" ({len(baselined)} baselined)" if baselined else ""
    return f"static analysis clean{suffix}"


#: name -> check body (raises AssertionError on failure).
CHECKS: List = [
    ("dataset-catalog", _check_dataset_catalog),
    ("miniatures", _check_miniatures),
    ("platform-matrix", _check_platform_matrix),
    ("kernels", _check_kernels),
    ("calibration", _check_calibration),
    ("determinism", _check_determinism),
    ("lint", _check_lint),
]


def run_selfcheck() -> List[CheckResult]:
    """Run every check; never raises — failures land in the results."""
    results: List[CheckResult] = []
    for name, body in CHECKS:
        try:
            detail = body()
            results.append(CheckResult(name, True, detail))
        # lint: disable=EXC001 - probes report failures as CheckResults
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            results.append(CheckResult(name, False, str(exc)))
    return results
