"""The benchmark renewal process (paper §2.4, requirement R4).

Every two years a new version of the benchmark is produced: the
algorithm set is re-selected through the two-stage survey process, and
the dataset classes are recalibrated — in particular class L is redefined
as the largest class such that a state-of-the-art platform completes BFS
within one hour on all graphs in the class, on one commodity machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.scale import SCALE_CLASSES, class_order, scale_class
from repro.harness.survey import SurveyClass, two_stage_selection
from repro.harness.sla import SLA_MAKESPAN_SECONDS

__all__ = ["RenewalDecision", "RenewalProcess"]

#: Cadence of the renewal process, in years.
RENEWAL_PERIOD_YEARS = 2


@dataclass(frozen=True)
class RenewalDecision:
    """Outcome of one renewal round."""

    version: int
    algorithms: Tuple[str, ...]
    added_algorithms: Tuple[str, ...]
    obsoleted_algorithms: Tuple[str, ...]
    reference_class: str           # the recalibrated class "L"
    notes: Tuple[str, ...] = ()


class RenewalProcess:
    """Mechanized §2.4: re-select algorithms, recalibrate class L.

    ``bfs_hour_completions`` maps dataset scale -> whether a
    state-of-the-art platform finished BFS within the SLA hour on a
    single machine (normally produced by the stress-test experiment).
    """

    def __init__(self, current_algorithms: Sequence[str], version: int = 1):
        self.current_algorithms = tuple(a.lower() for a in current_algorithms)
        self.version = version

    def reselect_algorithms(
        self,
        unweighted_survey: Optional[Sequence[SurveyClass]] = None,
        weighted_survey: Optional[Sequence[SurveyClass]] = None,
    ) -> Tuple[Tuple[str, ...], Tuple[str, ...], Tuple[str, ...]]:
        """(new set, added, obsoleted) from a fresh survey round.

        With no fresh surveys, the stored (paper) surveys are reused and
        the selection is stable.
        """
        if unweighted_survey is None and weighted_survey is None:
            selected = tuple(two_stage_selection())
        else:
            selected = tuple(
                self._select_from(unweighted_survey or ())
                + self._select_from(weighted_survey or ())
            )
        added = tuple(a for a in selected if a not in self.current_algorithms)
        obsoleted = tuple(a for a in self.current_algorithms if a not in selected)
        return selected, added, obsoleted

    @staticmethod
    def _select_from(survey: Sequence[SurveyClass], min_share: float = 0.10) -> List[str]:
        total = sum(c.count for c in survey) or 1
        picked: List[str] = []
        for cls in survey:
            if cls.name == "Other" or cls.count / total < min_share:
                continue
            picked.extend(a for a in cls.candidates[:2] if a not in picked)
        return picked

    @staticmethod
    def recalibrate_reference_class(
        bfs_makespans_by_scale: Dict[float, float],
        *,
        sla_seconds: float = SLA_MAKESPAN_SECONDS,
    ) -> str:
        """Redefine class L: the largest class all of whose measured
        graphs complete BFS within the SLA hour.

        ``bfs_makespans_by_scale`` holds the best single-machine BFS
        makespan per dataset scale, across the platforms available to the
        team (paper: the selection of platforms is limited to those
        implementing Graphalytics at renewal time).
        """
        best_label = SCALE_CLASSES[0][2]
        for low, high, label in SCALE_CLASSES:
            in_class = {
                s: t for s, t in bfs_makespans_by_scale.items() if low <= s < high
            }
            if not in_class:
                continue
            if all(t <= sla_seconds for t in in_class.values()):
                if class_order(label) > class_order(best_label):
                    best_label = label
        return best_label

    def renew(
        self,
        bfs_makespans_by_scale: Dict[float, float],
        *,
        unweighted_survey: Optional[Sequence[SurveyClass]] = None,
        weighted_survey: Optional[Sequence[SurveyClass]] = None,
    ) -> RenewalDecision:
        """One full renewal round; returns the decision record."""
        algorithms, added, obsoleted = self.reselect_algorithms(
            unweighted_survey, weighted_survey
        )
        reference = self.recalibrate_reference_class(bfs_makespans_by_scale)
        notes = []
        if added:
            notes.append(f"algorithms added: {', '.join(added)}")
        if obsoleted:
            notes.append(
                "marked obsolete, removed in the next version: "
                + ", ".join(obsoleted)
            )
        notes.append(f"reference class L recalibrated to scales of class {reference}")
        return RenewalDecision(
            version=self.version + 1,
            algorithms=algorithms,
            added_algorithms=added,
            obsoleted_algorithms=obsoleted,
            reference_class=reference,
            notes=tuple(notes),
        )
