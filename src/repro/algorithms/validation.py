"""Output validation: equivalence to the reference implementation.

Paper §2.2.3: "Correctness of a platform implementation is defined as
output equivalence to the provided reference implementation." Following
the official Graphalytics validation rules, each algorithm uses one of
three equivalence notions:

* **exact match** — identical values per vertex (BFS);
* **epsilon match** — values equal within a relative tolerance, for
  floating-point outputs (PR, LCC, SSSP); infinities must match exactly;
* **equivalence match** — outputs induce the same partition of the vertex
  set, regardless of the label values chosen (WCC, CDLP).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "ExactMatchRule",
    "EpsilonMatchRule",
    "EquivalenceMatchRule",
    "VALIDATION_RULES",
    "validation_rule_for",
    "validate_output",
]


class ExactMatchRule:
    """Vertex values must be identical."""

    name = "exact"

    def check(self, actual: np.ndarray, reference: np.ndarray) -> None:
        actual = np.asarray(actual)
        reference = np.asarray(reference)
        if actual.shape != reference.shape:
            raise ValidationError(
                f"shape mismatch: {actual.shape} vs reference {reference.shape}"
            )
        mismatch = np.nonzero(actual != reference)[0]
        if len(mismatch):
            i = int(mismatch[0])
            raise ValidationError(
                f"{len(mismatch)} mismatching vertices; first at dense index "
                f"{i}: {actual[i]!r} != reference {reference[i]!r}"
            )


class EpsilonMatchRule:
    """Floating-point values must agree within a relative tolerance.

    ``|a - r| <= epsilon * max(|a|, |r|)``; non-finite values (infinity
    for unreachable SSSP vertices) must match exactly.
    """

    name = "epsilon"

    def __init__(self, epsilon: float = 1e-4):
        self.epsilon = float(epsilon)

    def check(self, actual: np.ndarray, reference: np.ndarray) -> None:
        actual = np.asarray(actual, dtype=np.float64)
        reference = np.asarray(reference, dtype=np.float64)
        if actual.shape != reference.shape:
            raise ValidationError(
                f"shape mismatch: {actual.shape} vs reference {reference.shape}"
            )
        finite_a = np.isfinite(actual)
        finite_r = np.isfinite(reference)
        if not np.array_equal(finite_a, finite_r):
            bad = int(np.nonzero(finite_a != finite_r)[0][0])
            raise ValidationError(
                f"finiteness mismatch at dense index {bad}: "
                f"{actual[bad]!r} vs reference {reference[bad]!r}"
            )
        nonfinite = ~finite_a
        if np.any(nonfinite) and not np.array_equal(
            actual[nonfinite], reference[nonfinite]
        ):
            raise ValidationError("non-finite values disagree")
        a = actual[finite_a]
        r = reference[finite_r]
        tolerance = self.epsilon * np.maximum(np.abs(a), np.abs(r))
        bad = np.nonzero(np.abs(a - r) > tolerance)[0]
        if len(bad):
            i = int(bad[0])
            raise ValidationError(
                f"{len(bad)} vertices beyond epsilon={self.epsilon}; first: "
                f"{a[i]!r} vs reference {r[i]!r}"
            )


class EquivalenceMatchRule:
    """Outputs must induce the same partition of the vertex set."""

    name = "equivalence"

    def check(self, actual: np.ndarray, reference: np.ndarray) -> None:
        actual = np.asarray(actual)
        reference = np.asarray(reference)
        if actual.shape != reference.shape:
            raise ValidationError(
                f"shape mismatch: {actual.shape} vs reference {reference.shape}"
            )
        forward: Dict[object, object] = {}
        backward: Dict[object, object] = {}
        for i, (a, r) in enumerate(zip(actual.tolist(), reference.tolist())):
            if forward.setdefault(a, r) != r:
                raise ValidationError(
                    f"label {a!r} maps to both {forward[a]!r} and {r!r} "
                    f"(vertex dense index {i}): partitions differ"
                )
            if backward.setdefault(r, a) != a:
                raise ValidationError(
                    f"reference label {r!r} split across actual labels "
                    f"{backward[r]!r} and {a!r} (vertex dense index {i})"
                )


#: Algorithm acronym -> validation rule instance. Public so conformance
#: tooling (repro.lint REG001) can cross-check it against the registry.
VALIDATION_RULES = {
    "bfs": ExactMatchRule(),
    "pr": EpsilonMatchRule(),
    "wcc": EquivalenceMatchRule(),
    "cdlp": EquivalenceMatchRule(),
    "lcc": EpsilonMatchRule(),
    "sssp": EpsilonMatchRule(),
}

_RULES = VALIDATION_RULES


def validation_rule_for(acronym: str):
    """The validation rule instance used for an algorithm."""
    try:
        return _RULES[acronym.lower()]
    except KeyError:
        raise ValidationError(f"no validation rule for algorithm {acronym!r}") from None


def validate_output(acronym: str, actual: np.ndarray, reference: np.ndarray) -> None:
    """Raise :class:`ValidationError` unless actual matches the reference."""
    validation_rule_for(acronym).check(actual, reference)
