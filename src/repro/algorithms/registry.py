"""Algorithm registry: metadata + uniform dispatch for the six kernels.

The harness addresses algorithms by their Graphalytics acronym (``bfs``,
``pr``, ``wcc``, ``cdlp``, ``lcc``, ``sssp``). Each entry records the
survey class it was selected from (paper Table 1), whether it needs edge
weights, which parameters it takes, and a relative *work factor* used by
the platform performance models (work per edge relative to one BFS edge
visit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, UnsupportedAlgorithmError
from repro.graph.graph import Graph
from repro.algorithms.bfs import breadth_first_search
from repro.algorithms.pagerank import pagerank
from repro.algorithms.wcc import weakly_connected_components
from repro.algorithms.cdlp import community_detection_lp
from repro.algorithms.lcc import local_clustering_coefficient
from repro.algorithms.sssp import single_source_shortest_paths

__all__ = [
    "Algorithm",
    "ALGORITHMS",
    "UNWEIGHTED_ALGORITHMS",
    "WEIGHTED_ALGORITHMS",
    "get_algorithm",
    "run_reference",
]


@dataclass(frozen=True)
class Algorithm:
    """Static description of one core algorithm."""

    acronym: str
    name: str
    survey_class: str
    weighted: bool
    parameters: Tuple[str, ...]
    #: Work per edge relative to a BFS edge visit; consumed by perf models.
    work_factor: float
    #: Does per-vertex work grow with degree^2 (LCC)? Drives SLA failures.
    quadratic_in_degree: bool = False
    _runner: Callable = field(repr=False, default=None)  # type: ignore[assignment]

    def run(self, graph: Graph, params: Mapping[str, object] = None) -> np.ndarray:
        """Execute the reference implementation with validated parameters."""
        params = dict(params or {})
        unknown = set(params) - set(self.parameters)
        if unknown:
            raise ConfigurationError(
                f"{self.acronym}: unknown parameters {sorted(unknown)}"
            )
        return self._runner(graph, **params)


def _run_bfs(graph: Graph, source_vertex: int = None) -> np.ndarray:
    if source_vertex is None:
        raise ConfigurationError("bfs requires a source_vertex parameter")
    return breadth_first_search(graph, source_vertex)


def _run_pr(graph: Graph, iterations: int = 30, damping: float = 0.85) -> np.ndarray:
    return pagerank(graph, iterations=iterations, damping=damping)


def _run_wcc(graph: Graph) -> np.ndarray:
    return weakly_connected_components(graph)


def _run_cdlp(graph: Graph, iterations: int = 10) -> np.ndarray:
    return community_detection_lp(graph, iterations=iterations)


def _run_lcc(graph: Graph) -> np.ndarray:
    return local_clustering_coefficient(graph)


def _run_sssp(graph: Graph, source_vertex: int = None) -> np.ndarray:
    if source_vertex is None:
        raise ConfigurationError("sssp requires a source_vertex parameter")
    return single_source_shortest_paths(graph, source_vertex)


ALGORITHMS: Dict[str, Algorithm] = {
    "bfs": Algorithm(
        acronym="bfs",
        name="Breadth-first search",
        survey_class="Traversal",
        weighted=False,
        parameters=("source_vertex",),
        work_factor=1.0,
        _runner=_run_bfs,
    ),
    "pr": Algorithm(
        acronym="pr",
        name="PageRank",
        survey_class="Statistics",
        weighted=False,
        parameters=("iterations", "damping"),
        work_factor=7.5,
        _runner=_run_pr,
    ),
    "wcc": Algorithm(
        acronym="wcc",
        name="Weakly connected components",
        survey_class="Components",
        weighted=False,
        parameters=(),
        work_factor=3.0,
        _runner=_run_wcc,
    ),
    "cdlp": Algorithm(
        acronym="cdlp",
        name="Community detection using label propagation",
        survey_class="Components",
        weighted=False,
        parameters=("iterations",),
        work_factor=9.0,
        _runner=_run_cdlp,
    ),
    "lcc": Algorithm(
        acronym="lcc",
        name="Local clustering coefficient",
        survey_class="Statistics",
        weighted=False,
        parameters=(),
        work_factor=2.0,
        quadratic_in_degree=True,
        _runner=_run_lcc,
    ),
    "sssp": Algorithm(
        acronym="sssp",
        name="Single-source shortest paths",
        survey_class="Distances/Paths",
        weighted=True,
        parameters=("source_vertex",),
        work_factor=2.5,
        _runner=_run_sssp,
    ),
}

UNWEIGHTED_ALGORITHMS: Tuple[str, ...] = ("bfs", "pr", "wcc", "cdlp", "lcc")
WEIGHTED_ALGORITHMS: Tuple[str, ...] = ("sssp",)


def get_algorithm(acronym: str) -> Algorithm:
    """Look up an algorithm by acronym; raises for unknown names."""
    try:
        return ALGORITHMS[acronym.lower()]
    except KeyError:
        raise UnsupportedAlgorithmError("<registry>", acronym) from None


def run_reference(
    acronym: str, graph: Graph, params: Mapping[str, object] = None
) -> np.ndarray:
    """Run a reference implementation by acronym."""
    return get_algorithm(acronym).run(graph, params)
