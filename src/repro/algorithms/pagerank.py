"""PageRank (Page et al., 1999) per the Graphalytics specification.

A fixed number of synchronous iterations of

    PR(v) = (1-d)/|V| + d * ( sum_{u -> v} PR(u)/outdeg(u)  +  D/|V| )

where ``d`` is the damping factor (0.85 by default, as in the official
benchmark) and ``D`` is the summed rank of *dangling* vertices (outdegree
zero), redistributed uniformly. Undirected graphs treat each edge as two
directed edges, so no vertex with an edge is dangling.

The iteration count is a workload parameter fixed per dataset in the
benchmark description (paper Figure 1, component 1), which makes the
algorithm deterministic across platforms.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GenerationError
from repro.algorithms.common import expand_sources
from repro.graph.graph import Graph

__all__ = ["pagerank"]


def pagerank(
    graph: Graph,
    *,
    iterations: int = 30,
    damping: float = 0.85,
) -> np.ndarray:
    """Run a fixed number of PageRank iterations; returns float64 ranks.

    Ranks sum to 1 (up to floating-point error) because dangling mass is
    redistributed every iteration.
    """
    if iterations < 0:
        raise GenerationError(f"iterations must be >= 0, got {iterations}")
    if not 0.0 <= damping <= 1.0:
        raise GenerationError(f"damping must be in [0,1], got {damping}")
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.float64)

    out_degree = graph.out_degrees().astype(np.float64)
    dangling = out_degree == 0
    # CSR slots give us the full directed edge expansion (both directions
    # for undirected graphs); source of each slot:
    sources = expand_sources(graph.out_indptr)
    targets = graph.out_indices

    rank = np.full(n, 1.0 / n, dtype=np.float64)
    base = (1.0 - damping) / n
    for _ in range(iterations):
        contrib = np.zeros(n, dtype=np.float64)
        np.divide(rank, out_degree, out=contrib, where=~dangling)
        incoming = np.bincount(targets, weights=contrib[sources], minlength=n)
        dangling_share = rank[dangling].sum() / n
        rank = base + damping * (incoming + dangling_share)
    return rank
