"""Breadth-first search.

Graphalytics definition: for every vertex, the minimum number of hops
required to reach it from a given source vertex. Directed graphs follow
out-edges only. Unreachable vertices are assigned
:data:`BFS_UNREACHABLE` (the official Graphalytics reference output uses
the maximum signed 64-bit integer for unreachable vertices).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphFormatError
from repro.algorithms.common import gather_neighbors
from repro.graph.graph import Graph

__all__ = ["breadth_first_search", "BFS_UNREACHABLE"]

#: Depth assigned to vertices not reachable from the source.
BFS_UNREACHABLE: int = np.iinfo(np.int64).max


def breadth_first_search(graph: Graph, source: int) -> np.ndarray:
    """Level-synchronous BFS from ``source`` (an external vertex id).

    Returns an int64 array of hop counts indexed by dense vertex index;
    unreachable vertices hold :data:`BFS_UNREACHABLE`.
    """
    if not graph.has_vertex(source):
        raise GraphFormatError(f"BFS source vertex {source} not in graph")
    n = graph.num_vertices
    depth = np.full(n, BFS_UNREACHABLE, dtype=np.int64)
    root = graph.index_of(source)
    depth[root] = 0
    frontier = np.array([root], dtype=np.int64)
    level = 0
    indptr, indices = graph.out_indptr, graph.out_indices
    while len(frontier) > 0:
        level += 1
        candidates = gather_neighbors(indptr, indices, frontier)
        if len(candidates) == 0:
            break
        fresh = candidates[depth[candidates] == BFS_UNREACHABLE]
        if len(fresh) == 0:
            break
        frontier = np.unique(fresh)
        depth[frontier] = level
    return depth
