"""Shared vectorized CSR helpers for the algorithm kernels."""

from __future__ import annotations

import numpy as np

__all__ = ["gather_neighbors", "expand_sources", "intersect_count"]


def gather_neighbors(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """All neighbors of the frontier vertices, concatenated (with repeats).

    Fully vectorized: equivalent to
    ``np.concatenate([indices[indptr[v]:indptr[v+1]] for v in frontier])``
    without the Python loop.
    """
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype)
    # Positions within each segment: 0..count-1, laid out back to back.
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    within = np.arange(total, dtype=np.int64) - offsets
    return indices[np.repeat(starts, counts) + within]


def expand_sources(indptr: np.ndarray) -> np.ndarray:
    """Source vertex of every CSR slot: [0]*deg(0) + [1]*deg(1) + ..."""
    n = len(indptr) - 1
    return np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))


def intersect_count(a: np.ndarray, b: np.ndarray) -> int:
    """|a ∩ b| for two sorted, duplicate-free int arrays."""
    if len(a) == 0 or len(b) == 0:
        return 0
    if len(a) > len(b):
        a, b = b, a
    pos = np.searchsorted(b, a)
    pos[pos == len(b)] = len(b) - 1
    return int(np.count_nonzero(b[pos] == a))
