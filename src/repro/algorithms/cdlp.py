"""Community detection using label propagation (CDLP).

Graphalytics selects the label-propagation algorithm of Raghavan et
al. [34], "modified slightly to be both parallel and deterministic" [24]:

* every vertex starts with its own (external) id as label;
* each iteration is synchronous: every vertex simultaneously adopts the
  label that is most frequent among its neighbors' previous labels,
  breaking frequency ties by choosing the *smallest* label;
* for directed graphs both in- and out-neighbors are considered, and a
  vertex connected in both directions is counted twice;
* the number of iterations is a fixed workload parameter, making the
  output deterministic.

Vertices without neighbors keep their own label.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GenerationError
from repro.algorithms.common import expand_sources
from repro.graph.graph import Graph

__all__ = ["community_detection_lp"]


def _most_frequent_min_label(
    n: int, receivers: np.ndarray, labels_in: np.ndarray
) -> np.ndarray:
    """Per receiver, the most frequent label (ties -> smallest label).

    ``receivers[k]`` hears label ``labels_in[k]``. Returns an int64 array
    of length n with -1 for vertices that hear nothing.
    """
    result = np.full(n, -1, dtype=np.int64)
    if len(receivers) == 0:
        return result
    order = np.lexsort((labels_in, receivers))
    recv = receivers[order]
    labs = labels_in[order]
    # Run-length encode (receiver, label) pairs.
    boundary = np.empty(len(recv), dtype=bool)
    boundary[0] = True
    boundary[1:] = (recv[1:] != recv[:-1]) | (labs[1:] != labs[:-1])
    starts = np.nonzero(boundary)[0]
    counts = np.diff(np.append(starts, len(recv)))
    group_recv = recv[starts]
    group_lab = labs[starts]
    # Pick per receiver: max count, then min label. Sorting by
    # (receiver, -count, label) and keeping the first row per receiver
    # implements exactly that ordering.
    pick = np.lexsort((group_lab, -counts, group_recv))
    sorted_recv = group_recv[pick]
    first = np.empty(len(pick), dtype=bool)
    first[0] = True
    first[1:] = sorted_recv[1:] != sorted_recv[:-1]
    winners = pick[first]
    result[group_recv[winners]] = group_lab[winners]
    return result


def community_detection_lp(graph: Graph, *, iterations: int = 10) -> np.ndarray:
    """Deterministic synchronous label propagation; returns int64 labels.

    The returned array is indexed by dense vertex index and holds external
    vertex ids (community labels).
    """
    if iterations < 0:
        raise GenerationError(f"iterations must be >= 0, got {iterations}")
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)

    # Message fabric: every CSR out-slot sends the source's label to the
    # target. For undirected graphs the CSR already contains both
    # directions. For directed graphs we additionally send along reversed
    # edges so each vertex hears both in- and out-neighbors (bidirectional
    # pairs then naturally count twice, per the spec).
    out_sources = expand_sources(graph.out_indptr)
    out_targets = graph.out_indices
    if graph.directed:
        in_sources = expand_sources(graph.in_indptr)
        in_targets = graph.in_indices
        senders = np.concatenate([out_sources, in_sources])
        receivers = np.concatenate([out_targets, in_targets])
    else:
        senders = out_sources
        receivers = out_targets

    labels = graph.vertex_ids.astype(np.int64).copy()
    for _ in range(iterations):
        heard = _most_frequent_min_label(n, receivers, labels[senders])
        updated = labels.copy()
        has_neighbors = heard >= 0
        updated[has_neighbors] = heard[has_neighbors]
        if np.array_equal(updated, labels):
            break
        labels = updated
    return labels
