"""Weakly connected components.

Graphalytics definition: determine the weakly connected component each
vertex belongs to (edge direction is ignored). The reference output
labels every vertex with the *smallest external vertex id* in its
component, which is one canonical representative; validation nevertheless
uses the equivalence rule, so any consistent labeling passes.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph

__all__ = ["weakly_connected_components"]


def weakly_connected_components(graph: Graph) -> np.ndarray:
    """Label propagation to the minimum id; returns int64 labels.

    The returned array is indexed by dense vertex index and holds external
    vertex ids (the minimum id of each component). Runs in
    O((V+E) * number_of_label_propagation_rounds); rounds are bounded by
    the graph diameter thanks to two-sided propagation.
    """
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    # Work on dense indices first (monotone with external ids because the
    # builder sorts ids ascending), then translate at the end.
    labels = np.arange(n, dtype=np.int64)
    src = graph.edge_src
    dst = graph.edge_dst
    while True:
        new_labels = labels.copy()
        # Propagate the smaller label across every edge, both directions.
        np.minimum.at(new_labels, dst, labels[src])
        np.minimum.at(new_labels, src, labels[dst])
        # Pointer-jumping: compress chains so convergence needs only
        # O(log n) rounds on long paths.
        while True:
            jumped = new_labels[new_labels]
            if np.array_equal(jumped, new_labels):
                break
            new_labels = jumped
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    return graph.vertex_ids[labels]
