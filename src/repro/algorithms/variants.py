"""Alternative kernel implementations used by real platforms.

The paper's platforms implement the same abstract algorithms very
differently — §4.1 attributes OpenG's R2 win to its *queue-based* BFS
versus the iterative full-sweep BFS of matrix platforms, and
delta-stepping is the standard distributed SSSP. These variants exist
to make that design space concrete; each is output-equivalent to the
reference implementation (enforced by the validation rules in the test
suite).

* :func:`bfs_queue` — sequential frontier-queue BFS (OpenG style): work
  proportional to the *reached* part of the graph;
* :func:`bfs_bottom_up` — level-synchronous BFS with the bottom-up step
  (direction-optimizing BFS, Beamer et al.): unvisited vertices scan
  their in-neighbors;
* :func:`sssp_delta_stepping` — bucketed label-correcting SSSP;
* :func:`sssp_bellman_ford` — iterative edge relaxation (the shape a
  Pregel SSSP takes).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.exceptions import GraphFormatError
from repro.algorithms.bfs import BFS_UNREACHABLE
from repro.algorithms.sssp import SSSP_UNREACHABLE
from repro.graph.graph import Graph

__all__ = [
    "bfs_queue",
    "bfs_bottom_up",
    "sssp_delta_stepping",
    "sssp_bellman_ford",
]


def bfs_queue(graph: Graph, source: int) -> np.ndarray:
    """FIFO-queue BFS: touches only reached vertices (OpenG style)."""
    if not graph.has_vertex(source):
        raise GraphFormatError(f"BFS source vertex {source} not in graph")
    depth = np.full(graph.num_vertices, BFS_UNREACHABLE, dtype=np.int64)
    root = graph.index_of(source)
    depth[root] = 0
    queue = deque([root])
    indptr, indices = graph.out_indptr, graph.out_indices
    while queue:
        v = queue.popleft()
        next_depth = depth[v] + 1
        for u in indices[indptr[v]:indptr[v + 1]]:
            if depth[u] == BFS_UNREACHABLE:
                depth[u] = next_depth
                queue.append(int(u))
    return depth


def bfs_bottom_up(graph: Graph, source: int, *, switch_fraction: float = 0.05) -> np.ndarray:
    """Direction-optimizing BFS: top-down until the frontier is large,
    then bottom-up (every unvisited vertex probes its in-neighbors)."""
    if not graph.has_vertex(source):
        raise GraphFormatError(f"BFS source vertex {source} not in graph")
    n = graph.num_vertices
    depth = np.full(n, BFS_UNREACHABLE, dtype=np.int64)
    root = graph.index_of(source)
    depth[root] = 0
    frontier = np.zeros(n, dtype=bool)
    frontier[root] = True
    level = 0
    out_indptr, out_indices = graph.out_indptr, graph.out_indices
    in_indptr, in_indices = graph.in_indptr, graph.in_indices
    while frontier.any():
        level += 1
        next_frontier = np.zeros(n, dtype=bool)
        if frontier.sum() < switch_fraction * n:
            # Top-down: expand the frontier's out-edges.
            for v in np.nonzero(frontier)[0]:
                for u in out_indices[out_indptr[v]:out_indptr[v + 1]]:
                    if depth[u] == BFS_UNREACHABLE:
                        depth[u] = level
                        next_frontier[u] = True
        else:
            # Bottom-up: every unvisited vertex checks its in-neighbors.
            for u in np.nonzero(depth == BFS_UNREACHABLE)[0]:
                parents = in_indices[in_indptr[u]:in_indptr[u + 1]]
                if len(parents) and frontier[parents].any():
                    depth[u] = level
                    next_frontier[u] = True
        frontier = next_frontier
    return depth


def sssp_delta_stepping(graph: Graph, source: int, *, delta: float = None) -> np.ndarray:
    """Bucketed label-correcting SSSP (Meyer & Sanders)."""
    if not graph.is_weighted:
        raise GraphFormatError("SSSP requires a weighted graph")
    if not graph.has_vertex(source):
        raise GraphFormatError(f"SSSP source vertex {source} not in graph")
    weights = graph.out_weights
    if delta is None:
        positive = weights[weights > 0]
        delta = float(positive.mean()) if len(positive) else 1.0
    if delta <= 0:
        raise GraphFormatError(f"delta must be positive, got {delta}")

    n = graph.num_vertices
    dist = np.full(n, SSSP_UNREACHABLE, dtype=np.float64)
    root = graph.index_of(source)
    dist[root] = 0.0
    buckets = {0: {root}}
    indptr, indices = graph.out_indptr, graph.out_indices

    def relax(u: int, candidate: float) -> None:
        if candidate < dist[u]:
            old = dist[u]
            if np.isfinite(old):
                buckets.get(int(old / delta), set()).discard(u)
            dist[u] = candidate
            buckets.setdefault(int(candidate / delta), set()).add(u)

    while buckets:
        i = min(buckets)
        current = buckets.pop(i)
        settled = set()
        # Light-edge phase: repeat while relaxations refill bucket i.
        while current:
            settled |= current
            requests = []
            # Sorted iteration keeps relaxation order (and thus float
            # tie-breaking) independent of set hashing — the benchmark's
            # determinism requirement applies to variants too.
            for v in sorted(current):
                for slot in range(indptr[v], indptr[v + 1]):
                    if weights[slot] <= delta:
                        requests.append((int(indices[slot]), dist[v] + weights[slot]))
            current = set()
            for u, candidate in requests:
                before = dist[u]
                relax(u, candidate)
                if dist[u] < before and int(dist[u] / delta) == i:
                    current.add(u)  # settled vertices may legally re-enter
            if i in buckets:
                current |= buckets.pop(i)
        # Heavy-edge phase.
        for v in sorted(settled):
            for slot in range(indptr[v], indptr[v + 1]):
                if weights[slot] > delta:
                    relax(int(indices[slot]), dist[v] + weights[slot])
    return dist


def sssp_bellman_ford(graph: Graph, source: int) -> np.ndarray:
    """Synchronous iterative relaxation (the Pregel-style SSSP)."""
    if not graph.is_weighted:
        raise GraphFormatError("SSSP requires a weighted graph")
    if not graph.has_vertex(source):
        raise GraphFormatError(f"SSSP source vertex {source} not in graph")
    n = graph.num_vertices
    dist = np.full(n, SSSP_UNREACHABLE, dtype=np.float64)
    dist[graph.index_of(source)] = 0.0
    sources = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(graph.out_indptr)
    )
    targets = graph.out_indices
    weights = graph.out_weights
    for _ in range(n):
        candidates = dist[sources] + weights
        updated = dist.copy()
        np.minimum.at(updated, targets, candidates)
        if np.array_equal(updated, dist):
            break
        dist = updated
    return dist
