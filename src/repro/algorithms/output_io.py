"""Reference-output files: ``<vertex-id> <value>`` per line.

The Graphalytics benchmark ships *reference output* for every
(algorithm, dataset) pair; a platform's output file is validated against
it (paper §2.2.3 and Figure 1's "Results Validation" box). This module
reads and writes that format:

* integer values for BFS (unreachable = max int64), WCC and CDLP labels;
* float values (``repr``-round-trip doubles) for PR, LCC and SSSP, with
  ``infinity`` spelled out for unreachable SSSP vertices.
"""

from __future__ import annotations

import math
import os
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.exceptions import GraphFormatError, ValidationError
from repro.algorithms.registry import get_algorithm
from repro.graph.graph import Graph
from repro.ioutil import atomic_write

__all__ = [
    "write_output",
    "read_output",
    "align_output",
    "validate_output_file",
]

PathLike = Union[str, os.PathLike]

#: Algorithms whose per-vertex values are integers.
_INTEGER_VALUED = frozenset({"bfs", "wcc", "cdlp"})


def _is_integer_valued(algorithm: str) -> bool:
    get_algorithm(algorithm)  # raises for unknown acronyms
    return algorithm.lower() in _INTEGER_VALUED


def write_output(
    graph: Graph, values: np.ndarray, path: PathLike, *, algorithm: str
) -> Path:
    """Write a per-vertex output array (dense-index order) to a file."""
    values = np.asarray(values)
    if len(values) != graph.num_vertices:
        raise ValidationError(
            f"output has {len(values)} values for {graph.num_vertices} vertices"
        )
    path = Path(path)
    integer = _is_integer_valued(algorithm)
    # Reference outputs are archive artifacts: an in-place rewrite torn
    # by a crash would fail every later validation against this pair.
    lines = []
    for idx in range(graph.num_vertices):
        vid = int(graph.vertex_ids[idx])
        value = values[idx]
        if integer:
            lines.append(f"{vid} {int(value)}\n")
        else:
            v = float(value)
            if math.isinf(v):
                lines.append(f"{vid} infinity\n")
            else:
                lines.append(f"{vid} {v!r}\n")
    atomic_write(path, "".join(lines))
    return path


def read_output(path: PathLike, *, algorithm: str) -> Dict[int, Union[int, float]]:
    """Read an output file into ``{vertex_id: value}``."""
    integer = _is_integer_valued(algorithm)
    out: Dict[int, Union[int, float]] = {}
    with open(path, "r", encoding="ascii") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise GraphFormatError(
                    f"output line {lineno}: expected 2 fields, got {len(parts)}"
                )
            try:
                vid = int(parts[0])
                if integer:
                    value: Union[int, float] = int(parts[1])
                elif parts[1].lower() in ("infinity", "inf", "+inf"):
                    value = float("inf")
                else:
                    value = float(parts[1])
            except ValueError as exc:
                raise GraphFormatError(f"output line {lineno}: {exc}") from exc
            if vid in out:
                raise GraphFormatError(
                    f"output line {lineno}: duplicate vertex {vid}"
                )
            out[vid] = value
    return out


def align_output(graph: Graph, mapping: Dict[int, Union[int, float]], *,
                 algorithm: str) -> np.ndarray:
    """Turn a ``{vertex_id: value}`` mapping into a dense-index array."""
    if set(mapping) != {int(v) for v in graph.vertex_ids}:
        missing = {int(v) for v in graph.vertex_ids} - set(mapping)
        extra = set(mapping) - {int(v) for v in graph.vertex_ids}
        raise ValidationError(
            f"output vertex set mismatch: {len(missing)} missing, "
            f"{len(extra)} extra"
        )
    dtype = np.int64 if _is_integer_valued(algorithm) else np.float64
    values = np.empty(graph.num_vertices, dtype=dtype)
    for idx in range(graph.num_vertices):
        values[idx] = mapping[int(graph.vertex_ids[idx])]
    return values


def validate_output_file(
    graph: Graph,
    path: PathLike,
    reference: np.ndarray,
    *,
    algorithm: str,
) -> None:
    """Validate an output *file* against a reference array.

    Raises :class:`ValidationError` on any mismatch — the exact check a
    platform submission goes through.
    """
    from repro.algorithms.validation import validate_output

    mapping = read_output(path, algorithm=algorithm)
    actual = align_output(graph, mapping, algorithm=algorithm)
    validate_output(algorithm, actual, reference)
