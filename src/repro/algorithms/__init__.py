"""The six Graphalytics core algorithms and output validation.

Paper §2.2.3 selects five core algorithms for unweighted graphs — BFS,
PageRank, WCC, CDLP, LCC — and one for weighted graphs, SSSP. Each
module provides the reference implementation; correctness of a platform
is *defined* as output equivalence to these references (validated by the
rules in :mod:`repro.algorithms.validation`).

All algorithms are deterministic, take dense vertex indices internally,
and return numpy arrays indexed by dense index. Use :func:`as_vertex_map`
to convert to an ``{external_id: value}`` mapping.
"""

from typing import Dict

import numpy as np

from repro.algorithms.bfs import breadth_first_search, BFS_UNREACHABLE
from repro.algorithms.pagerank import pagerank
from repro.algorithms.wcc import weakly_connected_components
from repro.algorithms.cdlp import community_detection_lp
from repro.algorithms.lcc import local_clustering_coefficient
from repro.algorithms.sssp import single_source_shortest_paths, SSSP_UNREACHABLE
from repro.algorithms.registry import (
    Algorithm,
    ALGORITHMS,
    UNWEIGHTED_ALGORITHMS,
    WEIGHTED_ALGORITHMS,
    get_algorithm,
    run_reference,
)
from repro.algorithms.validation import (
    ExactMatchRule,
    EpsilonMatchRule,
    EquivalenceMatchRule,
    validation_rule_for,
    validate_output,
)
from repro.algorithms.extras import (
    triangle_count,
    diameter,
    estimate_diameter,
    average_clustering_coefficient,
    degree_distribution,
    assortativity,
)
from repro.algorithms.output_io import (
    write_output,
    read_output,
    align_output,
    validate_output_file,
)
from repro.algorithms import variants


def as_vertex_map(graph, values: np.ndarray) -> Dict[int, object]:
    """Convert a dense-index result array to {external_vertex_id: value}."""
    ids = graph.vertex_ids
    return {int(ids[i]): values[i].item() for i in range(len(ids))}


__all__ = [
    "breadth_first_search",
    "BFS_UNREACHABLE",
    "pagerank",
    "weakly_connected_components",
    "community_detection_lp",
    "local_clustering_coefficient",
    "single_source_shortest_paths",
    "SSSP_UNREACHABLE",
    "Algorithm",
    "ALGORITHMS",
    "UNWEIGHTED_ALGORITHMS",
    "WEIGHTED_ALGORITHMS",
    "get_algorithm",
    "run_reference",
    "ExactMatchRule",
    "EpsilonMatchRule",
    "EquivalenceMatchRule",
    "validation_rule_for",
    "validate_output",
    "as_vertex_map",
    "triangle_count",
    "diameter",
    "estimate_diameter",
    "average_clustering_coefficient",
    "degree_distribution",
    "assortativity",
    "write_output",
    "read_output",
    "align_output",
    "validate_output_file",
    "variants",
]
