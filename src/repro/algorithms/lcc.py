"""Local clustering coefficient (LCC).

Graphalytics definition: for each vertex, the ratio between the number of
edges that exist between its neighbors and the maximum number of such
edges. Formally, with ``N(v)`` the neighborhood of ``v`` (union of in-
and out-neighbors, excluding ``v`` itself):

    lcc(v) = |{(u, w) in E : u, w in N(v)}| / (|N(v)| * (|N(v)| - 1))

Ordered pairs are counted, so in an undirected graph each triangle edge
contributes twice (both (u,w) and (w,u) are "in E") and the familiar
``2T / (d (d-1))`` formula is recovered. Vertices with fewer than two
neighbors have LCC 0.

This is the most demanding of the six algorithms — O(sum_v d(v)^2)
neighborhood intersections — which is why the paper observes SLA failures
for LCC on dense graphs (§4.2).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import gather_neighbors
from repro.graph.graph import Graph

__all__ = ["local_clustering_coefficient"]


def local_clustering_coefficient(graph: Graph, vertices=None) -> np.ndarray:
    """LCC of every vertex; returns a float64 array of values in [0, 1].

    Per vertex, the neighborhood's out-edges are gathered in one
    vectorized pass and membership-tested against the (sorted)
    neighborhood with a single ``searchsorted`` — the Python-level loop
    is only over vertices, not over the degree-squared edge pairs.

    ``vertices`` restricts computation to the given dense indices (the
    partitioned engine computes each shard's owned vertices this way);
    the returned array is still full-length, zero elsewhere. Each
    vertex's value depends only on its own neighborhood, so a sharded
    union over any vertex partition is bit-identical to the full run.
    """
    n = graph.num_vertices
    result = np.zeros(n, dtype=np.float64)
    if n == 0:
        return result

    out_indptr, out_indices = graph.out_indptr, graph.out_indices
    in_indptr, in_indices = graph.in_indptr, graph.in_indices
    directed = graph.directed

    targets = range(n) if vertices is None else [int(v) for v in vertices]
    for v in targets:
        out_nb = out_indices[out_indptr[v]:out_indptr[v + 1]]
        if directed:
            in_nb = in_indices[in_indptr[v]:in_indptr[v + 1]]
            neighborhood = np.union1d(out_nb, in_nb)
        else:
            neighborhood = out_nb  # already sorted and duplicate-free
        neighborhood = neighborhood[neighborhood != v]
        d = len(neighborhood)
        if d < 2:
            continue
        # Count directed edges (u -> w) with both endpoints in the
        # neighborhood: gather every neighbor's out-list at once and
        # membership-test against the sorted neighborhood. (An
        # undirected CSR stores each edge in both directions, so the
        # count is over ordered pairs in both cases.)
        candidates = gather_neighbors(out_indptr, out_indices, neighborhood)
        pos = np.searchsorted(neighborhood, candidates)
        pos[pos == d] = d - 1
        links = int(np.count_nonzero(neighborhood[pos] == candidates))
        result[v] = links / (d * (d - 1))
    return result
