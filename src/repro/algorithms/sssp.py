"""Single-source shortest paths (SSSP) on double-precision edge weights.

Graphalytics definition: the length of the shortest path from a given
source vertex to every other vertex, for graphs with double-precision
floating-point non-negative edge weights. Directed graphs follow
out-edges. Unreachable vertices get :data:`SSSP_UNREACHABLE` (infinity,
matching the official reference output).

The reference implementation is Dijkstra's algorithm with a binary heap;
lazily-deleted heap entries keep it O((V + E) log V).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.exceptions import GraphFormatError
from repro.graph.graph import Graph

__all__ = ["single_source_shortest_paths", "SSSP_UNREACHABLE"]

#: Distance assigned to vertices not reachable from the source.
SSSP_UNREACHABLE: float = float("inf")


def single_source_shortest_paths(graph: Graph, source: int) -> np.ndarray:
    """Dijkstra from ``source`` (external id); returns float64 distances."""
    if not graph.is_weighted:
        raise GraphFormatError("SSSP requires a weighted graph")
    if not graph.has_vertex(source):
        raise GraphFormatError(f"SSSP source vertex {source} not in graph")
    weights = graph.out_weights
    if weights is not None and len(weights) and float(weights.min()) < 0:
        raise GraphFormatError("SSSP requires non-negative edge weights")

    n = graph.num_vertices
    dist = np.full(n, SSSP_UNREACHABLE, dtype=np.float64)
    root = graph.index_of(source)
    dist[root] = 0.0
    indptr, indices = graph.out_indptr, graph.out_indices
    heap = [(0.0, root)]
    settled = np.zeros(n, dtype=bool)
    while heap:
        d, v = heapq.heappop(heap)
        if settled[v]:
            continue
        settled[v] = True
        lo, hi = indptr[v], indptr[v + 1]
        for slot in range(lo, hi):
            u = indices[slot]
            if settled[u]:
                continue
            candidate = d + weights[slot]
            if candidate < dist[u]:
                dist[u] = candidate
                heapq.heappush(heap, (candidate, int(u)))
    return dist
