"""Extension algorithms: the global metrics the paper's introduction names.

§1 motivates graph analysis with "complex and holistic graph
computations ... such as global metrics (e.g., diameter, triangle
count) or clustering". These are not part of the six-core workload, but
they are the natural candidates of a future renewal round (§2.4), so the
library ships reference implementations:

* :func:`triangle_count` — global triangle count;
* :func:`diameter` — exact graph diameter (all-sources BFS);
* :func:`estimate_diameter` — the double-sweep lower bound, usable at
  scales where the exact computation is infeasible;
* :func:`average_clustering_coefficient` — the graph-level mean LCC
  (Datagen's tunable target, §2.5.1);
* :func:`degree_distribution` — histogram of degrees;
* :func:`assortativity` — degree assortativity (Pearson over edges).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.exceptions import GraphFormatError
from repro.algorithms.bfs import BFS_UNREACHABLE, breadth_first_search
from repro.algorithms.lcc import local_clustering_coefficient
from repro.graph.graph import Graph

__all__ = [
    "triangle_count",
    "diameter",
    "estimate_diameter",
    "average_clustering_coefficient",
    "degree_distribution",
    "assortativity",
]


def triangle_count(graph: Graph) -> int:
    """Number of triangles (unordered vertex triples forming a 3-cycle).

    Directed graphs are treated as undirected (a triangle exists when
    the three underlying edges exist in any orientation), matching the
    common "global triangle count" metric.
    """
    undirected = graph.to_undirected() if graph.directed else graph
    indptr, indices = undirected.out_indptr, undirected.out_indices
    total = 0
    # Count each triangle once: for edge (u, v) with u < v, count common
    # neighbors w > v.
    for u in range(undirected.num_vertices):
        nbrs_u = indices[indptr[u]:indptr[u + 1]]
        higher = nbrs_u[nbrs_u > u]
        for v in higher:
            nbrs_v = indices[indptr[v]:indptr[v + 1]]
            above = nbrs_v[nbrs_v > v]
            if len(above) == 0:
                continue
            pos = np.searchsorted(higher, above)
            pos[pos == len(higher)] = len(higher) - 1
            total += int(np.count_nonzero(higher[pos] == above))
    return total


def _eccentricity(graph: Graph, source: int) -> int:
    depths = breadth_first_search(graph, source)
    finite = depths[depths != BFS_UNREACHABLE]
    return int(finite.max())


def diameter(graph: Graph) -> int:
    """Exact diameter of the largest weakly connected component.

    O(V (V+E)): all-sources BFS. Use :func:`estimate_diameter` for
    anything beyond miniature scale. Directed graphs are measured on
    the underlying undirected structure (hop diameter).
    """
    if graph.num_vertices == 0:
        raise GraphFormatError("diameter of an empty graph is undefined")
    undirected = graph.to_undirected() if graph.directed else graph
    best = 0
    for v in range(undirected.num_vertices):
        best = max(best, _eccentricity(undirected, undirected.id_of(v)))
    return best


def estimate_diameter(graph: Graph, *, sweeps: int = 4, seed: int = 0) -> int:
    """Double-sweep lower bound on the diameter.

    Repeatedly: BFS from a vertex, then BFS from the farthest vertex
    found; the second eccentricity is a lower bound that is exact on
    trees and empirically tight on real-world graphs.
    """
    if graph.num_vertices == 0:
        raise GraphFormatError("diameter of an empty graph is undefined")
    undirected = graph.to_undirected() if graph.directed else graph
    rng = np.random.default_rng(seed)
    best = 0
    for _ in range(max(1, sweeps)):
        start = int(undirected.vertex_ids[rng.integers(undirected.num_vertices)])
        depths = breadth_first_search(undirected, start)
        reachable = np.nonzero(depths != BFS_UNREACHABLE)[0]
        far = reachable[np.argmax(depths[reachable])]
        best = max(best, _eccentricity(undirected, undirected.id_of(int(far))))
    return best


def average_clustering_coefficient(graph: Graph) -> float:
    """Mean LCC over all vertices (Datagen's tunable target)."""
    values = local_clustering_coefficient(graph)
    return float(values.mean()) if len(values) else 0.0


def degree_distribution(graph: Graph) -> Dict[int, int]:
    """{degree: vertex count}, using total degree for directed graphs."""
    degrees = graph.degrees()
    unique, counts = np.unique(degrees, return_counts=True)
    return {int(d): int(c) for d, c in zip(unique, counts)}


def assortativity(graph: Graph) -> float:
    """Degree assortativity: Pearson correlation of endpoint degrees.

    Positive values mean hubs link to hubs (social networks); negative
    values mean hubs link to leaves (internet-like graphs). Returns 0
    for degenerate cases (no edges or constant degrees).
    """
    if graph.num_edges == 0:
        return 0.0
    degrees = graph.degrees().astype(np.float64)
    # For undirected graphs, each edge contributes both orientations.
    x = np.concatenate([degrees[graph.edge_src], degrees[graph.edge_dst]])
    y = np.concatenate([degrees[graph.edge_dst], degrees[graph.edge_src]])
    if x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])
