"""Canned cross-run queries over the results store.

Three questions the paper's public repository exists to answer, each
surfaced as a ``graphalytics db`` subcommand:

* :func:`top` / :func:`best_platform` — across all stored runs, which
  platform ran a workload fastest (§5's cross-platform comparison);
* :func:`trend` — how one platform x algorithm x dataset cell moved
  across runs and commits (the longitudinal tracking BENCH snapshots
  cannot give);
* :func:`regressions` — workloads at least ``threshold`` times slower
  in one run than another (the CI gate between two commits).

Answer-identity contract: SQL narrows and orders the candidate rows
(indexes on platform/algorithm/dataset make that cheap on a 500-run
store), but the final selection replays the retired JSON backend's
exact Python loops — same run_id iteration order, same strictly-lower
tie-breaking in ``best_platform``, same truthy-``tproc`` filter and
last-write-wins key index in ``regressions`` — so a migrated repository
answers every query identically to the directory of JSON blobs it
replaced. ``tests/resultsdb/test_migrate.py`` holds that line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.resultsdb.store import ResultsStore

__all__ = [
    "Regression",
    "RegressionQuery",
    "TopEntry",
    "TrendPoint",
    "best_platform",
    "regressions",
    "top",
    "trend",
]


@dataclass(frozen=True)
class Regression:
    """One workload where a newer run is slower than an older one."""

    platform: str
    algorithm: str
    dataset: str
    old_seconds: float
    new_seconds: float

    @property
    def slowdown(self) -> float:
        return self.new_seconds / self.old_seconds


@dataclass(frozen=True)
class RegressionQuery:
    """A regression comparison, with the inputs that produced it."""

    old_run: str
    new_run: str
    threshold: float
    regressions: List[Regression]


@dataclass(frozen=True)
class TopEntry:
    """One platform's best compliant time for a workload."""

    rank: int
    platform: str
    run_id: str
    tproc: float


@dataclass(frozen=True)
class TrendPoint:
    """One run's best compliant time for a fixed workload cell."""

    run_id: str
    commit_sha: str
    submitted_at: Optional[float]
    tproc: Optional[float]
    status: str


def _candidate_rows(
    store: ResultsStore, algorithm: str, dataset: str
) -> List[tuple]:
    """Compliant candidate jobs for a workload, in JSON-backend order.

    ``ORDER BY j.run_id, j.position`` is exactly the old backend's
    iteration order: sorted run ids (directory glob, sorted), then the
    archive's result list in sequence.
    """
    return store.query(
        "SELECT j.run_id, j.platform, j.modeled_processing_time"
        " FROM jobs j WHERE j.algorithm = ? AND j.dataset = ?"
        " AND j.status = 'succeeded' AND j.sla_compliant = 1"
        " AND j.modeled_processing_time IS NOT NULL"
        " ORDER BY j.run_id, j.position",
        (algorithm.lower(), dataset),
    )


def best_platform(
    store: ResultsStore, algorithm: str, dataset: str
) -> Optional[Dict[str, object]]:
    """Across all stored runs: the fastest compliant job for a workload.

    Same payload shape and tie-breaking as the JSON backend: the first
    strictly-lower time wins, so among equal times the earliest
    (run_id, position) keeps the crown.
    """
    best: Optional[Dict[str, object]] = None
    for run_id, platform, tproc in _candidate_rows(store, algorithm, dataset):
        if best is None or tproc < best["tproc"]:
            best = {"run_id": run_id, "platform": platform, "tproc": tproc}
    return best


def top(
    store: ResultsStore,
    algorithm: str,
    dataset: str,
    *,
    limit: Optional[int] = None,
) -> List[TopEntry]:
    """Platform leaderboard for one workload: each platform's best time.

    Generalizes :func:`best_platform` (its answer is always rank 1).
    Per platform the winning job follows the same first-strictly-lower
    rule; platforms rank by that best time, ties broken by platform
    name for a stable table.
    """
    best_per_platform: Dict[str, TopEntry] = {}
    for run_id, platform, tproc in _candidate_rows(store, algorithm, dataset):
        held = best_per_platform.get(platform)
        if held is None or tproc < held.tproc:
            best_per_platform[platform] = TopEntry(
                rank=0, platform=platform, run_id=run_id, tproc=tproc
            )
    ordered = sorted(
        best_per_platform.values(), key=lambda e: (e.tproc, e.platform)
    )
    if limit is not None:
        ordered = ordered[:limit]
    return [
        TopEntry(
            rank=index + 1,
            platform=entry.platform,
            run_id=entry.run_id,
            tproc=entry.tproc,
        )
        for index, entry in enumerate(ordered)
    ]


def trend(
    store: ResultsStore,
    platform: str,
    algorithm: str,
    dataset: str,
    *,
    machines: Optional[int] = None,
    threads: Optional[int] = None,
) -> List[TrendPoint]:
    """One cell's history across runs, in submission order.

    Submission order is the store's insertion order (``runs`` rowid) —
    the longitudinal axis the JSON backend never had. Within a run the
    cell's best compliant time is reported; a run where the cell only
    failed (or never met the SLA) contributes a point with ``tproc``
    ``None`` and the worst observed status, so gaps in the trend line
    are visible rather than silently dropped.
    """
    conditions = [
        "j.platform = ?", "j.algorithm = ?", "j.dataset = ?",
    ]
    parameters: List[object] = [platform, algorithm.lower(), dataset]
    if machines is not None:
        conditions.append("j.machines = ?")
        parameters.append(machines)
    if threads is not None:
        conditions.append("j.threads = ?")
        parameters.append(threads)
    rows = store.query(
        "SELECT r.rowid, r.run_id, r.commit_sha, r.submitted_at,"
        " j.modeled_processing_time, j.status, j.sla_compliant"
        " FROM jobs j JOIN runs r ON r.run_id = j.run_id"
        f" WHERE {' AND '.join(conditions)}"
        " ORDER BY r.rowid, j.position",
        parameters,
    )
    points: List[TrendPoint] = []
    by_rowid: Dict[int, int] = {}
    for rowid, run_id, commit_sha, submitted_at, tproc, status, ok in rows:
        usable = status == "succeeded" and ok and tproc is not None
        if rowid not in by_rowid:
            by_rowid[rowid] = len(points)
            points.append(
                TrendPoint(
                    run_id=run_id,
                    commit_sha=commit_sha,
                    submitted_at=submitted_at,
                    tproc=tproc if usable else None,
                    status=status,
                )
            )
            continue
        index = by_rowid[rowid]
        held = points[index]
        if usable and (held.tproc is None or tproc < held.tproc):
            points[index] = TrendPoint(
                run_id=held.run_id,
                commit_sha=held.commit_sha,
                submitted_at=held.submitted_at,
                tproc=tproc,
                status=status,
            )
    return points


def regressions(
    store: ResultsStore,
    old_run: str,
    new_run: str,
    *,
    threshold: float = 1.10,
) -> List[Regression]:
    """Workloads at least ``threshold`` times slower in the new run.

    The JSON backend's loops verbatim, fed from the ``record`` column:
    the old run builds a last-write-wins index keyed by
    (platform, algorithm, dataset, machines, threads) over jobs with a
    *truthy* modeled time, the new run's jobs look themselves up, and
    hits sort by descending slowdown.
    """
    old_index: Dict[tuple, float] = {}
    for record in store.run_records(old_run):
        if record.get("status") == "succeeded" and record.get(
            "modeled_processing_time"
        ):
            key = _workload_key(record)
            old_index[key] = record["modeled_processing_time"]
    found: List[Regression] = []
    for record in store.run_records(new_run):
        if not (
            record.get("status") == "succeeded"
            and record.get("modeled_processing_time")
        ):
            continue
        key = _workload_key(record)
        if key in old_index:
            old_time = old_index[key]
            new_time = record["modeled_processing_time"]
            if new_time > threshold * old_time:
                found.append(
                    Regression(
                        platform=record["platform"],
                        algorithm=record["algorithm"],
                        dataset=record["dataset"],
                        old_seconds=old_time,
                        new_seconds=new_time,
                    )
                )
    return sorted(found, key=lambda reg: -reg.slowdown)


def regression_query(
    store: ResultsStore,
    old_run: str,
    new_run: str,
    *,
    threshold: float = 1.10,
) -> RegressionQuery:
    """:func:`regressions` bundled with the inputs that produced it."""
    return RegressionQuery(
        old_run=old_run,
        new_run=new_run,
        threshold=threshold,
        regressions=regressions(
            store, old_run, new_run, threshold=threshold
        ),
    )


def _workload_key(record: Dict[str, object]) -> tuple:
    return (
        record.get("platform"),
        record.get("algorithm"),
        record.get("dataset"),
        record.get("machines"),
        record.get("threads"),
    )
