"""One-transaction migration of a legacy JSON results repository.

Through PR 9 the repository was a directory of ``{run_id}.json``
archives plus a ``.index.json`` shadow index and an ``.lock`` flock
sidecar. This module moves such a directory into a
:class:`~repro.resultsdb.store.ResultsStore` in a single transaction —
a crash (or an injected ``resultsdb.commit`` fault) mid-import leaves
the store untouched, never half-migrated — and proves losslessness by
round-tripping every imported run back to its exact archive bytes
before committing. Pre-PR-7 repositories (no index file at all) import
identically: the migration reads only the run archives, never the
index, which is retired rather than migrated.

Surfaced as ``graphalytics db import``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.exceptions import ConfigurationError
from repro.resultsdb.store import STORE_NAME, ResultsStore

__all__ = ["import_json_repository"]

#: Legacy sidecar files a JSON repository may contain; never archives.
_LEGACY_SIDECARS = (".index.json", ".lock")


def import_json_repository(
    root: Union[str, Path],
    store_path: Union[str, Path, None] = None,
    *,
    replace: bool = False,
    verify: bool = True,
) -> Dict[str, object]:
    """Import every run archive under ``root`` into the store.

    ``store_path`` defaults to ``root / results.db`` — the same default
    the :class:`~repro.harness.repository.ResultsRepository` facade
    uses, so a migrated directory keeps answering through the old API.
    With ``verify`` (the default) every archive must round-trip to its
    exact source bytes before anything is written, and each stored run
    is re-serialized from SQL afterwards and compared again; the first
    check aborts with the store untouched, the second can only fail on
    a store defect and would name the run.

    Returns a summary: imported run ids, skipped sidecar names, the
    store path, and post-import store stats.
    """
    root = Path(root)
    if not root.is_dir():
        raise ConfigurationError(
            f"legacy repository {str(root)!r} is not a directory"
        )
    if store_path is None:
        store_path = root / STORE_NAME
    # Dotfiles are the legacy layout's sidecars (.index.json, .lock),
    # not run archives — run ids never start with a dot. The store has
    # no such ambiguity; this is the last place the rule matters.
    archives = sorted(
        path
        for path in root.glob("*.json")
        if not path.name.startswith(".")
    )
    skipped = sorted(
        path.name for path in root.iterdir() if path.name in _LEGACY_SIDECARS
    )
    payloads: List[Dict[str, object]] = []
    source_bytes: Dict[str, bytes] = {}
    for path in archives:
        raw = path.read_bytes()
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"legacy archive {path.name} is not valid JSON: {exc}"
            ) from exc
        metadata = payload.get("metadata")
        if not isinstance(metadata, dict) or "run_id" not in metadata:
            raise ConfigurationError(
                f"legacy archive {path.name} lacks run metadata"
            )
        if str(metadata["run_id"]) != path.stem:
            raise ConfigurationError(
                f"legacy archive {path.name} claims run id "
                f"{metadata['run_id']!r}"
            )
        if verify:
            round_trip = json.dumps(payload, indent=1).encode("utf-8")
            if round_trip != raw:
                raise ConfigurationError(
                    f"legacy archive {path.name} does not round-trip to "
                    f"its own bytes; refusing to import a repository the "
                    f"store could not reproduce losslessly"
                )
        payloads.append(payload)
        source_bytes[path.stem] = raw
    with ResultsStore(store_path) as store:
        run_ids = store.submit_payloads(payloads, replace=replace)
        if verify:
            for run_id in run_ids:
                stored = store.canonical_bytes(run_id)
                if stored != source_bytes[run_id]:
                    raise ConfigurationError(
                        f"round-trip mismatch for run {run_id!r}: the "
                        f"store would not reproduce the archive bytes"
                    )
        stats = store.stats()
    return {
        "store": str(store_path),
        "imported": run_ids,
        "skipped": skipped,
        "verified": bool(verify),
        "stats": stats,
    }
