"""The durable results store: one SQLite query layer for every result.

The paper's Figure 1 (boxes 11-12) makes the public results repository
a first-class benchmark component. Through PR 9 ours was a directory of
JSON blobs guarded by an ``flock`` sidecar and a ``.index.json`` shadow
index — workable for one harness process, a bottleneck for the
multi-tenant service and useless for longitudinal queries ("how did
this platform x algorithm x dataset cell move across the last 40
commits?"). This package replaces that design with a stdlib-``sqlite3``
store in WAL mode:

* :mod:`repro.resultsdb.store` — schema (``runs``, ``jobs``, ``spans``,
  ``sla_breaches``), transactional submission (the ``resultsdb.commit``
  fault point guards the commit), and lossless archive round-trip;
* :mod:`repro.resultsdb.queries` — the canned queries behind
  ``graphalytics db top|trend|regressions``, answer-identical to the
  retired JSON backend;
* :mod:`repro.resultsdb.migrate` — one-transaction import of a legacy
  JSON repository, byte-identical on round-trip.

Every layer that needs results talks to this package:
:class:`repro.harness.repository.ResultsRepository` is a facade over
it, the service's run children commit outcomes, trace spans, and SLA
breaches into the spool store at terminal-commit time, ``healthz``
reports store statistics, and the Granula visualizer renders span
timelines and regression tables straight from SQL. Lint rule ROB003
keeps it that way: ``sqlite3.connect`` outside this package is a
finding.
"""

from repro.resultsdb.migrate import import_json_repository
from repro.resultsdb.queries import (
    Regression,
    RegressionQuery,
    TopEntry,
    TrendPoint,
    best_platform,
    regressions,
    top,
    trend,
)
from repro.resultsdb.store import (
    STORE_NAME,
    ResultsStore,
    commit_service_run,
)

__all__ = [
    "STORE_NAME",
    "ResultsStore",
    "Regression",
    "RegressionQuery",
    "TopEntry",
    "TrendPoint",
    "best_platform",
    "commit_service_run",
    "import_json_repository",
    "regressions",
    "top",
    "trend",
]
