"""SQLite-backed results store: schema, transactions, durability.

One database file holds every submitted run:

* ``runs`` — one row per run: metadata (system under test, submitter,
  description), provenance (``commit_sha``, ``tenant``,
  ``submitted_at``), and the insertion order that defines the trend
  timeline;
* ``jobs`` — one row per benchmark job, flattened to typed columns for
  SQL (indexed by platform/algorithm/dataset and by the run's commit)
  **plus** the job's exact JSON record, so a stored run reproduces its
  legacy archive byte for byte regardless of how SQLite would coerce
  the scalars;
* ``spans`` — the run's exported trace spans (``trace.jsonl``), queryable
  without re-parsing archives;
* ``sla_breaches`` — one row per job that broke the paper's §2.3 SLA,
  with the budget it was held to.

Durability model: the database runs in WAL mode with ``synchronous=FULL``
— a submission is one transaction, opened with ``BEGIN IMMEDIATE`` so
concurrent writers (service run children, parallel harness processes)
serialize on SQLite's own write lock instead of the retired ``flock``
sidecar. The transaction's COMMIT is threaded through the registered
``resultsdb.commit`` fault point: a seeded chaos plan can fail or
SIGKILL the process at the commit boundary, and WAL guarantees the
reader-visible state is the old run set or the new one, never a torn
mixture. Readers never block writers (and vice versa) — WAL snapshot
isolation replaces the old "readers are safe because atomic_write"
argument.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.exceptions import ConfigurationError
from repro.faults import points as fault_points

__all__ = ["STORE_NAME", "SCHEMA_VERSION", "ResultsStore", "commit_service_run"]

#: Database file name inside a repository directory or a service spool.
STORE_NAME = "results.db"

SCHEMA_VERSION = 1

#: Seconds a writer waits on SQLite's write lock before giving up; far
#: beyond any real contention window (one submission is milliseconds).
_BUSY_TIMEOUT = 30.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id            TEXT PRIMARY KEY,
    system_under_test TEXT NOT NULL,
    submitter         TEXT NOT NULL DEFAULT '',
    description       TEXT NOT NULL DEFAULT '',
    commit_sha        TEXT NOT NULL DEFAULT '',
    tenant            TEXT NOT NULL DEFAULT '',
    submitted_at      REAL,
    job_count         INTEGER NOT NULL,
    record            TEXT NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS runs_commit ON runs (commit_sha);
CREATE TABLE IF NOT EXISTS jobs (
    run_id                      TEXT NOT NULL REFERENCES runs(run_id)
                                ON DELETE CASCADE,
    position                    INTEGER NOT NULL,
    platform                    TEXT NOT NULL,
    algorithm                   TEXT NOT NULL,
    dataset                     TEXT NOT NULL,
    machines                    INTEGER NOT NULL,
    threads                     INTEGER,
    status                      TEXT NOT NULL,
    run_index                   INTEGER NOT NULL DEFAULT 0,
    modeled_processing_time     REAL,
    modeled_makespan            REAL,
    sla_compliant               INTEGER NOT NULL DEFAULT 0,
    validated                   INTEGER,
    record                      TEXT NOT NULL,
    PRIMARY KEY (run_id, position)
);
CREATE INDEX IF NOT EXISTS jobs_workload
    ON jobs (platform, algorithm, dataset);
CREATE INDEX IF NOT EXISTS jobs_algorithm_dataset
    ON jobs (algorithm, dataset);
CREATE TABLE IF NOT EXISTS spans (
    run_id    TEXT NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    seq       INTEGER NOT NULL,
    span_id   TEXT NOT NULL,
    parent_id TEXT,
    name      TEXT NOT NULL,
    process   TEXT NOT NULL DEFAULT 'main',
    status    TEXT NOT NULL DEFAULT 'ok',
    start     REAL NOT NULL,
    end       REAL,
    attrs     TEXT NOT NULL DEFAULT '{}',
    PRIMARY KEY (run_id, seq)
);
CREATE INDEX IF NOT EXISTS spans_name ON spans (run_id, name);
CREATE TABLE IF NOT EXISTS sla_breaches (
    run_id           TEXT NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    position         INTEGER NOT NULL,
    platform         TEXT NOT NULL,
    algorithm        TEXT NOT NULL,
    dataset          TEXT NOT NULL,
    machines         INTEGER NOT NULL,
    threads          INTEGER,
    status           TEXT NOT NULL,
    modeled_makespan REAL,
    budget           REAL NOT NULL,
    PRIMARY KEY (run_id, position)
);
"""

#: jobs columns mirrored out of each record for SQL filtering; the
#: authoritative value of every field stays in the ``record`` JSON.
_JOB_COLUMNS = (
    "platform", "algorithm", "dataset", "machines", "threads", "status",
    "run_index", "modeled_processing_time", "modeled_makespan",
    "sla_compliant", "validated",
)


def _as_bool_column(value: object) -> Optional[int]:
    if value is None:
        return None
    return 1 if value else 0


class ResultsStore:
    """One WAL-mode SQLite database of benchmark runs.

    Instances are cheap (one connection) and safe to use from multiple
    threads (an internal mutex serializes statements) and multiple
    processes (SQLite's own locking serializes writers; WAL keeps
    readers lock-free). Use as a context manager or call :meth:`close`.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        timeout: float = _BUSY_TIMEOUT,
    ):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # isolation_level=None: no implicit transactions — every write
        # happens inside an explicit BEGIN IMMEDIATE below, so the
        # commit boundary (and its fault point) is exactly one place.
        self._conn = sqlite3.connect(
            str(self.path), timeout=timeout, check_same_thread=False
        )
        self._conn.isolation_level = None
        # A mutex, not thread-local connections: the service touches the
        # store from asyncio.to_thread workers, and SQLite objects must
        # not be used concurrently from two threads on one connection.
        import threading

        self._mutex = threading.Lock()
        with self._mutex:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=FULL")
            self._conn.execute("PRAGMA foreign_keys=ON")
            self._conn.executescript(_SCHEMA)
            self._conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(SCHEMA_VERSION)),
            )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission --------------------------------------------------------

    def submit_run(
        self,
        metadata: Mapping[str, object],
        results: Sequence[Mapping[str, object]],
        *,
        spans: Iterable[Mapping[str, object]] = (),
        breaches: Optional[Sequence[Mapping[str, object]]] = None,
        commit_sha: str = "",
        tenant: str = "",
        submitted_at: Optional[float] = None,
        replace: bool = False,
    ) -> str:
        """Store one run in a single transaction; returns the run id.

        ``metadata`` is the archive metadata mapping (``run_id``,
        ``system_under_test``, optional ``submitter``/``description``);
        ``results`` are job records in
        :meth:`repro.harness.results.BenchmarkResult.as_dict` shape,
        stored in order. ``breaches`` defaults to the jobs whose
        ``sla_compliant`` flag is false, held to the paper's 1-hour
        budget. With ``replace=False`` a duplicate run id raises
        :class:`~repro.exceptions.ConfigurationError`; ``replace=True``
        atomically swaps the stored run (the relaunch semantics service
        run children need — a child SIGKILLed mid-commit re-commits the
        whole run on its next attempt).

        The COMMIT is threaded through the ``resultsdb.commit`` fault
        point: an injected failure rolls the transaction back whole,
        an injected SIGKILL leaves WAL to discard it on the next open —
        either way no reader ever observes a torn run.
        """
        with self._mutex:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                run_id = self._insert_run(
                    metadata,
                    results,
                    spans=spans,
                    breaches=breaches,
                    commit_sha=commit_sha,
                    tenant=tenant,
                    submitted_at=submitted_at,
                    replace=replace,
                )
                # The commit point, guarded by the chaos plane: a plan
                # can fail or kill here and the store must come back
                # with the old state or the new one, never a mixture.
                fault_points.check("resultsdb.commit")
                self._conn.execute("COMMIT")
            except BaseException:
                try:
                    self._conn.execute("ROLLBACK")
                except sqlite3.Error:
                    pass  # connection already rolled back or gone
                raise
        return run_id

    def submit_payloads(
        self,
        payloads: Sequence[Mapping[str, object]],
        *,
        replace: bool = False,
    ) -> List[str]:
        """Store many legacy archive payloads in ONE transaction.

        ``payloads`` are archive-shaped mappings (``metadata`` +
        ``results``). All-or-nothing: the migration path — a crash or
        injected fault at ``resultsdb.commit`` mid-import leaves the
        store exactly as it was, never half a repository.
        """
        run_ids: List[str] = []
        with self._mutex:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                for payload in payloads:
                    metadata = payload.get("metadata") or {}
                    results = payload.get("results") or []
                    run_ids.append(
                        self._insert_run(
                            metadata, results, replace=replace
                        )
                    )
                fault_points.check("resultsdb.commit")
                self._conn.execute("COMMIT")
            except BaseException:
                try:
                    self._conn.execute("ROLLBACK")
                except sqlite3.Error:
                    pass  # connection already rolled back or gone
                raise
        return run_ids

    def _insert_run(
        self,
        metadata: Mapping[str, object],
        results: Sequence[Mapping[str, object]],
        *,
        spans: Iterable[Mapping[str, object]] = (),
        breaches: Optional[Sequence[Mapping[str, object]]] = None,
        commit_sha: str = "",
        tenant: str = "",
        submitted_at: Optional[float] = None,
        replace: bool = False,
    ) -> str:
        """One run's inserts; caller owns the transaction and mutex."""
        run_id = str(metadata.get("run_id", ""))
        if not run_id:
            raise ConfigurationError("run metadata lacks a run_id")
        if not results:
            raise ConfigurationError("refusing to store an empty run")
        if breaches is None:
            breaches = _derive_breaches(results)
        rows = [dict(record) for record in results]
        exists = self._conn.execute(
            "SELECT 1 FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        if exists:
            if not replace:
                raise ConfigurationError(f"run {run_id!r} already exists")
            self._delete_run_rows(run_id)
        self._conn.execute(
            "INSERT INTO runs (run_id, system_under_test, submitter,"
            " description, commit_sha, tenant, submitted_at, job_count,"
            " record) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                run_id,
                str(metadata.get("system_under_test", "")),
                str(metadata.get("submitter", "")),
                str(metadata.get("description", "")),
                commit_sha,
                tenant,
                submitted_at,
                len(rows),
                # The metadata mapping verbatim, key order preserved, so
                # canonical_bytes reproduces the legacy archive even if
                # its metadata block predates today's field set.
                json.dumps(dict(metadata)),
            ),
        )
        self._insert_jobs(run_id, rows)
        self._insert_spans(run_id, spans)
        self._insert_breaches(run_id, breaches)
        return run_id

    def _delete_run_rows(self, run_id: str) -> None:
        for table in ("sla_breaches", "spans", "jobs", "runs"):
            self._conn.execute(
                f"DELETE FROM {table} WHERE run_id = ?", (run_id,)
            )

    def _insert_jobs(
        self, run_id: str, rows: Sequence[Dict[str, object]]
    ) -> None:
        for position, record in enumerate(rows):
            columns = {name: record.get(name) for name in _JOB_COLUMNS}
            columns["sla_compliant"] = _as_bool_column(
                columns["sla_compliant"]
            ) or 0
            columns["validated"] = _as_bool_column(columns["validated"])
            self._conn.execute(
                "INSERT INTO jobs (run_id, position, platform, algorithm,"
                " dataset, machines, threads, status, run_index,"
                " modeled_processing_time, modeled_makespan, sla_compliant,"
                " validated, record)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    run_id,
                    position,
                    str(columns["platform"]),
                    str(columns["algorithm"]),
                    str(columns["dataset"]),
                    int(columns["machines"] or 0),
                    columns["threads"],
                    str(columns["status"]),
                    int(columns["run_index"] or 0),
                    columns["modeled_processing_time"],
                    columns["modeled_makespan"],
                    columns["sla_compliant"],
                    columns["validated"],
                    json.dumps(record),
                ),
            )

    def _insert_spans(
        self, run_id: str, spans: Iterable[Mapping[str, object]]
    ) -> None:
        for seq, span in enumerate(spans):
            attributes = span.get("attrs") or span.get("attributes") or {}
            self._conn.execute(
                "INSERT INTO spans (run_id, seq, span_id, parent_id, name,"
                " process, status, start, end, attrs)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    run_id,
                    seq,
                    str(span.get("id") or span.get("span_id") or seq),
                    span.get("parent") or span.get("parent_id"),
                    str(span.get("name", "")),
                    str(span.get("process", "main")),
                    str(span.get("status", "ok")),
                    float(span.get("start", 0.0)),
                    span.get("end"),
                    json.dumps(attributes, sort_keys=True),
                ),
            )

    def _insert_breaches(
        self, run_id: str, breaches: Sequence[Mapping[str, object]]
    ) -> None:
        for position, breach in enumerate(breaches):
            self._conn.execute(
                "INSERT INTO sla_breaches (run_id, position, platform,"
                " algorithm, dataset, machines, threads, status,"
                " modeled_makespan, budget)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    run_id,
                    position,
                    str(breach.get("platform", "")),
                    str(breach.get("algorithm", "")),
                    str(breach.get("dataset", "")),
                    int(breach.get("machines") or 0),
                    breach.get("threads"),
                    str(breach.get("status", "")),
                    breach.get("modeled_makespan"),
                    float(breach.get("budget") or 0.0),
                ),
            )

    # -- retrieval ---------------------------------------------------------

    def has_run(self, run_id: str) -> bool:
        with self._mutex:
            row = self._conn.execute(
                "SELECT 1 FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        return row is not None

    def run_ids(self) -> List[str]:
        with self._mutex:
            rows = self._conn.execute(
                "SELECT run_id FROM runs ORDER BY run_id"
            ).fetchall()
        return [row[0] for row in rows]

    def run_metadata(self, run_id: str) -> Dict[str, object]:
        with self._mutex:
            row = self._conn.execute(
                "SELECT run_id, system_under_test, submitter, description,"
                " commit_sha, tenant, submitted_at, job_count"
                " FROM runs WHERE run_id = ?",
                (run_id,),
            ).fetchone()
        if row is None:
            raise ConfigurationError(f"unknown run {run_id!r}")
        keys = (
            "run_id", "system_under_test", "submitter", "description",
            "commit_sha", "tenant", "submitted_at", "job_count",
        )
        return dict(zip(keys, row))

    def run_records(self, run_id: str) -> List[Dict[str, object]]:
        """The run's job records, exactly as submitted, in order."""
        with self._mutex:
            rows = self._conn.execute(
                "SELECT record FROM jobs WHERE run_id = ? ORDER BY position",
                (run_id,),
            ).fetchall()
        if not rows:
            raise ConfigurationError(f"unknown run {run_id!r}")
        return [json.loads(row[0]) for row in rows]

    def run_spans(self, run_id: str) -> List[Dict[str, object]]:
        """The run's stored trace spans as plain dicts, in span order."""
        with self._mutex:
            rows = self._conn.execute(
                "SELECT span_id, parent_id, name, process, status, start,"
                " end, attrs FROM spans WHERE run_id = ? ORDER BY seq",
                (run_id,),
            ).fetchall()
        return [
            {
                "id": row[0],
                "parent": row[1],
                "name": row[2],
                "process": row[3],
                "status": row[4],
                "start": row[5],
                "end": row[6],
                "attrs": json.loads(row[7]),
            }
            for row in rows
        ]

    def run_breaches(self, run_id: str) -> List[Dict[str, object]]:
        with self._mutex:
            rows = self._conn.execute(
                "SELECT platform, algorithm, dataset, machines, threads,"
                " status, modeled_makespan, budget FROM sla_breaches"
                " WHERE run_id = ? ORDER BY position",
                (run_id,),
            ).fetchall()
        keys = (
            "platform", "algorithm", "dataset", "machines", "threads",
            "status", "modeled_makespan", "budget",
        )
        return [dict(zip(keys, row)) for row in rows]

    def query(self, sql: str, parameters: Sequence[object] = ()) -> List[tuple]:
        """Read-only escape hatch for the canned-query layer."""
        with self._mutex:
            return self._conn.execute(sql, tuple(parameters)).fetchall()

    # -- archive round-trip ------------------------------------------------

    def canonical_payload(self, run_id: str) -> Dict[str, object]:
        """The run as its legacy JSON-archive payload (metadata+results)."""
        with self._mutex:
            row = self._conn.execute(
                "SELECT record FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        if row is None:
            raise ConfigurationError(f"unknown run {run_id!r}")
        return {
            "metadata": json.loads(row[0]),
            "results": self.run_records(run_id),
        }

    def canonical_bytes(self, run_id: str) -> bytes:
        """Byte-identical re-serialization of the legacy run archive."""
        return json.dumps(self.canonical_payload(run_id), indent=1).encode(
            "utf-8"
        )

    # -- statistics --------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Row counts and database size (healthz, ``db stats``)."""
        counts = {}
        with self._mutex:
            for table in ("runs", "jobs", "spans", "sla_breaches"):
                counts[table] = self._conn.execute(
                    f"SELECT COUNT(*) FROM {table}"
                ).fetchone()[0]
            page_count = self._conn.execute(
                "PRAGMA page_count"
            ).fetchone()[0]
            page_size = self._conn.execute("PRAGMA page_size").fetchone()[0]
        counts["db_bytes"] = page_count * page_size
        counts["path"] = str(self.path)
        return counts


def _derive_breaches(
    results: Sequence[Mapping[str, object]],
) -> List[Dict[str, object]]:
    """SLA-breach rows from job records: every non-compliant job."""
    # Local import: harness.sla pulls in the platform layer, which this
    # low-level module must not require at import time.
    from repro.harness.sla import SLA_MAKESPAN_SECONDS

    breaches = []
    for record in results:
        if record.get("sla_compliant"):
            continue
        breaches.append(
            {
                "platform": record.get("platform", ""),
                "algorithm": record.get("algorithm", ""),
                "dataset": record.get("dataset", ""),
                "machines": record.get("machines", 0),
                "threads": record.get("threads"),
                "status": record.get("status", ""),
                "modeled_makespan": record.get("modeled_makespan"),
                "budget": SLA_MAKESPAN_SECONDS,
            }
        )
    return breaches


def commit_service_run(
    store_path: Union[str, Path],
    *,
    run_id: str,
    tenant: str,
    database,
    trace_path: Optional[Union[str, Path]] = None,
    submitted_at: Optional[float] = None,
    commit_sha: str = "",
) -> Dict[str, object]:
    """Commit a finished service run into the spool's results store.

    Called by the run child at terminal-commit time, right before
    ``outcome.json`` lands: the run's job rows, its exported
    ``trace.jsonl`` spans (when the file exists and parses), and its
    SLA breaches all enter the store in one transaction.
    ``replace=True`` because a child relaunched after a mid-commit
    crash legitimately re-commits the same run id. Returns the store's
    post-commit :meth:`~ResultsStore.stats`.
    """
    spans: List[Dict[str, object]] = []
    if trace_path is not None:
        spans = _load_span_dicts(Path(trace_path))
    results = [record.as_dict() for record in database]
    with ResultsStore(store_path) as store:
        store.submit_run(
            {
                "run_id": run_id,
                "system_under_test": f"service:{tenant or 'unknown'}",
                "submitter": tenant,
                "description": "benchmark-as-a-service run",
            },
            results,
            spans=spans,
            tenant=tenant,
            submitted_at=submitted_at,
            commit_sha=commit_sha,
            replace=True,
        )
        return store.stats()


def _load_span_dicts(path: Path) -> List[Dict[str, object]]:
    """Spans of an exported trace file; empty when absent or torn."""
    from repro.trace import read_trace

    try:
        spans, _counters = read_trace(path)
    except (FileNotFoundError, json.JSONDecodeError, OSError, ValueError):
        return []
    return [span.as_dict() for span in spans]
