"""``repro.service`` — benchmark-as-a-service over the crash-safe runtime.

The Graphalytics vision is a benchmark run *for* a community, not just
by one operator: platform teams submit benchmark matrices, a shared
harness executes them fairly, and everyone can watch progress and fetch
validated artifacts. This package is that deployment mode
(docs/service.md):

* :mod:`repro.service.server` — the asyncio HTTP server: submission,
  fair-share multi-tenant scheduling, SSE progress streams, artifact
  serving, spool recovery on restart;
* :mod:`repro.service.queue` — round-robin tenant queue with admission
  quotas (``429 Retry-After`` over quota);
* :mod:`repro.service.runs` — spool-directory run registry; run state
  is always derivable from disk;
* :mod:`repro.service.supervise` — run supervision: durable attempt
  ledger, quarantine records, and the per-tenant circuit breaker
  (``503 Retry-After`` while a tenant's runs keep dying);
* :mod:`repro.service.worker` — the per-run child process (journal
  resume, orphan watchdog, chaos-plan arming);
* :mod:`repro.service.tail` — torn-tail-safe live tailing of the
  run journal for the SSE stream;
* :mod:`repro.service.http` — minimal hand-rolled HTTP/1.1 + SSE over
  asyncio streams (no dependencies);
* :mod:`repro.service.client` — the blocking client used by the
  ``graphalytics serve/submit/watch/fetch`` CLI.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.http import EventStream, ProtocolError, Request, Response
from repro.service.queue import FairShareQueue, QuotaExceeded
from repro.service.runs import RunRecord, RunRegistry, normalize_matrix
from repro.service.server import BenchmarkService, ServiceConfig
from repro.service.supervise import (
    BreakerOpen,
    RetryPolicy,
    TenantBreaker,
    load_quarantine,
    load_supervision,
)
from repro.service.tail import JournalTailer, decode_journal_line
from repro.service.worker import execute_service_run

__all__ = [
    "BenchmarkService",
    "BreakerOpen",
    "EventStream",
    "FairShareQueue",
    "JournalTailer",
    "ProtocolError",
    "QuotaExceeded",
    "Request",
    "Response",
    "RetryPolicy",
    "RunRecord",
    "RunRegistry",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "TenantBreaker",
    "decode_journal_line",
    "execute_service_run",
    "load_quarantine",
    "load_supervision",
    "normalize_matrix",
]
