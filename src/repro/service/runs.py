"""The service's run registry: spool-directory-backed run state.

Every submitted run owns one directory under the service **spool**:

.. code-block:: text

    <spool>/<run_id>/
        request.json    # immutable: tenant, normalized matrix, knobs
        journal.jsonl   # write-ahead journal (the run process writes it)
        trace.jsonl     # span trace, exported at run completion
        results.json    # the results database
        archive.json    # Granula archive of the run's own schedule
        outcome.json    # terminal summary written by the run process
        supervise.json  # attempt ledger written before every launch
        quarantine.json # terminal marker for budget-exhausted runs
        cache/          # materialized-graph spill

``request.json`` is written atomically *before* the run is queued and
never modified, so the submission survives any crash; everything else
is produced by the crash-safe runtime. Run state is therefore fully
**derivable from disk**: a directory with an ``outcome.json`` is
terminal, anything else is resumable work — which is exactly what
:meth:`RunRegistry.scan` exploits to re-enqueue interrupted runs after
a server restart (docs/service.md, restart semantics).
"""

from __future__ import annotations

import json
import re
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from repro.exceptions import ConfigurationError
from repro.ioutil import atomic_write
from repro.runtime.journal import config_payload
from repro.service.supervise import load_quarantine, load_supervision

__all__ = [
    "REQUEST_NAME",
    "OUTCOME_NAME",
    "RunRecord",
    "RunRegistry",
    "normalize_matrix",
]

REQUEST_NAME = "request.json"
OUTCOME_NAME = "outcome.json"

#: States a run moves through: queued -> running -> done | failed —
#: or, when supervision exhausts its attempt budget, -> quarantined.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"
QUARANTINED = "quarantined"
TERMINAL_STATES = frozenset({DONE, FAILED, QUARANTINED})

_RUN_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def normalize_matrix(payload: object) -> Dict[str, object]:
    """Validate a submitted matrix against the registries; normalize it.

    The submission may be partial (missing keys take the
    :class:`~repro.harness.config.BenchmarkConfig` defaults); building
    the config validates every platform, dataset, and algorithm name
    against the live registries and every numeric knob against its
    bounds, so a bad submission fails here — as a 400 — rather than
    inside a queued run. The result is the *complete* canonical payload
    the journal header uses, making the stored request self-contained.
    """
    from repro.harness.config import BenchmarkConfig
    from repro.platforms.cluster import ClusterResources

    if not isinstance(payload, Mapping):
        raise ConfigurationError("matrix must be a JSON object")
    kwargs: Dict[str, object] = {}
    for key in ("platforms", "datasets", "algorithms"):
        if key in payload:
            value = payload[key]
            if not isinstance(value, (list, tuple)):
                raise ConfigurationError(f"matrix key {key!r} must be a list")
            kwargs[key] = list(value)
    for key, convert in (
        ("repetitions", int),
        ("seed", int),
        ("validate_outputs", bool),
        ("sla_seconds", float),
        ("skip_impossible", bool),
        ("partition_strategy", str),
    ):
        if key in payload:
            kwargs[key] = convert(payload[key])
    if "partitions" in payload:
        partitions = payload["partitions"]
        kwargs["partitions"] = (
            int(partitions) if partitions is not None else None
        )
    resources = payload.get("resources")
    if resources is not None:
        if not isinstance(resources, Mapping):
            raise ConfigurationError("matrix key 'resources' must be an object")
        threads = resources.get("threads")
        kwargs["resources"] = ClusterResources(
            machines=int(resources.get("machines", 1)),
            threads=int(threads) if threads is not None else None,
        )
    unknown = set(payload) - {
        "platforms", "datasets", "algorithms", "repetitions", "seed",
        "validate_outputs", "sla_seconds", "skip_impossible", "resources",
        "partitions", "partition_strategy",
    }
    if unknown:
        raise ConfigurationError(
            f"unknown matrix key(s): {sorted(unknown)}"
        )
    return config_payload(BenchmarkConfig(**kwargs))


@dataclass
class RunRecord:
    """In-memory view of one submitted run."""

    run_id: str
    tenant: str
    config: Dict[str, object]
    #: Worker request forwarded to the run child: an int or ``"auto"``.
    workers: Union[int, str, None] = "auto"
    job_timeout: Optional[float] = None
    state: str = QUEUED
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: str = ""
    #: Launches recorded in the supervise.json ledger (0 = never ran).
    attempts: int = 0
    #: Terminal summary loaded from outcome.json, if the run finished.
    outcome: Optional[Dict[str, object]] = field(default=None, repr=False)
    #: quarantine.json payload for runs that exhausted their budget.
    quarantine: Optional[Dict[str, object]] = field(default=None, repr=False)
    #: Optional I/O fault plan (IoFaultPlan payload) riding the request.
    chaos: Optional[Dict[str, object]] = field(default=None, repr=False)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def status_payload(self) -> Dict[str, object]:
        """The ``GET /v1/runs/<id>`` body."""
        payload: Dict[str, object] = {
            "run_id": self.run_id,
            "tenant": self.tenant,
            "state": self.state,
            "workers": self.workers,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.error:
            payload["error"] = self.error
        if self.attempts:
            payload["attempts"] = self.attempts
        if self.quarantine is not None:
            payload["quarantine"] = self.quarantine
        if self.outcome is not None:
            for key in ("jobs", "failures", "sla_breaches",
                        "elapsed_seconds", "restored_jobs", "degraded"):
                if key in self.outcome:
                    payload[key] = self.outcome[key]
        return payload


class RunRegistry:
    """Assigns run ids, owns the spool layout, restores state on boot."""

    def __init__(self, spool: Union[str, Path]):
        self.spool = Path(spool)
        self.spool.mkdir(parents=True, exist_ok=True)
        self.records: Dict[str, RunRecord] = {}
        self._sequence = 0

    def run_dir(self, run_id: str) -> Path:
        if not _RUN_ID_RE.match(run_id):
            raise ConfigurationError(f"malformed run id {run_id!r}")
        return self.spool / run_id

    # -- submission --------------------------------------------------------

    def create(
        self,
        tenant: str,
        matrix: object,
        *,
        workers: Union[int, str, None] = "auto",
        job_timeout: Optional[float] = None,
        submitted_at: float = 0.0,
        chaos: Optional[Dict[str, object]] = None,
    ) -> RunRecord:
        """Validate, assign a run id, persist ``request.json``, register.

        The request file lands atomically before the caller enqueues
        the run, so a crash between the two leaves a resumable (never a
        half-known) submission. ``chaos`` is a pre-validated
        :class:`~repro.faults.IoFaultPlan` payload the run child
        installs before executing — it rides the request so a resumed
        attempt replays the same fault plan.
        """
        if not _TENANT_RE.match(tenant or ""):
            raise ConfigurationError(
                f"tenant {tenant!r} must be alphanumeric with ._-"
            )
        config = normalize_matrix(matrix)
        self._sequence += 1
        run_id = f"r{self._sequence:06d}-{tenant}"
        record = RunRecord(
            run_id=run_id,
            tenant=tenant,
            config=config,
            workers=workers,
            job_timeout=job_timeout,
            submitted_at=submitted_at,
            chaos=chaos,
        )
        run_dir = self.run_dir(run_id)
        run_dir.mkdir(parents=True, exist_ok=False)
        request_payload = {
            "run_id": run_id,
            "tenant": tenant,
            "config": config,
            "workers": workers,
            "job_timeout": job_timeout,
            "submitted_at": submitted_at,
        }
        if chaos is not None:
            request_payload["chaos"] = chaos
        atomic_write(
            run_dir / REQUEST_NAME,
            json.dumps(request_payload, indent=1, sort_keys=True),
            fault_point="service.spool.request",
        )
        self.records[run_id] = record
        return record

    # -- restart recovery --------------------------------------------------

    def scan(self) -> List[RunRecord]:
        """Rebuild the registry from the spool; returns resumable runs.

        Every directory holding a ``request.json`` becomes a record;
        runs with an ``outcome.json`` are terminal, everything else is
        returned (in submission order) for re-enqueueing — the journal,
        if present, makes the re-run a resume rather than a restart.
        A corrupted or truncated ``request.json`` (unreadable, invalid
        JSON, or not a JSON object) is **skipped with a warning**: one
        damaged submission must never take the whole boot scan down.
        Quarantined runs (``quarantine.json`` present) load terminal
        and are not returned; attempt counts come from the supervision
        ledger so budgets survive restarts.
        """
        resumable: List[RunRecord] = []
        for request_path in sorted(self.spool.glob(f"*/{REQUEST_NAME}")):
            try:
                with open(request_path, "r", encoding="utf-8") as handle:
                    request = json.load(handle)
            except (OSError, json.JSONDecodeError) as exc:
                warnings.warn(
                    f"skipping spooled run {request_path.parent.name!r}: "
                    f"unreadable {REQUEST_NAME} ({exc})",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue  # torn request: submission never completed
            if not isinstance(request, dict):
                warnings.warn(
                    f"skipping spooled run {request_path.parent.name!r}: "
                    f"{REQUEST_NAME} holds {type(request).__name__}, "
                    f"not an object",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            run_id = str(request.get("run_id", request_path.parent.name))
            chaos = request.get("chaos")
            record = RunRecord(
                run_id=run_id,
                tenant=str(request.get("tenant", "unknown")),
                config=dict(request.get("config") or {}),
                workers=request.get("workers", "auto"),
                job_timeout=request.get("job_timeout"),
                submitted_at=float(request.get("submitted_at", 0.0)),
                chaos=chaos if isinstance(chaos, dict) else None,
            )
            match = re.match(r"^r(\d+)-", run_id)
            if match:
                self._sequence = max(self._sequence, int(match.group(1)))
            run_dir = request_path.parent
            record.attempts = int(load_supervision(run_dir)["attempts"])
            outcome = self.load_outcome(run_id)
            quarantine = load_quarantine(run_dir)
            if outcome is not None:
                record.outcome = outcome
                record.state = DONE if outcome.get("ok") else FAILED
                record.error = str(outcome.get("error", ""))
            elif quarantine is not None:
                record.quarantine = quarantine
                record.state = QUARANTINED
                record.error = str(quarantine.get("reason", ""))
            else:
                record.state = QUEUED
                resumable.append(record)
            self.records[run_id] = record
        return resumable

    # -- artifacts ---------------------------------------------------------

    def load_outcome(self, run_id: str) -> Optional[Dict[str, object]]:
        path = self.run_dir(run_id) / OUTCOME_NAME
        if not path.exists():
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        return loaded if isinstance(loaded, dict) else None

    def artifact_path(self, run_id: str, artifact: str) -> Path:
        """Path of a servable run artifact (results/archive/trace/...)."""
        from repro.service.supervise import QUARANTINE_NAME

        names = {
            "results": "results.json",
            "archive": "archive.json",
            "trace": "trace.jsonl",
            "outcome": OUTCOME_NAME,
            "quarantine": QUARANTINE_NAME,
        }
        if artifact not in names:
            raise ConfigurationError(f"unknown artifact {artifact!r}")
        return self.run_dir(run_id) / names[artifact]
