"""Run supervision: attempt budgets, quarantine, tenant circuit breaker.

PR 7's restart story had a hole the chaos suite could drive a truck
through: a run whose child died without ``outcome.json`` was failed
forever inside a living server, yet re-enqueued on *every* restart — a
poison run (bad dataset, platform bug, hostile chaos plan) crash-looped
the boot scan unboundedly. This module gives the service the same
discipline the job scheduler already applies to individual jobs:

* an **attempt ledger** (``supervise.json``) records every launch
  durably *before* the child starts, so attempt counts survive server
  SIGKILL — the budget is enforced across restarts, not per server
  lifetime;
* a **quarantine record** (``quarantine.json``) marks a run that
  exhausted its budget as terminally ``quarantined``: the spool keeps
  the journal and artifacts for post-mortem, the boot scan stops
  resurrecting it, and the API/CLI surface why;
* a **per-tenant circuit breaker** sheds new submissions with ``503 +
  Retry-After`` while a tenant's runs keep dying, so one tenant's
  poison matrix cannot monopolize run slots with doomed relaunches.

The decision itself — retry with exponential backoff vs. quarantine —
lives in :meth:`BenchmarkService._supervise` and is the *single* path
for both in-life child death and boot-scan recovery.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.exceptions import GraphalyticsError
from repro.ioutil import atomic_write

__all__ = [
    "SUPERVISE_NAME",
    "QUARANTINE_NAME",
    "BreakerOpen",
    "RetryPolicy",
    "TenantBreaker",
    "record_attempt",
    "load_supervision",
    "write_quarantine",
    "load_quarantine",
]

SUPERVISE_NAME = "supervise.json"
QUARANTINE_NAME = "quarantine.json"


class BreakerOpen(GraphalyticsError):
    """A tenant's circuit breaker is open; submissions are shed."""

    def __init__(self, message: str, *, retry_after: float):
        super().__init__(message)
        self.retry_after = retry_after


# -- the attempt ledger -------------------------------------------------------

def record_attempt(
    run_dir: Union[str, Path], attempt: int, *, at: float
) -> Dict[str, object]:
    """Durably record launch number ``attempt`` before the child starts.

    Written *pre*-launch on purpose: if the server dies between the
    write and the child finishing, the restarted server still counts
    the launch — the budget bounds real executions, not observed
    deaths. The whole ledger is rewritten atomically (it is tiny) via
    the ``service.spool.supervise`` fault point.
    """
    run_dir = Path(run_dir)
    ledger = load_supervision(run_dir)
    history = list(ledger.get("history", []))
    history.append({"attempt": attempt, "at": at})
    ledger = {"attempts": attempt, "history": history}
    atomic_write(
        run_dir / SUPERVISE_NAME,
        json.dumps(ledger, indent=1, sort_keys=True),
        fault_point="service.spool.supervise",
    )
    return ledger


def load_supervision(run_dir: Union[str, Path]) -> Dict[str, object]:
    """The run's attempt ledger; ``{"attempts": 0}`` when absent/corrupt.

    Corruption tolerance matters: the ledger is advisory bookkeeping,
    and a torn one must never block the boot scan (the same contract
    :meth:`RunRegistry.scan` applies to ``request.json``).
    """
    path = Path(run_dir) / SUPERVISE_NAME
    try:
        with open(path, "r", encoding="utf-8") as handle:
            loaded = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return {"attempts": 0, "history": []}
    if not isinstance(loaded, dict):
        return {"attempts": 0, "history": []}
    try:
        attempts = int(loaded.get("attempts", 0))
    except (TypeError, ValueError):
        attempts = 0
    history = loaded.get("history")
    return {
        "attempts": attempts,
        "history": history if isinstance(history, list) else [],
    }


# -- quarantine ---------------------------------------------------------------

def write_quarantine(
    run_dir: Union[str, Path], payload: Dict[str, object]
) -> Path:
    """Mark a run terminally quarantined (atomic; survives restarts)."""
    return atomic_write(
        Path(run_dir) / QUARANTINE_NAME,
        json.dumps(payload, indent=1, sort_keys=True),
        fault_point="service.spool.supervise",
    )


def load_quarantine(
    run_dir: Union[str, Path]
) -> Optional[Dict[str, object]]:
    path = Path(run_dir) / QUARANTINE_NAME
    try:
        with open(path, "r", encoding="utf-8") as handle:
            loaded = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return loaded if isinstance(loaded, dict) else None


# -- retry policy -------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget + exponential backoff, the scheduler's shape.

    :class:`~repro.runtime.scheduler.JobGraph` retries *jobs* with
    ``backoff_base * 2**(attempt-1)``; the service retries *runs* with
    the same curve so operators reason about one policy at both layers.
    """

    max_attempts: int = 3
    backoff_base: float = 0.5

    def exhausted(self, attempts: int) -> bool:
        return attempts >= self.max_attempts

    def backoff(self, attempt: int) -> float:
        return self.backoff_base * (2 ** (max(attempt, 1) - 1))


# -- the circuit breaker ------------------------------------------------------

class TenantBreaker:
    """Consecutive-death circuit breaker, one circuit per tenant.

    ``threshold`` consecutive child deaths open a tenant's circuit for
    ``cooldown`` seconds from the last death: new submissions are shed
    with :class:`BreakerOpen` (mapped to ``503 + Retry-After``), while
    already-admitted runs keep their retry budget — the breaker
    protects the *queue*, supervision protects the *slots*. Any run
    that completes (even ``ok: false``, which proves the child can
    exit cleanly) closes the circuit; so does an elapsed cooldown.
    """

    def __init__(self, threshold: int = 3, cooldown: float = 30.0):
        self.threshold = threshold
        self.cooldown = cooldown
        self._strikes: Dict[str, int] = {}
        self._last_death: Dict[str, float] = {}

    def record_death(self, tenant: str, *, now: float) -> None:
        self._strikes[tenant] = self._strikes.get(tenant, 0) + 1
        self._last_death[tenant] = now

    def record_success(self, tenant: str) -> None:
        self._strikes.pop(tenant, None)
        self._last_death.pop(tenant, None)

    def open_for(self, tenant: str, *, now: float) -> float:
        """Seconds the tenant's circuit stays open; 0 when closed."""
        strikes = self._strikes.get(tenant, 0)
        if strikes < self.threshold:
            return 0.0
        remaining = self.cooldown - (now - self._last_death.get(tenant, now))
        if remaining <= 0:
            # Cooldown elapsed: close the circuit, forget the strikes.
            self.record_success(tenant)
            return 0.0
        return remaining

    def check(self, tenant: str, *, now: float) -> None:
        """Raise :class:`BreakerOpen` when the tenant is shedding."""
        remaining = self.open_for(tenant, now=now)
        if remaining > 0:
            raise BreakerOpen(
                f"tenant {tenant!r} circuit is open after "
                f"{self._strikes.get(tenant, 0)} consecutive run deaths; "
                f"retry in {remaining:.1f}s",
                retry_after=remaining,
            )

    def state(self, *, now: float) -> List[Dict[str, object]]:
        """Per-tenant circuit state for ``/v1/healthz``."""
        out: List[Dict[str, object]] = []
        for tenant in sorted(self._strikes):
            strikes = self._strikes[tenant]
            out.append(
                {
                    "tenant": tenant,
                    "strikes": strikes,
                    "open": strikes >= self.threshold
                    and (now - self._last_death.get(tenant, now))
                    < self.cooldown,
                }
            )
        return out
