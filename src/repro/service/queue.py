"""Fair-share multi-tenant admission queue for the benchmark service.

LDBC frames Graphalytics as a community service: many platform teams
drive one harness concurrently. That only works if no tenant can
monopolize it — a tenant flooding the queue must not starve another
tenant's single run, and a tenant over its quota must be pushed back
*at submission time* with a standard retry signal rather than silently
buffered forever.

:class:`FairShareQueue` implements both properties with two mechanisms:

* **round-robin dispatch across tenants** — :meth:`acquire` scans
  tenants in rotation order starting *after* the tenant served last, so
  a newly arrived tenant is reached within one job-slot turnover no
  matter how deep another tenant's backlog is;
* **per-tenant admission limits** — at most ``per_tenant_depth`` queued
  runs and ``per_tenant_running`` concurrently executing runs per
  tenant; an over-depth submission raises :class:`QuotaExceeded`, which
  the HTTP layer maps to ``429 Too Many Requests`` with a
  ``Retry-After`` header.

The queue is plain single-threaded state: the asyncio server calls it
only from the event loop, so no locking is needed.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.exceptions import GraphalyticsError

__all__ = ["QuotaExceeded", "FairShareQueue"]


class QuotaExceeded(GraphalyticsError):
    """A tenant hit its queue-depth quota; retry after a backoff."""

    def __init__(self, message: str, *, retry_after: float):
        super().__init__(message)
        self.retry_after = retry_after


class FairShareQueue:
    """Round-robin, quota-bounded run queue over named tenants."""

    def __init__(
        self,
        *,
        per_tenant_depth: int = 4,
        per_tenant_running: int = 1,
        retry_after: float = 2.0,
    ):
        if per_tenant_depth < 1 or per_tenant_running < 1:
            raise GraphalyticsError(
                "per-tenant depth and running quotas must be >= 1"
            )
        self.per_tenant_depth = per_tenant_depth
        self.per_tenant_running = per_tenant_running
        self.retry_after = retry_after
        self._pending: Dict[str, Deque[str]] = {}
        self._running: Dict[str, int] = {}
        #: Tenants in first-appearance order; the round-robin rotation.
        self._order: List[str] = []
        self._cursor = 0
        self.accepted = 0
        self.rejected = 0

    # -- admission ---------------------------------------------------------

    def submit(self, tenant: str, run_id: str, *, force: bool = False) -> None:
        """Admit one run, or raise :class:`QuotaExceeded` at the cap.

        ``force`` bypasses the depth quota; the server uses it on boot
        to re-enqueue interrupted runs it already admitted once —
        restart recovery must never drop previously accepted work.
        """
        queue = self._pending.setdefault(tenant, deque())
        if tenant not in self._order:
            self._order.append(tenant)
        if not force and len(queue) >= self.per_tenant_depth:
            self.rejected += 1
            raise QuotaExceeded(
                f"tenant {tenant!r} already has {len(queue)} queued run(s) "
                f"(quota {self.per_tenant_depth}); retry after "
                f"{self.retry_after:g} s",
                retry_after=self.retry_after,
            )
        queue.append(run_id)
        self.accepted += 1

    # -- dispatch ----------------------------------------------------------

    def acquire(self) -> Optional[Tuple[str, str]]:
        """The next ``(tenant, run_id)`` to execute, fairly chosen.

        Scans the tenant rotation starting after the previously served
        tenant and returns the first tenant with pending work below its
        running quota; advances the rotation so repeated calls
        interleave tenants. ``None`` when nothing is dispatchable.
        """
        if not self._order:
            return None
        count = len(self._order)
        for step in range(count):
            idx = (self._cursor + step) % count
            tenant = self._order[idx]
            queue = self._pending.get(tenant)
            if not queue:
                continue
            if self._running.get(tenant, 0) >= self.per_tenant_running:
                continue
            run_id = queue.popleft()
            self._running[tenant] = self._running.get(tenant, 0) + 1
            self._cursor = (idx + 1) % count
            return tenant, run_id
        return None

    def release(self, tenant: str) -> None:
        """A run of ``tenant`` finished; frees one running slot."""
        current = self._running.get(tenant, 0)
        self._running[tenant] = max(0, current - 1)

    # -- introspection -----------------------------------------------------

    def pending(self, tenant: Optional[str] = None) -> int:
        if tenant is not None:
            return len(self._pending.get(tenant, ()))
        return sum(len(queue) for queue in self._pending.values())

    def running(self, tenant: Optional[str] = None) -> int:
        if tenant is not None:
            return self._running.get(tenant, 0)
        return sum(self._running.values())

    def stats(self) -> Dict[str, object]:
        return {
            "tenants": len(self._order),
            "pending": self.pending(),
            "running": self.running(),
            "accepted": self.accepted,
            "rejected": self.rejected,
            "per_tenant_depth": self.per_tenant_depth,
            "per_tenant_running": self.per_tenant_running,
        }
