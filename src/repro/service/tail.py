"""Live tailing of a run's write-ahead journal for SSE streaming.

The service streams a run's progress by following the very file the
crash-safety layer already writes: ``<run_dir>/journal.jsonl``. That
file has two properties a naive ``tail -f`` would trip over:

* the final line may be **torn** at any instant — the run process was
  SIGKILLed mid-append, or the reader raced the writer's flush. Every
  line carries the journal's CRC-32, so the tailer reuses the journal's
  own line decoder (:func:`repro.runtime.journal._decode_line` via
  :data:`decode_journal_line`) and simply refuses to advance past a
  line that fails its check — the next poll re-reads it once the
  writer completes (or a recovery truncates) it;
* on resume, torn-tail recovery **atomically rewrites** the file
  (new inode, possibly shorter) before appending continues. The tailer
  detects the replacement by inode change / size shrink, re-reads from
  the start, and skips as many valid records as it already emitted —
  the recovery rewrite preserves the good prefix verbatim, so the skip
  count realigns the stream with no duplicates and no drops.

``tests/service/test_tail.py`` proves both properties record by record.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.runtime.journal import _decode_line

__all__ = ["decode_journal_line", "JournalTailer"]

#: The CRC-checked journal line decoder: bytes (with newline) -> record
#: dict, or ``None`` for a torn/corrupt line.
decode_journal_line = _decode_line


class JournalTailer:
    """Incremental, torn-tail-safe reader of an append-only JSONL log.

    Call :meth:`poll` repeatedly; each call returns the records that
    became readable since the last call, in order, each exactly once —
    across writer crashes, torn tails, and the atomic recovery rewrite.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        skip: int = 0,
        decode: Optional[Callable[[bytes], Optional[Dict[str, object]]]] = None,
    ):
        self.path = Path(path)
        self._decode = decode or decode_journal_line
        self._offset = 0          # bytes of the file already consumed
        self._emitted = 0         # records handed out so far
        #: Valid records to swallow before emitting anything — a
        #: reconnecting SSE client passes the count it already
        #: received, and the stream resumes without duplicates.
        self._skip = skip
        #: Records consumed in any way (skipped + emitted): the replay
        #: count a recovery rewrite must swallow, since the preserved
        #: good prefix contains the skipped records too.
        self._consumed = 0
        self._inode: Optional[int] = None

    @property
    def emitted(self) -> int:
        return self._emitted

    def poll(self) -> List[Dict[str, object]]:
        """Every new complete, CRC-valid record since the last poll."""
        try:
            stat = os.stat(self.path)
        except FileNotFoundError:
            return []
        replay = 0
        if self._inode is not None and (
            stat.st_ino != self._inode or stat.st_size < self._offset
        ):
            # Atomic rewrite (torn-tail recovery) replaced the file.
            # The good prefix is preserved byte-for-byte, so re-read
            # from the start and swallow the records already consumed.
            self._offset = 0
            replay = self._consumed
        self._inode = stat.st_ino
        if stat.st_size <= self._offset:
            return []
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            raw = handle.read()
        out: List[Dict[str, object]] = []
        cursor = 0
        while cursor < len(raw):
            newline = raw.find(b"\n", cursor)
            if newline < 0:
                break  # incomplete final line: re-read next poll
            chunk = raw[cursor: newline + 1]
            record = self._decode(chunk)
            if record is None:
                # Torn or corrupt line: never emit, never advance past
                # it. If recovery truncates it, the rewrite detection
                # above realigns us; if the writer completes it, the
                # re-read decodes it whole.
                break
            cursor = newline + 1
            self._offset += len(chunk)
            if replay > 0:
                # Already consumed before the rewrite: not re-counted.
                replay -= 1
                continue
            self._consumed += 1
            if self._skip > 0:
                self._skip -= 1
                continue
            out.append(record)
            self._emitted += 1
        return out
