"""Benchmark-as-a-service: the asyncio HTTP server.

The paper positions Graphalytics as a *community* benchmark — many
platform teams submitting runs against one harness. This server is that
deployment shape: a long-lived process that accepts benchmark matrices
over HTTP, executes them through the crash-safe runtime, and streams
progress back live.

Surface (see docs/service.md for the full API):

* ``POST /v1/runs`` — submit a matrix; validated against the dataset
  and platform registries, admitted through the fair-share tenant
  queue (``429`` + ``Retry-After`` over quota), spooled durably, and
  executed in a child process;
* ``GET /v1/runs`` / ``GET /v1/runs/<id>`` — run listing and per-run
  state with the SLA-breach summary;
* ``GET /v1/runs/<id>/events`` — the run's journal records and trace
  spans as server-sent events, live-tailed from the files the runtime
  writes;
* ``GET /v1/runs/<id>/results|archive|trace`` — finished artifacts;
* ``GET /v1/status`` — queue and scheduler statistics.

Every handler is ``async`` and every blocking filesystem touch goes
through :func:`asyncio.to_thread` — the event loop never waits on disk
(lint rule SRV001 enforces this shape for all handlers under
``repro.service``). On boot the server rescans its spool and re-enqueues
every run without an ``outcome.json``; the child re-executes it with
journal resume, so a SIGKILLed server finishes its work after restart.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import re
import shutil
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Awaitable, Callable, Dict, List, Optional, Tuple, Union

from repro.exceptions import ConfigurationError, GraphalyticsError
from repro.faults import FaultPointError, IoFaultPlan
from repro.service.http import (
    EventStream,
    ProtocolError,
    Request,
    Response,
    error_response,
    json_response,
    read_request,
    write_response,
)
from repro.service.queue import FairShareQueue, QuotaExceeded
from repro.service.runs import (
    QUARANTINED,
    QUEUED,
    RUNNING,
    RunRecord,
    RunRegistry,
)
from repro.service.supervise import (
    BreakerOpen,
    RetryPolicy,
    TenantBreaker,
    record_attempt,
    write_quarantine,
)
from repro.service.tail import JournalTailer
from repro.service.worker import execute_service_run
from repro.trace import current_tracer

__all__ = ["ServiceConfig", "BenchmarkService"]

_Handler = Callable[..., Awaitable[Optional[Response]]]


@dataclass
class ServiceConfig:
    """Deployment knobs of one service instance."""

    spool: Union[str, Path] = "service-spool"
    host: str = "127.0.0.1"
    port: int = 8735
    #: Worker request forwarded to each run child ("auto" = host CPUs).
    workers: Union[int, str] = "auto"
    #: Per-job wall-clock budget forwarded to each run child.
    job_timeout: Optional[float] = None
    #: Global cap on concurrently executing runs.
    max_running: int = 2
    #: Per-tenant admission quotas (see FairShareQueue).
    per_tenant_depth: int = 4
    per_tenant_running: int = 1
    retry_after: float = 2.0
    #: SSE tail poll interval (seconds).
    poll_interval: float = 0.05
    #: Supervision: launches per run before quarantine (across
    #: restarts — the attempt ledger is durable), and the base of the
    #: exponential relaunch backoff (scheduler-shaped: base * 2^(n-1)).
    run_attempts: int = 3
    run_backoff_base: float = 0.5
    #: Circuit breaker: consecutive child deaths that open a tenant's
    #: circuit, and how long it sheds submissions (503 + Retry-After).
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    #: Default shard count for pythonref jobs, applied to submitted
    #: matrices that do not choose one themselves ("auto" = run-child
    #: host CPUs; None = single-process engines).
    partitions: Union[int, str, None] = None
    partition_strategy: str = "hash"

    def __post_init__(self):
        if self.max_running < 1:
            raise ConfigurationError("max_running must be >= 1")
        if self.poll_interval <= 0:
            raise ConfigurationError("poll_interval must be positive")
        if self.run_attempts < 1:
            raise ConfigurationError("run_attempts must be >= 1")
        if self.breaker_threshold < 1:
            raise ConfigurationError("breaker_threshold must be >= 1")


class BenchmarkService:
    """One service instance: registry + queue + scheduler + HTTP front."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.registry = RunRegistry(self.config.spool)
        self.queue = FairShareQueue(
            per_tenant_depth=self.config.per_tenant_depth,
            per_tenant_running=self.config.per_tenant_running,
            retry_after=self.config.retry_after,
        )
        self._routes: List[Tuple[str, "re.Pattern[str]", _Handler]] = []
        self._children: Dict[str, multiprocessing.process.BaseProcess] = {}
        self._monitors: List[asyncio.Task] = []
        self._wake: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopping = False
        self.address: Optional[Tuple[str, int]] = None
        self.retry_policy = RetryPolicy(
            max_attempts=self.config.run_attempts,
            backoff_base=self.config.run_backoff_base,
        )
        self.breaker = TenantBreaker(
            threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown,
        )
        self._add_route("POST", "/v1/runs", self._handle_submit)
        self._add_route("GET", "/v1/runs", self._handle_list)
        self._add_route("GET", "/v1/status", self._handle_status)
        self._add_route("GET", "/v1/healthz", self._handle_healthz)
        self._add_route("GET", r"/v1/runs/(?P<run_id>[^/]+)", self._handle_run)
        self._add_route(
            "GET", r"/v1/runs/(?P<run_id>[^/]+)/events", self._handle_events
        )
        self._add_route(
            "GET",
            r"/v1/runs/(?P<run_id>[^/]+)"
            r"/(?P<artifact>results|archive|trace|outcome|quarantine)",
            self._handle_artifact,
        )

    def _add_route(self, method: str, pattern: str, handler: _Handler) -> None:
        """Register one route; the lint project model treats every
        handler registered here as an async-entrypoint root (SRV001)."""
        self._routes.append((method, re.compile(f"^{pattern}$"), handler))

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Boot: recover the spool, start the scheduler and the listener."""
        self._wake = asyncio.Event()
        resumable = self.registry.scan()
        for record in resumable:
            # Boot recovery routes through the same supervision
            # decision as an in-life child death: a run that already
            # burned its attempt budget is quarantined, not relaunched
            # — this is what bounds a poison run's crash loop. Runs
            # inside their budget are re-enqueued unconditionally
            # (restart recovery must not re-apply admission quotas).
            await self._supervise(
                record,
                reason=(
                    f"attempt budget exhausted "
                    f"({record.attempts}/{self.config.run_attempts} "
                    f"launches) with no outcome; quarantined at boot"
                ),
                backoff=False,
            )
        self._scheduler = asyncio.ensure_future(self._dispatch_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: stop listening, terminate run children."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._wake is not None:
            self._wake.set()
        self._scheduler.cancel()
        try:
            await self._scheduler
        except asyncio.CancelledError:
            pass
        for proc in list(self._children.values()):
            if proc.is_alive():
                proc.terminate()
        for task in self._monitors:
            task.cancel()
        await asyncio.gather(*self._monitors, return_exceptions=True)

    # -- scheduler ---------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        """Fair-share dispatch: fill run slots, then wait for a change."""
        assert self._wake is not None
        while not self._stopping:
            while len(self._children) < self.config.max_running:
                item = self.queue.acquire()
                if item is None:
                    break
                tenant, run_id = item
                self._launch(tenant, run_id)
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=1.0)
            except asyncio.TimeoutError:
                pass

    def _launch(self, tenant: str, run_id: str) -> None:
        record = self.registry.records[run_id]
        record.attempts += 1
        try:
            # Durable *before* the child starts: if the server dies
            # mid-run, the restarted boot scan still counts this
            # launch against the budget.
            record_attempt(
                self.registry.run_dir(run_id),
                record.attempts,
                at=current_tracer().clock.now(),
            )
        except OSError as exc:
            warnings.warn(
                f"could not persist attempt ledger for {run_id}: {exc}; "
                f"supervision degrades to this server's lifetime",
                RuntimeWarning,
                stacklevel=2,
            )
        record.state = RUNNING
        record.started_at = current_tracer().clock.now()
        proc = multiprocessing.Process(
            target=execute_service_run,
            args=(str(self.registry.run_dir(run_id)),),
            kwargs={
                "workers": record.workers or self.config.workers,
                "job_timeout": record.job_timeout or self.config.job_timeout,
            },
            name=f"service-run-{run_id}",
        )
        proc.start()
        self._children[run_id] = proc
        self._monitors.append(
            asyncio.ensure_future(self._monitor(tenant, run_id, proc))
        )

    async def _monitor(
        self, tenant: str, run_id: str, proc: multiprocessing.process.BaseProcess
    ) -> None:
        """Wait (off-loop) for one run child; settle or supervise it.

        A child that wrote ``outcome.json`` is terminal (the outcome is
        the commit point, ``ok`` or not) and closes the tenant's
        breaker circuit — a clean exit, even a failing one, proves the
        tenant's runs are not *dying*. A child that exited without one
        died mid-run: that is a breaker strike, and the run goes
        through the supervision decision (relaunch with backoff, or
        quarantine when the attempt budget is spent).
        """
        await asyncio.to_thread(proc.join)
        record = self.registry.records[run_id]
        outcome = await asyncio.to_thread(self.registry.load_outcome, run_id)
        now = current_tracer().clock.now()
        self._children.pop(run_id, None)
        self.queue.release(tenant)
        if outcome is not None:
            record.outcome = outcome
            record.finished_at = now
            if outcome.get("ok"):
                record.state = "done"
            else:
                record.state = "failed"
                record.error = str(outcome.get("error", ""))
            self.breaker.record_success(tenant)
        elif self._stopping:
            # Graceful shutdown terminated the child mid-run. Not a
            # death: no strike, no budget decision — the next boot
            # scan re-enqueues it (its launch is already in the
            # ledger, so the budget still counts the interrupted
            # attempt).
            record.state = QUEUED
        else:
            self.breaker.record_death(tenant, now=now)
            await self._supervise(
                record,
                reason=(
                    f"run child exited with code {proc.exitcode} and "
                    f"no outcome (attempt {record.attempts}/"
                    f"{self.config.run_attempts})"
                ),
                backoff=True,
            )
        if self._wake is not None:
            self._wake.set()

    # -- supervision -------------------------------------------------------

    async def _supervise(
        self, record: RunRecord, *, reason: str, backoff: bool
    ) -> None:
        """THE run-recovery decision, for deaths and boot scans alike.

        Within budget: back on the queue (after the scheduler-shaped
        exponential backoff for in-life deaths; immediately at boot —
        the old server's death already was the pause). Budget spent:
        quarantine — durable, terminal, visible.
        """
        if self.retry_policy.exhausted(record.attempts):
            await asyncio.to_thread(self._quarantine, record, reason)
            return
        record.state = QUEUED
        record.error = reason
        delay = (
            self.retry_policy.backoff(record.attempts)
            if backoff and record.attempts > 0
            else 0.0
        )
        if delay > 0:
            self._monitors.append(
                asyncio.ensure_future(self._requeue_later(record, delay))
            )
        else:
            self.queue.submit(record.tenant, record.run_id, force=True)

    async def _requeue_later(self, record: RunRecord, delay: float) -> None:
        """Exponential-backoff relaunch of a run whose child died."""
        await asyncio.sleep(delay)
        if self._stopping:
            return
        self.queue.submit(record.tenant, record.run_id, force=True)
        if self._wake is not None:
            self._wake.set()

    def _quarantine(self, record: RunRecord, reason: str) -> None:
        """Write ``quarantine.json`` and settle the record terminally."""
        payload = {
            "run_id": record.run_id,
            "tenant": record.tenant,
            "attempts": record.attempts,
            "budget": self.config.run_attempts,
            "reason": reason,
            "quarantined_at": current_tracer().clock.now(),
        }
        write_quarantine(self.registry.run_dir(record.run_id), payload)
        record.quarantine = payload
        record.state = QUARANTINED
        record.error = reason
        record.finished_at = current_tracer().clock.now()

    # -- HTTP front --------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader)
            except ProtocolError as exc:
                await write_response(writer, error_response(400, str(exc)))
                return
            if request is None:
                return
            response = await self._dispatch(request, writer)
            if response is not None:
                await write_response(writer, response)
        except (ConnectionError, asyncio.CancelledError):
            pass  # peer went away; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> Optional[Response]:
        path_exists = False
        for method, pattern, handler in self._routes:
            match = pattern.match(request.path)
            if match is None:
                continue
            path_exists = True
            if method != request.method:
                continue
            try:
                return await handler(request, writer, **match.groupdict())
            except QuotaExceeded as exc:
                return error_response(
                    429, str(exc),
                    **{"Retry-After": f"{exc.retry_after:g}"},
                )
            except BreakerOpen as exc:
                return error_response(
                    503, str(exc),
                    **{"Retry-After": f"{exc.retry_after:g}"},
                )
            except ProtocolError as exc:
                return error_response(400, str(exc))
            except ConfigurationError as exc:
                return error_response(400, str(exc))
            except GraphalyticsError as exc:
                return error_response(500, str(exc))
        if path_exists:
            return error_response(405, f"method {request.method} not allowed")
        return error_response(404, f"no route for {request.path}")

    # -- handlers ----------------------------------------------------------

    async def _handle_submit(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> Response:
        body = request.json()
        if not isinstance(body, dict):
            raise ProtocolError("submission must be a JSON object")
        tenant = str(
            body.get("tenant") or request.headers.get("x-tenant") or ""
        )
        # Shed before spooling: an open circuit costs the tenant one
        # 503, not a spool directory.
        self.breaker.check(tenant, now=current_tracer().clock.now())
        matrix = body.get("matrix")
        if matrix is None:
            raise ProtocolError("submission lacks a 'matrix' object")
        if (
            self.config.partitions is not None
            and isinstance(matrix, dict)
            and matrix.get("partitions") is None
        ):
            # Service-wide partitioning default; an explicit choice in
            # the submitted matrix always wins.
            matrix = {
                **matrix,
                "partitions": self.config.partitions,
                "partition_strategy": self.config.partition_strategy,
            }
        chaos = body.get("chaos")
        if chaos is not None:
            if not isinstance(chaos, dict):
                raise ProtocolError("'chaos' must be a JSON object")
            try:
                # Round-trip through the plan class: unknown fault
                # points and malformed rules become a 400 here, not a
                # crash-looping child.
                chaos = IoFaultPlan.from_dict(chaos).as_dict()
            except (FaultPointError, KeyError, TypeError, ValueError) as exc:
                raise ProtocolError(f"invalid chaos plan: {exc}")
        workers = body.get("workers", self.config.workers)
        job_timeout = body.get("job_timeout", self.config.job_timeout)
        record = await asyncio.to_thread(
            self.registry.create,
            tenant,
            matrix,
            workers=workers,
            job_timeout=job_timeout,
            submitted_at=current_tracer().clock.now(),
            chaos=chaos,
        )
        try:
            self.queue.submit(tenant, record.run_id)
        except QuotaExceeded:
            # Rejected after spooling: mark the directory terminal so a
            # restart does not resurrect a run the client was told to
            # retry.
            record.state = "failed"
            record.error = "rejected: tenant queue-depth quota"
            await asyncio.to_thread(
                self._write_rejection, record.run_id, record.error
            )
            raise
        if self._wake is not None:
            self._wake.set()
        return json_response(
            {
                "run_id": record.run_id,
                "state": record.state,
                "pending": self.queue.pending(tenant),
                "events": f"/v1/runs/{record.run_id}/events",
            },
            status=202,
        )

    def _write_rejection(self, run_id: str, reason: str) -> None:
        from repro.ioutil import atomic_write
        from repro.service.runs import OUTCOME_NAME

        atomic_write(
            self.registry.run_dir(run_id) / OUTCOME_NAME,
            json.dumps({"ok": False, "error": reason}, indent=1),
            fault_point="service.spool.outcome",
        )

    async def _handle_list(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> Response:
        tenant = request.query.get("tenant")
        runs = [
            record.status_payload()
            for record in self.registry.records.values()
            if tenant is None or record.tenant == tenant
        ]
        runs.sort(key=lambda payload: str(payload["run_id"]))
        return json_response({"runs": runs})

    async def _handle_status(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> Response:
        return json_response(
            {
                "queue": self.queue.stats(),
                "children": len(self._children),
                "max_running": self.config.max_running,
                "spool": str(self.registry.spool),
            }
        )

    async def _handle_healthz(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> Response:
        """Liveness + degradation: queue depth, disk headroom, breaker
        circuits, quarantined runs, and durability-downgrade flags.

        ``status`` is ``"ok"`` only when nothing is shedding, nothing
        is quarantined, and no completed run reported a durability
        downgrade — a load balancer can alert on the word while
        operators read the detail.
        """
        now = current_tracer().clock.now()
        usage = await asyncio.to_thread(
            shutil.disk_usage, str(self.registry.spool)
        )
        store_stats = await asyncio.to_thread(
            _store_stats, self.registry.spool
        )
        breakers = self.breaker.state(now=now)
        quarantined = sorted(
            record.run_id
            for record in self.registry.records.values()
            if record.state == QUARANTINED
        )
        degraded_runs = {
            record.run_id: record.outcome["degraded"]
            for record in sorted(
                self.registry.records.values(), key=lambda r: r.run_id
            )
            if record.outcome is not None and record.outcome.get("degraded")
        }
        healthy = (
            not quarantined
            and not degraded_runs
            and not any(circuit["open"] for circuit in breakers)
        )
        return json_response(
            {
                "status": "ok" if healthy else "degraded",
                "queue": self.queue.stats(),
                "children": len(self._children),
                "max_running": self.config.max_running,
                "disk": {
                    "total_bytes": usage.total,
                    "free_bytes": usage.free,
                },
                "breakers": breakers,
                "quarantined": quarantined,
                "degraded_runs": degraded_runs,
                "results_store": store_stats,
            }
        )

    def _record_or_none(self, run_id: str) -> Optional[RunRecord]:
        try:
            return self.registry.records.get(run_id)
        except KeyError:  # pragma: no cover - dict.get never raises
            return None

    async def _handle_run(
        self, request: Request, writer: asyncio.StreamWriter, run_id: str
    ) -> Response:
        record = self._record_or_none(run_id)
        if record is None:
            return error_response(404, f"unknown run {run_id!r}")
        return json_response(record.status_payload())

    async def _handle_artifact(
        self,
        request: Request,
        writer: asyncio.StreamWriter,
        run_id: str,
        artifact: str,
    ) -> Response:
        record = self._record_or_none(run_id)
        if record is None:
            return error_response(404, f"unknown run {run_id!r}")
        path = self.registry.artifact_path(run_id, artifact)
        body = await asyncio.to_thread(_read_artifact, path)
        if body is None:
            return error_response(
                404, f"run {run_id!r} has no {artifact} artifact (yet)"
            )
        content_type = (
            "application/json" if path.suffix == ".json"
            else "application/x-ndjson"
        )
        return Response(status=200, body=body, content_type=content_type)

    async def _handle_events(
        self, request: Request, writer: asyncio.StreamWriter, run_id: str
    ) -> Optional[Response]:
        """Stream the run's journal, then its trace spans, as SSE."""
        record = self._record_or_none(run_id)
        if record is None:
            return error_response(404, f"unknown run {run_id!r}")
        try:
            offset = int(request.query.get("offset", "0"))
        except ValueError:
            return error_response(400, "offset must be an integer")
        if offset < 0:
            return error_response(400, "offset must be >= 0")
        stream = EventStream(writer)
        await stream.open()
        await stream.send("run", record.status_payload())
        # ``offset`` journal records were already delivered on a prior
        # connection; the tailer swallows them so a reconnecting
        # watcher resumes exactly where its stream dropped.
        tailer = JournalTailer(
            self.registry.run_dir(run_id) / "journal.jsonl", skip=offset
        )
        idle_polls = 0
        while True:
            records = await asyncio.to_thread(tailer.poll)
            for journal_record in records:
                await stream.send("journal", journal_record)
            if records:
                idle_polls = 0
                continue
            if record.terminal:
                break
            idle_polls += 1
            if idle_polls % 200 == 0:
                await stream.ping()
            await asyncio.sleep(self.config.poll_interval)
        trace_path = self.registry.artifact_path(run_id, "trace")
        spans = await asyncio.to_thread(_load_trace_spans, trace_path)
        for span in spans:
            await stream.send("span", span)
        await stream.send("end", record.status_payload())
        return None  # the stream was the response


def _store_stats(spool: Path) -> Dict[str, object]:
    """The spool results-store statistics for ``/v1/healthz``.

    Run children create ``<spool>/results.db`` at their terminal
    commit; before any run has finished the store does not exist and
    healthz reports zeros without creating the file. Runs on a
    ``to_thread`` worker: opening and counting is filesystem work the
    event loop must not wait on.
    """
    from repro.resultsdb.store import STORE_NAME, ResultsStore

    path = spool / STORE_NAME
    if not path.exists():
        return {
            "path": str(path), "runs": 0, "jobs": 0, "spans": 0,
            "sla_breaches": 0, "db_bytes": 0,
        }
    with ResultsStore(path) as store:
        return store.stats()


def _read_artifact(path: Path) -> Optional[bytes]:
    """Read one servable artifact; ``None`` when absent."""
    try:
        with open(path, "rb") as handle:
            return handle.read()
    except FileNotFoundError:
        return None


def _load_trace_spans(path: Path) -> List[Dict[str, object]]:
    """The run's exported spans as plain dicts (empty when untraced)."""
    from repro.trace import read_trace

    try:
        spans, _counters = read_trace(path)
    except (FileNotFoundError, json.JSONDecodeError):
        return []
    return [span.as_dict() for span in spans]
