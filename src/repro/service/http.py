"""A hand-rolled asyncio HTTP/1.1 + SSE layer (no dependencies).

The benchmark service needs exactly four HTTP shapes: small JSON
requests, small JSON responses, large file responses, and long-lived
``text/event-stream`` responses. A full web framework buys nothing the
stdlib does not already provide for that surface, and the container
rule is "no new dependencies" — so this module implements the minimal
subset directly over :mod:`asyncio` streams:

* :func:`read_request` parses one request (request line, headers, a
  ``Content-Length``-delimited body) with hard caps on header and body
  size;
* :class:`Response` + :func:`write_response` render one
  ``Connection: close`` response — the service speaks strictly
  one-request-per-connection, which keeps connection state trivial and
  makes every client retry-safe;
* :class:`EventStream` writes server-sent events (the ``event:`` /
  ``data:`` framing browsers and ``graphalytics watch`` both
  understand) over a response that never ends until the producer says
  so.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional
from urllib.parse import parse_qsl, urlsplit

from repro.exceptions import GraphalyticsError

__all__ = [
    "MAX_BODY_BYTES",
    "ProtocolError",
    "Request",
    "Response",
    "EventStream",
    "read_request",
    "write_response",
    "json_response",
    "error_response",
]

#: Upper bound on a request body; a benchmark matrix is a few KB.
MAX_BODY_BYTES = 4 * 2**20
#: Upper bound on the request head (request line + headers).
MAX_HEAD_BYTES = 32 * 2**10

_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(GraphalyticsError):
    """The peer sent something that is not parseable HTTP/1.1."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""

    def json(self) -> object:
        """The request body as JSON; raises :class:`ProtocolError`."""
        if not self.body:
            raise ProtocolError("request body is empty, expected JSON")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}")


@dataclass
class Response:
    """One response, rendered with ``Connection: close`` semantics."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    def render(self) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            "Connection: close",
        ]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        head = "\r\n".join(lines) + "\r\n\r\n"
        return head.encode("utf-8") + self.body


def json_response(payload: object, status: int = 200, **headers: str) -> Response:
    body = (json.dumps(payload, indent=1, sort_keys=True) + "\n").encode("utf-8")
    return Response(status=status, body=body, headers=dict(headers))


def error_response(status: int, message: str, **headers: str) -> Response:
    return json_response({"error": message}, status=status, **headers)


async def read_request(
    reader: asyncio.StreamReader, *, max_body: int = MAX_BODY_BYTES
) -> Optional[Request]:
    """Parse one request from the stream; ``None`` on clean EOF.

    Raises :class:`ProtocolError` on malformed input; the connection
    handler turns that into a 400 and closes.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # peer closed without sending a request
        raise ProtocolError("connection closed mid-request-head")
    except asyncio.LimitOverrunError:
        raise ProtocolError(f"request head exceeds {MAX_HEAD_BYTES} bytes")
    if len(head) > MAX_HEAD_BYTES:
        raise ProtocolError(f"request head exceeds {MAX_HEAD_BYTES} bytes")
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
        raise ProtocolError("request head is not decodable")
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    query = {key: value for key, value in parse_qsl(split.query)}
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        if ":" not in line:
            raise ProtocolError(f"malformed header line {line!r}")
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(f"malformed Content-Length {length_text!r}")
    if length < 0 or length > max_body:
        raise ProtocolError(f"request body of {length} bytes exceeds the cap")
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError("connection closed mid-body")
    return Request(
        method=method, path=split.path, query=query, headers=headers, body=body
    )


async def write_response(
    writer: asyncio.StreamWriter, response: Response
) -> None:
    writer.write(response.render())
    await writer.drain()


class EventStream:
    """A server-sent-events response held open by the handler.

    Call :meth:`open` once (writes the response head), then
    :meth:`send` per event. The SSE framing is the standard one — an
    ``event:`` line naming the record type, a ``data:`` line carrying
    one JSON document, and a blank separator line.
    """

    def __init__(self, writer: asyncio.StreamWriter):
        self._writer = writer
        self.events_sent = 0

    async def open(self) -> None:
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        self._writer.write(head.encode("utf-8"))
        await self._writer.drain()

    async def send(self, event: str, data: object) -> None:
        payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
        frame = f"event: {event}\ndata: {payload}\n\n"
        self._writer.write(frame.encode("utf-8"))
        await self._writer.drain()
        self.events_sent += 1

    async def ping(self) -> None:
        """A comment frame: keeps idle proxies from timing the stream out."""
        self._writer.write(b": ping\n\n")
        await self._writer.drain()
