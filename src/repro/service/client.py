"""Blocking client for the benchmark service (stdlib ``http.client``).

The CLI's ``submit``/``watch``/``fetch`` subcommands, the tests, and
the service benchmark all talk to the server through this one wrapper.
It deliberately mirrors the service's connection model — one request
per connection, ``Connection: close`` — so a client never has to
reason about keep-alive state, and :meth:`ServiceClient.events`
exposes the SSE stream as a plain generator of ``(event, payload)``
pairs.

Resilience is opt-in and bounded: :meth:`ServiceClient.submit` retries
``429``/``503`` (honoring ``Retry-After``) and connection resets up to
a caller-set budget with deterministic capped exponential backoff, and
:meth:`ServiceClient.watch_events` survives dropped SSE streams by
reconnecting with its last-seen journal offset — the server-side
tailer skip makes the resumed stream duplicate-free. All waiting goes
through the injectable clock, so retry schedules are testable under a
``FakeClock`` without wall-time.
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, Iterator, Optional, Tuple

from repro.exceptions import GraphalyticsError

__all__ = ["ServiceError", "ServiceClient"]

#: Statuses worth re-asking: admission backpressure (429) and breaker
#: shedding (503). Anything else is the caller's bug or the server's.
_RETRYABLE_STATUSES = frozenset({429, 503})

#: Ceiling on any single retry/reconnect delay (seconds) — honoring a
#: hostile or confused ``Retry-After: 86400`` should not hang the CLI.
_MAX_DELAY = 30.0

#: Transport failures worth retrying: refused/reset connections and
#: malformed in-flight responses (the server died mid-reply).
_TRANSPORT_ERRORS = (OSError, http.client.HTTPException)


class ServiceError(GraphalyticsError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str, *, retry_after: Optional[float] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after


class ServiceClient:
    """Talks to one service instance at ``host:port``.

    ``clock`` (anything with ``sleep``) is the retry/reconnect timing
    authority; ``None`` defers to the tracer clock at call time, which
    a ``FakeClock`` test can swap without touching this object.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 60.0,
        retry_backoff: float = 0.25,
        clock=None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry_backoff = retry_backoff
        self._clock = clock

    def _sleep(self, seconds: float) -> None:
        clock = self._clock
        if clock is None:
            from repro.trace import current_tracer

            clock = current_tracer().clock
        clock.sleep(seconds)

    def _delay(self, attempt: int, retry_after: Optional[float]) -> float:
        """Deterministic capped backoff; server hints win (capped)."""
        if retry_after is not None and retry_after > 0:
            return min(retry_after, _MAX_DELAY)
        return min(self.retry_backoff * (2 ** attempt), _MAX_DELAY)

    # -- plumbing ----------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            return (
                response.status,
                {k.lower(): v for k, v in response.getheaders()},
                data,
            )
        finally:
            conn.close()

    def _json(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        status, headers, data = self._request(method, path, payload)
        try:
            decoded = json.loads(data.decode("utf-8")) if data else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            decoded = {}
        if status >= 400:
            retry_after = headers.get("retry-after")
            raise ServiceError(
                status,
                str(decoded.get("error", data[:200])),
                retry_after=float(retry_after) if retry_after else None,
            )
        return decoded

    # -- API ---------------------------------------------------------------

    def submit(
        self,
        tenant: str,
        matrix: Dict[str, object],
        *,
        workers: Optional[object] = None,
        job_timeout: Optional[float] = None,
        chaos: Optional[Dict[str, object]] = None,
        retries: int = 0,
    ) -> Dict[str, object]:
        """``POST /v1/runs``; raises :class:`ServiceError` on 4xx/5xx.

        With ``retries=N`` a quota rejection (429), breaker shedding
        (503), or transport failure is retried up to N times, sleeping
        the server's ``Retry-After`` when it sent one and a capped
        exponential backoff otherwise. Other errors (400s, 500) raise
        immediately — retrying a malformed matrix cannot fix it.
        ``chaos`` attaches a seeded I/O fault plan
        (:meth:`~repro.faults.IoFaultPlan.as_dict` payload) the run
        child installs before executing.
        """
        payload: Dict[str, object] = {"tenant": tenant, "matrix": matrix}
        if workers is not None:
            payload["workers"] = workers
        if job_timeout is not None:
            payload["job_timeout"] = job_timeout
        if chaos is not None:
            payload["chaos"] = chaos
        attempt = 0
        while True:
            try:
                return self._json("POST", "/v1/runs", payload)
            except ServiceError as exc:
                if exc.status not in _RETRYABLE_STATUSES or attempt >= retries:
                    raise
                delay = self._delay(attempt, exc.retry_after)
            except _TRANSPORT_ERRORS:
                if attempt >= retries:
                    raise
                delay = self._delay(attempt, None)
            attempt += 1
            self._sleep(delay)

    def run(self, run_id: str) -> Dict[str, object]:
        return self._json("GET", f"/v1/runs/{run_id}")

    def runs(self, tenant: Optional[str] = None) -> Dict[str, object]:
        suffix = f"?tenant={tenant}" if tenant else ""
        return self._json("GET", f"/v1/runs{suffix}")

    def status(self) -> Dict[str, object]:
        return self._json("GET", "/v1/status")

    def healthz(self) -> Dict[str, object]:
        """``GET /v1/healthz``: queue depth, disk, breakers, flags."""
        return self._json("GET", "/v1/healthz")

    def fetch(self, run_id: str, artifact: str) -> bytes:
        """Download one artifact (``results``/``archive``/``trace``)."""
        status, _headers, data = self._request(
            "GET", f"/v1/runs/{run_id}/{artifact}"
        )
        if status >= 400:
            try:
                message = str(json.loads(data.decode("utf-8"))["error"])
            except Exception:
                message = data[:200].decode("utf-8", "replace")
            raise ServiceError(status, message)
        return data

    def events(
        self, run_id: str, *, offset: int = 0
    ) -> Iterator[Tuple[str, Dict[str, object]]]:
        """The run's SSE stream as ``(event, payload)`` pairs.

        Yields until the server sends its terminal ``end`` event (which
        is included) or closes the connection. ``offset`` asks the
        server to skip that many journal records — the resume handle
        for a reconnecting client (see :meth:`watch_events`).
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            suffix = f"?offset={offset}" if offset else ""
            conn.request("GET", f"/v1/runs/{run_id}/events{suffix}")
            response = conn.getresponse()
            if response.status >= 400:
                data = response.read()
                try:
                    message = str(json.loads(data.decode("utf-8"))["error"])
                except Exception:
                    message = data[:200].decode("utf-8", "replace")
                raise ServiceError(response.status, message)
            event: Optional[str] = None
            for raw in response:
                line = raw.decode("utf-8").rstrip("\n")
                if line.startswith(":"):
                    continue  # keep-alive comment frame
                if line.startswith("event:"):
                    event = line[len("event:"):].strip()
                    continue
                if line.startswith("data:") and event is not None:
                    payload = json.loads(line[len("data:"):].strip())
                    yield event, payload
                    if event == "end":
                        return
                    event = None
        finally:
            conn.close()

    def watch_events(
        self, run_id: str, *, reconnects: int = 5
    ) -> Iterator[Tuple[str, Dict[str, object]]]:
        """:meth:`events`, surviving dropped streams without duplicates.

        A stream that dies before the terminal ``end`` event (server
        restart, network blip, proxy timeout) is reconnected up to
        ``reconnects`` consecutive times with capped exponential
        backoff; any delivered event resets the budget. Resumption is
        exact: the journal position travels as the server-side
        ``offset``, the repeated ``run`` banner is suppressed, and
        replayed trace spans are dropped by count — downstream
        consumers see each event once, in order.
        """
        journal_seen = 0
        spans_seen = 0
        run_seen = False
        drops = 0
        while True:
            delivered = 0
            span_index = 0
            try:
                for event, payload in self.events(
                    run_id, offset=journal_seen
                ):
                    if event == "journal":
                        journal_seen += 1
                    elif event == "span":
                        span_index += 1
                        if span_index <= spans_seen:
                            continue  # replayed on reconnect
                        spans_seen = span_index
                    elif event == "run":
                        if run_seen:
                            continue  # reconnect banner
                        run_seen = True
                    delivered += 1
                    yield event, payload
                    if event == "end":
                        return
            except _TRANSPORT_ERRORS as exc:
                last_error = f"{type(exc).__name__}: {exc}"
            else:
                last_error = "stream closed before the end event"
            drops = 1 if delivered else drops + 1
            if drops > reconnects:
                raise ServiceError(
                    503,
                    f"event stream for {run_id} kept dropping "
                    f"({last_error}); gave up after {reconnects} "
                    f"reconnects",
                )
            self._sleep(self._delay(drops - 1, None))
