"""Blocking client for the benchmark service (stdlib ``http.client``).

The CLI's ``submit``/``watch``/``fetch`` subcommands, the tests, and
the service benchmark all talk to the server through this one wrapper.
It deliberately mirrors the service's connection model — one request
per connection, ``Connection: close`` — so a client never has to
reason about keep-alive state, and :meth:`ServiceClient.events`
exposes the SSE stream as a plain generator of ``(event, payload)``
pairs.
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, Iterator, Optional, Tuple

from repro.exceptions import GraphalyticsError

__all__ = ["ServiceError", "ServiceClient"]


class ServiceError(GraphalyticsError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str, *, retry_after: Optional[float] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after


class ServiceClient:
    """Talks to one service instance at ``host:port``."""

    def __init__(self, host: str, port: int, *, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            return (
                response.status,
                {k.lower(): v for k, v in response.getheaders()},
                data,
            )
        finally:
            conn.close()

    def _json(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        status, headers, data = self._request(method, path, payload)
        try:
            decoded = json.loads(data.decode("utf-8")) if data else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            decoded = {}
        if status >= 400:
            retry_after = headers.get("retry-after")
            raise ServiceError(
                status,
                str(decoded.get("error", data[:200])),
                retry_after=float(retry_after) if retry_after else None,
            )
        return decoded

    # -- API ---------------------------------------------------------------

    def submit(
        self,
        tenant: str,
        matrix: Dict[str, object],
        *,
        workers: Optional[object] = None,
        job_timeout: Optional[float] = None,
    ) -> Dict[str, object]:
        """``POST /v1/runs``; raises :class:`ServiceError` on 4xx/5xx."""
        payload: Dict[str, object] = {"tenant": tenant, "matrix": matrix}
        if workers is not None:
            payload["workers"] = workers
        if job_timeout is not None:
            payload["job_timeout"] = job_timeout
        return self._json("POST", "/v1/runs", payload)

    def run(self, run_id: str) -> Dict[str, object]:
        return self._json("GET", f"/v1/runs/{run_id}")

    def runs(self, tenant: Optional[str] = None) -> Dict[str, object]:
        suffix = f"?tenant={tenant}" if tenant else ""
        return self._json("GET", f"/v1/runs{suffix}")

    def status(self) -> Dict[str, object]:
        return self._json("GET", "/v1/status")

    def fetch(self, run_id: str, artifact: str) -> bytes:
        """Download one artifact (``results``/``archive``/``trace``)."""
        status, _headers, data = self._request(
            "GET", f"/v1/runs/{run_id}/{artifact}"
        )
        if status >= 400:
            try:
                message = str(json.loads(data.decode("utf-8"))["error"])
            except Exception:
                message = data[:200].decode("utf-8", "replace")
            raise ServiceError(status, message)
        return data

    def events(self, run_id: str) -> Iterator[Tuple[str, Dict[str, object]]]:
        """The run's SSE stream as ``(event, payload)`` pairs.

        Yields until the server sends its terminal ``end`` event (which
        is included) or closes the connection.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", f"/v1/runs/{run_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                data = response.read()
                try:
                    message = str(json.loads(data.decode("utf-8"))["error"])
                except Exception:
                    message = data[:200].decode("utf-8", "replace")
                raise ServiceError(response.status, message)
            event: Optional[str] = None
            for raw in response:
                line = raw.decode("utf-8").rstrip("\n")
                if line.startswith(":"):
                    continue  # keep-alive comment frame
                if line.startswith("event:"):
                    event = line[len("event:"):].strip()
                    continue
                if line.startswith("data:") and event is not None:
                    payload = json.loads(line[len("data:"):].strip())
                    yield event, payload
                    if event == "end":
                        return
                    event = None
        finally:
            conn.close()
