"""The per-run child process: executes one spooled run to completion.

Each dispatched run executes in its **own process** rather than inside
the server. That buys three properties the service contract needs:

* isolation — a run that exhausts memory or dies on a platform bug
  takes out one child, not the server and every other tenant's stream;
* honest crash semantics — the e2e suite SIGKILLs the *server* mid-run
  and expects the restarted server to resume from the journal; the
  parent-death watchdog below makes the children die with the server,
  so the journal really is torn where the crash happened;
* a tailable journal — the child writes ``journal.jsonl`` in the run
  directory through the ordinary crash-safe runtime, and the server
  process streams it to SSE clients with :class:`~repro.service.tail.JournalTailer`
  without sharing any in-process state.

:func:`execute_service_run` is the ``multiprocessing.Process`` target.
It is a lint-recognized worker entrypoint (the RACE rules police it),
so it mutates no module globals — everything it touches lives in the
run directory it is handed.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, Optional, Union

from repro.faults import IoFaultPlan, install_io_plan
from repro.ioutil import atomic_write
from repro.resultsdb.store import STORE_NAME, commit_service_run
from repro.runtime.executor import (
    RuntimeConfig,
    execute_matrix,
    resolve_workers,
)
from repro.runtime.journal import RunJournal, config_from_payload
from repro.service.runs import OUTCOME_NAME, REQUEST_NAME
from repro.trace import Tracer, use_tracer

__all__ = ["execute_service_run", "run_outcome_payload"]

#: How often the orphan watchdog re-checks the parent (seconds).
_WATCHDOG_INTERVAL = 0.2


def _start_parent_watchdog(parent_pid: int) -> threading.Thread:
    """Kill this process the moment its parent disappears.

    When the server is SIGKILLed it cannot reap or signal its children,
    so each child polls its parent pid from a daemon thread and
    ``os._exit``\\ s on orphaning — the same guard the worker pool uses.
    A hard exit is deliberate: it tears the journal exactly where the
    crash landed, which is the case resume is built for.
    """

    def watch() -> None:
        while True:
            if os.getppid() != parent_pid:
                os._exit(1)
            time.sleep(_WATCHDOG_INTERVAL)

    thread = threading.Thread(
        target=watch, name="service-parent-watchdog", daemon=True
    )
    thread.start()
    return thread


def run_outcome_payload(result, *, elapsed: float) -> Dict[str, object]:
    """The terminal ``outcome.json`` body for a finished run."""
    database = result.database
    sla_breaches = sum(1 for row in database if not row.sla_compliant)
    payload = {
        "ok": True,
        "jobs": result.job_count,
        "rows": len(database),
        "failures": len(result.failures),
        "sla_breaches": sla_breaches,
        "restored_jobs": result.restored_jobs,
        "lost_jobs": result.lost_jobs,
        "workers": result.workers,
        "mode": result.mode,
        "elapsed_seconds": elapsed,
    }
    degraded = getattr(result, "degraded", None)
    if degraded:
        # Durability downgrades (journal ENOSPC / failed fsync): the
        # run finished, but not at full crash-safety — the flag rides
        # the outcome into run status and /v1/healthz.
        payload["degraded"] = list(degraded)
    return payload


def _commit_to_store(run_dir: Path, request, result, outcome) -> None:
    """Commit the finished run into the spool's shared results store.

    Part of the run's terminal commit: the job rows, the exported
    ``trace.jsonl`` spans, and the SLA breaches enter
    ``<spool>/results.db`` in one transaction right before
    ``outcome.json`` lands. ``replace`` semantics (inside
    :func:`~repro.resultsdb.store.commit_service_run`) make the write
    idempotent across relaunches — a child SIGKILLed at the
    ``resultsdb.commit`` fault point re-commits the run whole on its
    next attempt. A store failure must not fail a finished benchmark
    run: it downgrades to a ``degraded`` flag that rides the outcome
    into run status and ``/v1/healthz``, like a journal durability
    downgrade.
    """
    try:
        stats = commit_service_run(
            run_dir.parent / STORE_NAME,
            run_id=str(request.get("run_id") or run_dir.name),
            tenant=str(request.get("tenant") or ""),
            database=result.database,
            trace_path=run_dir / "trace.jsonl",
        )
    except Exception as exc:
        outcome.setdefault("degraded", []).append("resultsdb-commit-failed")
        outcome["resultsdb_error"] = f"{type(exc).__name__}: {exc}"
        return
    outcome["resultsdb"] = {"runs": stats["runs"], "jobs": stats["jobs"]}


def execute_service_run(
    run_dir: Union[str, Path],
    *,
    workers: Union[int, str, None] = "auto",
    job_timeout: Optional[float] = None,
    watchdog: bool = True,
) -> int:
    """Execute (or resume) the run spooled at ``run_dir``; returns 0/1.

    Reads ``request.json``, runs the matrix through the journaled
    runtime — resuming from ``journal.jsonl`` when one exists, so a
    rerun after a crash completes the remainder instead of starting
    over — then writes ``archive.json`` (the run's Granula performance
    archive), commits the run's rows, spans, and SLA breaches into the
    spool's shared results store, and finally writes ``outcome.json``.
    The outcome write is the commit point: the server treats a run
    directory without one as unfinished work to re-enqueue.
    """
    run_dir = Path(run_dir)
    if watchdog:
        _start_parent_watchdog(os.getppid())
    # A fresh tracer per child: span buffers and counters must not be
    # shared (or forked mid-write) from the server process.
    tracer = Tracer()
    with use_tracer(tracer):
        started = tracer.clock.now()
        try:
            with open(run_dir / REQUEST_NAME, "r", encoding="utf-8") as handle:
                request = json.load(handle)
            chaos = request.get("chaos")
            if chaos:
                # The submission carried a seeded I/O fault plan: arm
                # it in this child (and only this child) before any
                # journal or artifact write happens. Riding the spooled
                # request means a relaunched attempt re-arms the same
                # plan — chaos follows the run, not the server.
                install_io_plan(IoFaultPlan.from_dict(chaos))
            config = config_from_payload(request["config"])
            runtime = RuntimeConfig(
                workers=resolve_workers(workers),
                job_timeout=job_timeout,
                cache_dir=run_dir / "cache",
            )
            resume = RunJournal.journal_path(run_dir).exists()
            result = execute_matrix(
                config, runtime, run_dir=run_dir, resume=resume
            )
            atomic_write(
                run_dir / "archive.json",
                json.dumps(result.archive().as_dict(), indent=1, sort_keys=True),
            )
            outcome = run_outcome_payload(
                result, elapsed=tracer.clock.now() - started
            )
            _commit_to_store(run_dir, request, result, outcome)
        except Exception as exc:
            outcome = {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "elapsed_seconds": tracer.clock.now() - started,
            }
        atomic_write(
            run_dir / OUTCOME_NAME,
            json.dumps(outcome, indent=1, sort_keys=True),
            fault_point="service.spool.outcome",
        )
    return 0 if outcome.get("ok") else 1
