"""Cross-layer fault-injection plane.

Two complementary planes, one seed discipline:

* :mod:`repro.faults.plan` — **job-scoped** faults (hang, crash, error,
  harness-kill) matched by job spec and attempt, injected by the worker
  pool;
* :mod:`repro.faults.points` — **I/O-scoped** faults (ENOSPC, EIO,
  failed fsync, torn write, latency, kill) matched at named, centrally
  registered fault points inside ``ioutil``, the run journal, the cache
  spill, and the service spool.

Both are deterministic given their seed and travel to child processes,
so chaos suites assert exact outcomes — which run quarantines, which
journal degrades — instead of sampling noise. docs/robustness.md holds
the fault-point inventory and the invariants each suite proves.
"""

from repro.faults.plan import FaultPlan, FaultSpec, InjectedFaultError
from repro.faults.points import (
    FAULT_POINTS,
    IO_FAULT_KINDS,
    PLAN_ENV,
    FaultPointError,
    InjectedIOError,
    IoFault,
    IoFaultPlan,
    active_io_plan,
    check,
    fault_point_inventory,
    install_io_plan,
    io_faults,
    is_fault_point,
    register_fault_point,
    write_through,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "FAULT_POINTS",
    "IO_FAULT_KINDS",
    "PLAN_ENV",
    "FaultPointError",
    "InjectedIOError",
    "IoFault",
    "IoFaultPlan",
    "active_io_plan",
    "check",
    "fault_point_inventory",
    "install_io_plan",
    "io_faults",
    "is_fault_point",
    "register_fault_point",
    "write_through",
]
