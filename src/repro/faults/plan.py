"""Job-scoped fault injection for the worker pool.

The paper's robustness experiments (§4.6–4.7) treat failure behaviour as
a first-class benchmark output, and a concurrent harness has failure
modes of its own: hung jobs, killed workers, raised exceptions. A
:class:`FaultPlan` lets tests (and chaos-style self-checks) inject those
modes deterministically — matched by job spec and attempt number — so
the timeout/retry/failure-record machinery is exercised on purpose
rather than discovered in production.

Plans are picklable and travel to worker processes with the run
configuration; injection happens in the worker immediately before the
job body runs. Disk-level faults (ENOSPC, EIO, torn writes) live in the
sibling :mod:`repro.faults.points` plane, matched by named I/O fault
point rather than by job.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.exceptions import GraphalyticsError

__all__ = ["InjectedFaultError", "FaultSpec", "FaultPlan"]


class InjectedFaultError(GraphalyticsError):
    """Raised by ``kind="error"`` faults; converted to a failure record."""


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: which jobs, which failure mode, how often.

    ``times`` bounds injection per matching job: attempts 1..times fault,
    later attempts run normally — so ``times=1`` with a retry budget of 2
    models a transient failure the retry recovers from, while a large
    ``times`` models a permanent one.

    ``harness-kill`` is the chaos mode: it SIGKILLs the *harness*
    process itself (not a worker) right before the matching job would be
    dispatched, leaving a journal whose resume the chaos suite verifies
    (docs/robustness.md).
    """

    kind: str                      # "hang" | "crash" | "error" | "harness-kill"
    job_kind: str = "execute"      # JobKind to match, or "*"
    platform: str = "*"
    dataset: str = "*"
    algorithm: str = "*"
    run_index: Optional[int] = None
    times: int = 1
    #: Seconds a "hang" sleeps; far beyond any sane job timeout.
    hang_seconds: float = 3600.0

    def matches(self, spec, attempt: int) -> bool:
        if attempt > self.times:
            return False
        if self.job_kind not in ("*", spec.kind):
            return False
        if self.platform not in ("*", spec.platform):
            return False
        if self.dataset not in ("*", spec.dataset):
            return False
        if self.algorithm not in ("*", spec.algorithm):
            return False
        if self.run_index is not None and self.run_index != spec.run_index:
            return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault rules; the first match wins."""

    faults: Tuple[FaultSpec, ...] = ()

    def find(self, spec, attempt: int) -> Optional[FaultSpec]:
        for fault in self.faults:
            if fault.matches(spec, attempt):
                return fault
        return None

    def inject(self, spec, attempt: int) -> None:
        """Fire the matching fault, if any. Runs inside the worker.

        * ``hang``  — sleep past the job timeout (the dispatcher kills
          the worker and records a ``timeout`` attempt);
        * ``crash`` — hard-exit the worker process (recorded as a
          ``crash`` attempt);
        * ``error`` — raise :class:`InjectedFaultError` (converted by the
          worker into an ``exception`` attempt record).
        """
        fault = self.find(spec, attempt)
        if fault is None or fault.kind == "harness-kill":
            return
        if fault.kind == "hang":
            time.sleep(fault.hang_seconds)
            return
        if fault.kind == "crash":
            os._exit(17)
        raise InjectedFaultError(
            f"injected fault on {spec.job_id} (attempt {attempt})"
        )

    def inject_dispatcher(self, spec, attempt: int) -> None:
        """Fire ``harness-kill`` faults. Runs in the *dispatcher* process.

        Called immediately before a job is dispatched, so every job
        completed earlier is already journaled durably — exactly the
        crash point the chaos suite needs to prove resume loses nothing.
        SIGKILL (not ``os._exit``) guarantees no atexit/finally handler
        gets a chance to tidy up.
        """
        fault = self.find(spec, attempt)
        if fault is not None and fault.kind == "harness-kill":
            os.kill(os.getpid(), signal.SIGKILL)
