"""Named I/O fault points: enumerable disk-failure injection.

The job-scoped :class:`~repro.faults.plan.FaultPlan` answers "what if
this *job* hangs/crashes?"; this module answers "what if this *write*
hits a full disk, a failing device, or a power cut mid-line?". Every
durability-critical I/O site in the tree is threaded through a **named
fault point** registered in :data:`FAULT_POINTS` below — so the set of
injectable disk failures is a reviewable inventory (docs/robustness.md
reproduces it), not whatever a test happened to monkeypatch.

An :class:`IoFaultPlan` is a seeded, deterministic set of
:class:`IoFault` rules. Each rule names a point and a failure kind:

* ``enospc`` — raise ``OSError(ENOSPC)`` *before* any bytes are written
  (a full disk rejects the write whole);
* ``eio`` — raise ``OSError(EIO)`` before writing (a dying device);
* ``fsync-fail`` — like ``eio``, but named for fsync/fdatasync points,
  where the bytes were accepted and the *flush* is what fails;
* ``torn-write`` — write only a prefix of the payload, flush it, then
  raise ``EIO``: the on-disk state a power cut mid-``write(2)`` leaves;
* ``latency`` — sleep (via the tracer clock, so fake-clock tests stay
  deterministic) and then perform the write normally;
* ``kill`` — write a prefix, flush, and SIGKILL the current process:
  the chaos plane's way to die with a torn journal tail.

Matching is positional and seeded: a fault skips its point's first
``after`` arrivals, then fires up to ``times`` times, each arrival
gated by a ``probability`` coin flip drawn from the plan's own
``random.Random(seed)`` — same seed, same code path, same faults.
Counters are per-process: a run child that is killed and relaunched
re-counts from zero, which is exactly what a chaos plan wants when it
must kill *every* attempt (or, with ``after`` beyond the resumed
attempt's I/O, only the first).

Plans install process-globally (:func:`install_io_plan`, or the
:func:`io_faults` context manager for tests) and travel to child
processes either inside a spooled service request or through the
``GRAPHALYTICS_FAULT_PLAN`` environment variable (a path to a JSON
plan, read lazily on first use).
"""

from __future__ import annotations

import errno
import json
import os
import signal
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from random import Random
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.exceptions import GraphalyticsError

__all__ = [
    "FAULT_POINTS",
    "IO_FAULT_KINDS",
    "PLAN_ENV",
    "FaultPointError",
    "InjectedIOError",
    "IoFault",
    "IoFaultPlan",
    "register_fault_point",
    "fault_point_inventory",
    "is_fault_point",
    "install_io_plan",
    "active_io_plan",
    "io_faults",
    "check",
    "write_through",
]

#: Environment variable naming a JSON file holding an ``IoFaultPlan``
#: payload (``IoFaultPlan.as_dict`` shape); loaded lazily on first use
#: so any child process — service run child, pool worker — inherits the
#: chaos plan without plumbing.
PLAN_ENV = "GRAPHALYTICS_FAULT_PLAN"

IO_FAULT_KINDS = frozenset(
    {"enospc", "eio", "fsync-fail", "torn-write", "latency", "kill"}
)

#: Errno injected per kind; ``torn-write``/``kill`` surface as EIO when
#: they raise at all.
_KIND_ERRNO = {
    "enospc": errno.ENOSPC,
    "eio": errno.EIO,
    "fsync-fail": errno.EIO,
    "torn-write": errno.EIO,
}


class FaultPointError(GraphalyticsError):
    """A plan references a fault point nothing registered."""


class InjectedIOError(OSError):
    """An injected disk failure; ``errno`` matches the real one.

    Subclassing :class:`OSError` with a genuine ``errno`` means every
    handler written for the real failure (the journal's ENOSPC
    degradation, ``atomic_write``'s cleanup) treats injected and real
    faults identically — the injection plane cannot be special-cased.
    """

    def __init__(self, point: str, kind: str, err: int, message: str):
        super().__init__(err, message)
        self.point = point
        self.kind = kind


# -- the registry -------------------------------------------------------------

_REGISTRY: Dict[str, str] = {}


def register_fault_point(name: str, description: str) -> str:
    """Register a named fault point; returns the name for assignment.

    Idempotent for an identical description; a *different* description
    under the same name is a collision and raises.
    """
    existing = _REGISTRY.get(name)
    if existing is not None and existing != description:
        raise FaultPointError(
            f"fault point {name!r} registered twice with different "
            f"descriptions"
        )
    _REGISTRY[name] = description
    return name


def fault_point_inventory() -> Dict[str, str]:
    """Every registered fault point, name -> description, sorted."""
    return dict(sorted(_REGISTRY.items()))


def is_fault_point(name: str) -> bool:
    return name in _REGISTRY


#: The central inventory. Modules refer to these names; registering them
#: here (rather than at each call site) keeps the set enumerable without
#: importing every layer, and makes plan validation possible before any
#: I/O happens.
FAULT_POINTS: Dict[str, str] = {
    "ioutil.atomic_write.write": (
        "payload write to atomic_write's same-directory temp file"
    ),
    "ioutil.atomic_write.fsync": (
        "temp-file fsync before the rename publishes it"
    ),
    "ioutil.atomic_write.replace": (
        "os.replace of the temp file over the destination"
    ),
    "journal.append.write": (
        "append of one CRC-framed record line to the run journal"
    ),
    "journal.append.fsync": (
        "journal group-commit fdatasync (tiered durability)"
    ),
    "cache.spill.write": (
        "disk spill of a materialized graph from the runtime cache"
    ),
    "service.spool.request": (
        "service spool request.json (run identity, pre-enqueue)"
    ),
    "service.spool.outcome": (
        "service spool outcome.json (the run's terminal commit point)"
    ),
    "service.spool.supervise": (
        "service supervision ledger and quarantine records"
    ),
    "resultsdb.commit": (
        "results-store transaction COMMIT (one submitted run, or one "
        "whole legacy-repository import); kind=kill dies with the "
        "transaction in WAL, which discards it on the next open"
    ),
    "partitioned.shard.step": (
        "per-command chaos hook in a partitioned shard worker, checked "
        "before each superstep/round executes (kind=kill simulates a "
        "shard dying mid-superstep)"
    ),
}
for _name, _description in FAULT_POINTS.items():
    register_fault_point(_name, _description)


# -- the plan -----------------------------------------------------------------

@dataclass(frozen=True)
class IoFault:
    """One injection rule: which point, which failure, when.

    ``after`` skips the point's first N arrivals (in this process);
    ``times`` bounds how often the rule fires; ``probability`` gates
    each eligible arrival on the plan's seeded RNG.
    """

    point: str
    kind: str
    after: int = 0
    times: int = 1
    probability: float = 1.0
    #: Seconds a ``latency`` fault sleeps before the write proceeds.
    latency_seconds: float = 0.05

    def __post_init__(self):
        if self.kind not in IO_FAULT_KINDS:
            raise FaultPointError(
                f"unknown I/O fault kind {self.kind!r}; expected one of "
                f"{sorted(IO_FAULT_KINDS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultPointError(
                f"fault probability {self.probability} outside [0, 1]"
            )

    def as_dict(self) -> Dict[str, object]:
        return {
            "point": self.point,
            "kind": self.kind,
            "after": self.after,
            "times": self.times,
            "probability": self.probability,
            "latency_seconds": self.latency_seconds,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "IoFault":
        return cls(
            point=str(payload["point"]),
            kind=str(payload["kind"]),
            after=int(payload.get("after", 0)),
            times=int(payload.get("times", 1)),
            probability=float(payload.get("probability", 1.0)),
            latency_seconds=float(payload.get("latency_seconds", 0.05)),
        )


class IoFaultPlan:
    """A seeded, deterministic set of I/O fault rules.

    Per-point arrival counters and per-rule fired counters live on the
    plan instance; the probability coin flips come from one
    ``Random(seed)``, consumed in arrival order — so a fixed seed and a
    deterministic code path reproduce the exact same failures.
    """

    def __init__(self, faults: Sequence[IoFault] = (), *, seed: int = 0):
        self.faults: Tuple[IoFault, ...] = tuple(faults)
        self.seed = seed
        for fault in self.faults:
            if not is_fault_point(fault.point):
                raise FaultPointError(
                    f"fault plan targets unregistered point "
                    f"{fault.point!r}; known points: "
                    f"{sorted(_REGISTRY)}"
                )
        self._rng = Random(seed)
        self._arrivals: Dict[str, int] = {}
        self._fired: Dict[int, int] = {}

    def match(self, point: str) -> Optional[IoFault]:
        """Record an arrival at ``point``; return the rule that fires.

        First eligible rule wins. Every arrival at a point with a
        probabilistic rule consumes one RNG draw whether or not it
        fires, keeping the draw sequence a function of the arrival
        sequence alone.
        """
        arrival = self._arrivals.get(point, 0)
        self._arrivals[point] = arrival + 1
        for index, fault in enumerate(self.faults):
            if fault.point != point:
                continue
            if arrival < fault.after:
                continue
            if self._fired.get(index, 0) >= fault.times:
                continue
            if fault.probability < 1.0:
                if self._rng.random() >= fault.probability:
                    continue
            self._fired[index] = self._fired.get(index, 0) + 1
            return fault
        return None

    def injected(self) -> Dict[str, int]:
        """Rule index -> times fired (for assertions and healthz)."""
        return dict(self._fired)

    def as_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "faults": [fault.as_dict() for fault in self.faults],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "IoFaultPlan":
        faults = payload.get("faults", [])
        if not isinstance(faults, list):
            raise FaultPointError("fault plan 'faults' must be a list")
        return cls(
            [IoFault.from_dict(item) for item in faults],
            seed=int(payload.get("seed", 0)),
        )


# -- the active plan ----------------------------------------------------------

# Installed once at process start (worker entrypoint or env), then only
# read on the I/O path.
_ACTIVE_PLAN: Optional[IoFaultPlan] = None
_ENV_CHECKED = False


def install_io_plan(plan: Optional[IoFaultPlan]) -> None:
    """Install (or, with ``None``, clear) the process-wide plan."""
    # Per-process by design, like the tracer globals: each worker or
    # run child arms its own plan at entry and never shares it back.
    global _ACTIVE_PLAN
    _ACTIVE_PLAN = plan  # lint: disable=RACE001


def active_io_plan() -> Optional[IoFaultPlan]:
    """The installed plan, loading ``GRAPHALYTICS_FAULT_PLAN`` lazily."""
    global _ACTIVE_PLAN, _ENV_CHECKED
    if _ACTIVE_PLAN is None and not _ENV_CHECKED:
        # Lazy per-process env load, like install_io_plan: each worker
        # (pool, service child, partitioned shard) arms its own copy.
        _ENV_CHECKED = True  # lint: disable=RACE001
        path = os.environ.get(PLAN_ENV)
        if path:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
            _ACTIVE_PLAN = IoFaultPlan.from_dict(payload)  # lint: disable=RACE001
    return _ACTIVE_PLAN


@contextmanager
def io_faults(plan: IoFaultPlan) -> Iterator[IoFaultPlan]:
    """Scoped installation for tests; restores the previous plan."""
    previous = _ACTIVE_PLAN
    install_io_plan(plan)
    try:
        yield plan
    finally:
        install_io_plan(previous)


# -- call-site API ------------------------------------------------------------

def check(point: str) -> None:
    """Fire any fault matching a non-write point (fsync, replace, ...).

    ``torn-write``/``kill`` need a payload to tear; at a payload-less
    point they degrade to their raising halves (EIO, SIGKILL).
    """
    plan = active_io_plan()
    if plan is None:
        return
    fault = plan.match(point)
    if fault is not None:
        _fire(point, fault, None, None)


def write_through(point: str, handle, data: bytes) -> None:
    """``handle.write(data)``, threaded through the named fault point."""
    plan = active_io_plan()
    fault = plan.match(point) if plan is not None else None
    if fault is None:
        handle.write(data)
        return
    _fire(point, fault, handle, data)


def _fire(point: str, fault: IoFault, handle, data: Optional[bytes]) -> None:
    if fault.kind == "latency":
        # Lazy import: repro.trace itself writes through repro.ioutil,
        # so importing it at module load would close a cycle.
        from repro.trace import current_tracer

        current_tracer().clock.sleep(fault.latency_seconds)
        if handle is not None and data is not None:
            handle.write(data)
        return
    if fault.kind in ("torn-write", "kill") and data is not None:
        torn = data[: max(1, len(data) // 2)] if data else data
        handle.write(torn)
        try:
            handle.flush()
        except (OSError, ValueError):
            pass
    if fault.kind == "kill":
        # SIGKILL, not os._exit: no atexit/finally gets to tidy the
        # torn bytes up — the crash the plan asked for is honest.
        os.kill(os.getpid(), signal.SIGKILL)
    err = _KIND_ERRNO[fault.kind]
    raise InjectedIOError(
        point, fault.kind, err,
        f"injected {fault.kind} at fault point {point}",
    )
