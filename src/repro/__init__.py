"""LDBC Graphalytics reproduction: benchmark for graph analysis platforms.

Reproduces Iosup et al., *LDBC Graphalytics: A Benchmark for Large-Scale
Graph Analysis on Parallel and Distributed Platforms* (VLDB 2016):

* :mod:`repro.graph` — the graph data model (CSR storage, EVL file I/O);
* :mod:`repro.algorithms` — the six core algorithms (BFS, PR, WCC, CDLP,
  LCC, SSSP) with output-equivalence validation rules;
* :mod:`repro.datagen` — LDBC Datagen (tunable clustering coefficient,
  old/new execution flows) and the Graph500 Kronecker generator;
* :mod:`repro.platforms` — six simulated platform drivers (Giraph,
  GraphX, PowerGraph, GraphMat, OpenG, PGX.D) with calibrated
  performance models;
* :mod:`repro.harness` — benchmark configuration, dataset catalog,
  metrics, SLA, runner, the eight experiments, and the renewal process;
* :mod:`repro.granula` — fine-grained performance evaluation (modeler /
  archiver / visualizer);
* :mod:`repro.trace` — the span-based tracing core every layer measures
  time through (injectable clocks, nested spans, JSONL export).

Quickstart::

    import repro

    graph = repro.datagen.generate(600, target_clustering_coefficient=0.3)
    runner = repro.harness.BenchmarkRunner()
    result = runner.run_job("graphmat", "D300", "bfs")
    print(result.modeled_processing_time, result.validated)
"""

from repro import algorithms, datagen, graph, granula, harness, platforms, trace
from repro.graph import Graph, GraphBuilder, read_graph, write_graph
from repro.algorithms import (
    breadth_first_search,
    pagerank,
    weakly_connected_components,
    community_detection_lp,
    local_clustering_coefficient,
    single_source_shortest_paths,
)
from repro.harness import (
    BenchmarkConfig,
    BenchmarkRunner,
    DATASETS,
    EXPERIMENTS,
    ResultsDatabase,
)
from repro.platforms import PLATFORMS, create_driver

__version__ = "1.0.0"

__all__ = [
    "algorithms",
    "datagen",
    "graph",
    "granula",
    "harness",
    "platforms",
    "trace",
    "Graph",
    "GraphBuilder",
    "read_graph",
    "write_graph",
    "breadth_first_search",
    "pagerank",
    "weakly_connected_components",
    "community_detection_lp",
    "local_clustering_coefficient",
    "single_source_shortest_paths",
    "BenchmarkConfig",
    "BenchmarkRunner",
    "DATASETS",
    "EXPERIMENTS",
    "ResultsDatabase",
    "PLATFORMS",
    "create_driver",
    "__version__",
]
