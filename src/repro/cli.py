"""Command-line interface: ``graphalytics <command>``.

Commands:

* ``datasets`` — print the dataset catalog (Tables 3 and 4);
* ``platforms`` — print the platform roster (Table 5);
* ``experiments`` — list the experiment suite (Table 6);
* ``run`` — run one experiment and print its report;
* ``job`` — run a single (platform, dataset, algorithm) job;
* ``generate`` — generate a Datagen graph and write it in EVL format;
* ``granula`` — run one job and render its Granula archive;
* ``lint`` — static determinism/conformance analysis of the codebase;
* ``cache`` — inspect or clear the materialized-graph cache;
* ``report``/``full-run`` — accept ``--workers N`` to execute on the
  concurrent runtime (docs/runtime.md);
* ``resume`` — continue a crashed journaled run from its run directory
  (``--run-dir`` on run/report/full-run; docs/robustness.md);
* ``trace`` — render the span tree (or per-job summary) of a run
  directory's ``trace.jsonl`` (docs/observability.md);
* ``serve``/``submit``/``watch``/``fetch`` — the benchmark service:
  run the multi-tenant HTTP server, submit a matrix to it, stream a
  run's journal + trace as SSE, and download finished artifacts
  (docs/service.md).

Every ``--workers`` flag accepts an integer or ``auto``; ``auto`` (and
any request above the host's CPU count) resolves to the number of CPUs
(:func:`repro.runtime.executor.resolve_workers`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.exceptions import ConfigurationError, GraphalyticsError

__all__ = ["main", "build_parser"]


def _workers_type(value: str):
    """``--workers`` argument: a positive integer or the word ``auto``."""
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        )


def _add_partition_arguments(parser) -> None:
    """``--partitions``/``--partition-strategy``: sharded pythonref runs."""
    parser.add_argument(
        "--partitions", type=_workers_type, default=None,
        help="shard the measured pythonref platform across this many "
             "partition workers ('auto' = the host CPU count; outputs "
             "are bit-identical at any shard count, see docs/scaling.md)",
    )
    parser.add_argument(
        "--partition-strategy", choices=("hash", "range"), default="hash",
        help="edge-cut partitioning strategy for --partitions",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="graphalytics",
        description="LDBC Graphalytics reproduction benchmark",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="print the dataset catalog")
    sub.add_parser("selfcheck", help="verify this installation is healthy")
    sub.add_parser("platforms", help="print the platform roster")
    sub.add_parser("experiments", help="list the experiment suite")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment id (e.g. dataset-variety)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--figure", action="store_true",
        help="render an ASCII log-scale figure instead of raw rows",
    )
    run.add_argument(
        "--workers", type=_workers_type, default=1,
        help="prefetch the experiment's graphs and validation references "
             "on this many worker processes before the (sequential) body "
             "runs ('auto' = the host CPU count)",
    )
    run.add_argument(
        "--run-dir", default=None,
        help="journal the experiment under this directory; re-running "
             "with the same directory resumes a crashed run",
    )
    _add_partition_arguments(run)

    job = sub.add_parser("job", help="run a single benchmark job")
    job.add_argument("platform")
    job.add_argument("dataset")
    job.add_argument("algorithm")
    job.add_argument("--machines", type=int, default=1)
    job.add_argument("--threads", type=int, default=None)
    job.add_argument("--seed", type=int, default=0)

    gen = sub.add_parser("generate", help="generate a synthetic graph (EVL files)")
    gen.add_argument("prefix", help="output path prefix (writes .v and .e)")
    gen.add_argument(
        "--generator", choices=("datagen", "graph500"), default="datagen"
    )
    gen.add_argument("--persons", type=int, default=1000,
                     help="datagen: number of persons")
    gen.add_argument("--mean-degree", type=float, default=18.0,
                     help="datagen: target mean degree")
    gen.add_argument("--target-cc", type=float, default=None,
                     help="datagen: target average clustering coefficient")
    gen.add_argument("--scale", type=int, default=12,
                     help="graph500: 2^scale vertex slots")
    gen.add_argument("--edgefactor", type=int, default=16,
                     help="graph500: edges per vertex slot")
    gen.add_argument("--weighted", action="store_true")
    gen.add_argument("--seed", type=int, default=0)

    gran = sub.add_parser("granula", help="run a job and render its archive")
    gran.add_argument("platform")
    gran.add_argument("dataset")
    gran.add_argument("algorithm")
    gran.add_argument("--html", help="write an HTML report to this path")

    report = sub.add_parser(
        "report", help="run a benchmark selection and render a Markdown report"
    )
    report.add_argument("--platforms", nargs="*", default=None)
    report.add_argument("--datasets", nargs="*", default=None)
    report.add_argument("--algorithms", nargs="*", default=None)
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--output", help="write the report to this path")
    report.add_argument(
        "--workers", type=_workers_type, default=1,
        help="execute the matrix on this many worker processes "
             "('auto' = the host CPU count; deterministic merge, "
             "see docs/runtime.md)",
    )
    report.add_argument(
        "--cache-dir", default=None,
        help="persistent materialized-graph cache directory "
             "(default: a private per-run directory)",
    )
    report.add_argument(
        "--job-timeout", type=float, default=None,
        help="per-job wall-clock budget in seconds (workers > 1 only)",
    )
    report.add_argument(
        "--run-dir", default=None,
        help="journal the run under this directory (crash-safe; an "
             "existing journal of the same matrix is resumed)",
    )
    _add_partition_arguments(report)

    val = sub.add_parser(
        "validate",
        help="validate a platform output file against the reference",
    )
    val.add_argument("dataset")
    val.add_argument("algorithm")
    val.add_argument("output_file")
    val.add_argument("--seed", type=int, default=0)

    mat = sub.add_parser(
        "materialize",
        help="write the dataset archive (EVL files + reference outputs)",
    )
    mat.add_argument("directory")
    mat.add_argument("--datasets", nargs="*", default=None)
    mat.add_argument("--algorithms", nargs="*", default=None)
    mat.add_argument("--seed", type=int, default=0)

    est = sub.add_parser(
        "estimate",
        help="model Tproc/makespan/memory for a hypothetical workload",
    )
    est.add_argument("platform")
    est.add_argument("algorithm")
    est.add_argument("--vertices", type=float, required=True,
                     help="full-scale vertex count (e.g. 4.35e6)")
    est.add_argument("--edges", type=float, required=True,
                     help="full-scale edge count (e.g. 304e6)")
    est.add_argument("--skew", type=float, default=1.0,
                     help="memory-skew factor (Datagen ~1.0, Graph500 ~1.5)")
    est.add_argument("--degree-cv2", type=float, default=2.0)
    est.add_argument("--machines", type=int, default=1)
    est.add_argument("--threads", type=int, default=None)

    ana = sub.add_parser(
        "analyze",
        help="repeated-run head-to-head of two platforms (t-test)",
    )
    ana.add_argument("platform_a")
    ana.add_argument("platform_b")
    ana.add_argument("dataset")
    ana.add_argument("algorithm")
    ana.add_argument("--repetitions", type=int, default=6)
    ana.add_argument("--seed", type=int, default=0)

    repo = sub.add_parser(
        "repository", help="query a public results repository directory"
    )
    repo.add_argument("directory")
    repo_sub = repo.add_subparsers(dest="repo_command", required=True)
    repo_sub.add_parser("list", help="list stored runs")
    best = repo_sub.add_parser("best", help="fastest platform for a workload")
    best.add_argument("algorithm")
    best.add_argument("dataset")
    regress = repo_sub.add_parser(
        "regressions", help="workloads slower in a newer run"
    )
    regress.add_argument("old_run")
    regress.add_argument("new_run")
    regress.add_argument("--threshold", type=float, default=1.10)

    db = sub.add_parser(
        "db", help="canned queries over the SQLite results store"
    )
    db.add_argument(
        "--store", default=None,
        help="results.db path, or a repository/spool directory holding "
             "one (required for every subcommand except import, which "
             "defaults to <directory>/results.db)",
    )
    db_sub = db.add_subparsers(dest="db_command", required=True)
    db_top = db_sub.add_parser(
        "top", help="platform leaderboard for one workload"
    )
    db_top.add_argument("algorithm")
    db_top.add_argument("dataset")
    db_top.add_argument(
        "--limit", type=int, default=None, help="show only the first N rows"
    )
    db_trend = db_sub.add_parser(
        "trend",
        help="one platform x algorithm x dataset cell across stored runs",
    )
    db_trend.add_argument("platform")
    db_trend.add_argument("algorithm")
    db_trend.add_argument("dataset")
    db_trend.add_argument("--machines", type=int, default=None)
    db_trend.add_argument("--threads", type=int, default=None)
    db_regress = db_sub.add_parser(
        "regressions", help="workloads slower in a newer stored run"
    )
    db_regress.add_argument("old_run")
    db_regress.add_argument("new_run")
    db_regress.add_argument("--threshold", type=float, default=1.10)
    db_import = db_sub.add_parser(
        "import",
        help="migrate a legacy JSON repository directory into the store",
    )
    db_import.add_argument("directory")
    db_import.add_argument(
        "--replace", action="store_true",
        help="overwrite runs the store already holds",
    )
    db_import.add_argument(
        "--no-verify", action="store_true",
        help="skip the byte-identical round-trip check",
    )
    db_timeline = db_sub.add_parser(
        "timeline", help="render a stored run's trace spans as a phase tree"
    )
    db_timeline.add_argument("run_id")
    db_sub.add_parser("stats", help="store row counts and database size")

    lint = sub.add_parser(
        "lint",
        help="static determinism & benchmark-conformance analysis",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format",
    )
    lint.add_argument(
        "--baseline", default=None,
        help="baseline file of grandfathered findings "
             "(default: lint-baseline.json at the project root)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, ignoring the baseline",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings as the new baseline and exit 0",
    )
    lint.add_argument(
        "--select", nargs="*", default=None,
        help="run only these rule ids (e.g. DET001 CON002)",
    )
    lint.add_argument(
        "--show-baselined", action="store_true",
        help="also print findings covered by the baseline",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    lint.add_argument(
        "--no-project", action="store_true",
        help="skip the whole-program phase (project model, call graph, "
             "interprocedural rules); per-file rules only",
    )

    full = sub.add_parser(
        "full-run", help="run the complete experiment suite (Table 6)"
    )
    full.add_argument("--seed", type=int, default=0)
    full.add_argument("--report", help="write the composite report here")
    full.add_argument(
        "--repository", help="submit the validated run to this repository dir"
    )
    full.add_argument(
        "--experiments", nargs="*", default=None,
        help="subset of experiment ids (default: all eight)",
    )
    full.add_argument(
        "--workers", type=_workers_type, default=1,
        help="prefetch all experiment inputs on this many worker "
             "processes ('auto' = the host CPU count)",
    )
    full.add_argument(
        "--run-dir", default=None,
        help="journal the suite under this directory; re-running with "
             "the same directory resumes a crashed run",
    )
    _add_partition_arguments(full)

    resume = sub.add_parser(
        "resume",
        help="continue a crashed journaled run from its run directory",
    )
    resume.add_argument("run_dir", help="directory holding journal.jsonl")
    resume.add_argument(
        "--workers", type=_workers_type, default=1,
        help="worker processes for the remaining jobs ('auto' = the host "
             "CPU count; matrix runs only; may differ from the crashed run)",
    )
    resume.add_argument(
        "--job-timeout", type=float, default=None,
        help="per-job wall-clock budget in seconds (workers > 1 only)",
    )

    cache = sub.add_parser(
        "cache", help="inspect or clear the materialized-graph cache"
    )
    cache.add_argument(
        "--dir", dest="cache_dir", default=None,
        help="cache directory (default: $GRAPHALYTICS_CACHE_DIR or the "
             "XDG cache home)",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_sub.add_parser("stats", help="entry inventory and last-run counters")
    cache_sub.add_parser("clear", help="remove every cached entry")

    trace = sub.add_parser(
        "trace", help="inspect the span trace of a journaled run"
    )
    trace.add_argument(
        "run_dir",
        help="run directory holding trace.jsonl (or the file itself)",
    )
    trace.add_argument(
        "--summary", action="store_true",
        help="per-job metric table instead of the full span tree",
    )
    trace.add_argument(
        "--max-depth", type=int, default=None,
        help="truncate the span tree below this depth",
    )
    trace.add_argument(
        "--min-ms", type=float, default=0.0,
        help="hide spans shorter than this many milliseconds",
    )

    serve = sub.add_parser(
        "serve", help="run the benchmark service (HTTP submissions + SSE)"
    )
    serve.add_argument(
        "--spool", default="service-spool",
        help="directory holding every submitted run (survives restarts)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8735,
        help="listen port (0 picks a free port; the bound address is "
             "printed on boot)",
    )
    serve.add_argument(
        "--workers", type=_workers_type, default="auto",
        help="default worker count per run ('auto' = the host CPU count)",
    )
    serve.add_argument(
        "--job-timeout", type=float, default=None,
        help="default per-job wall-clock budget forwarded to runs",
    )
    serve.add_argument(
        "--max-running", type=int, default=2,
        help="global cap on concurrently executing runs",
    )
    serve.add_argument(
        "--tenant-depth", type=int, default=4,
        help="per-tenant queued-run quota (429 over it)",
    )
    serve.add_argument(
        "--tenant-running", type=int, default=1,
        help="per-tenant concurrently-running quota",
    )
    serve.add_argument(
        "--run-attempts", type=int, default=3,
        help="launches per run before quarantine (counted across "
             "restarts via the durable attempt ledger)",
    )
    serve.add_argument(
        "--run-backoff", type=float, default=0.5,
        help="base of the exponential relaunch backoff after a run "
             "child dies (base * 2^(attempt-1) seconds)",
    )
    serve.add_argument(
        "--breaker-threshold", type=int, default=3,
        help="consecutive run-child deaths that open a tenant's "
             "circuit breaker (503 on new submissions)",
    )
    serve.add_argument(
        "--breaker-cooldown", type=float, default=30.0,
        help="seconds an open circuit sheds a tenant's submissions",
    )
    _add_partition_arguments(serve)

    submit = sub.add_parser(
        "submit", help="submit a benchmark matrix to the service"
    )
    submit.add_argument(
        "matrix",
        help="path to a JSON matrix file, or the word 'example' for the "
             "standard example matrix",
    )
    submit.add_argument("--tenant", default="cli",
                        help="tenant name for fair-share scheduling")
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=8735)
    submit.add_argument(
        "--workers", type=_workers_type, default=None,
        help="per-run worker override (integer or 'auto')",
    )
    submit.add_argument("--job-timeout", type=float, default=None)
    submit.add_argument(
        "--retries", type=int, default=0,
        help="retry 429/503/connection failures this many times with "
             "capped exponential backoff (honors Retry-After)",
    )
    submit.add_argument(
        "--chaos", default=None,
        help="path to a JSON I/O fault plan the run child installs "
             "(seeded, deterministic; see docs/robustness.md)",
    )
    submit.add_argument(
        "--watch", action="store_true",
        help="stay attached and stream the run's events after submitting",
    )
    _add_partition_arguments(submit)

    watch = sub.add_parser(
        "watch", help="stream a service run's journal + trace as it executes"
    )
    watch.add_argument("run_id")
    watch.add_argument("--host", default="127.0.0.1")
    watch.add_argument("--port", type=int, default=8735)
    watch.add_argument(
        "--reconnects", type=int, default=5,
        help="consecutive dropped-stream reconnects before giving up "
             "(resumes from the last-seen offset, no duplicates)",
    )

    fetch = sub.add_parser(
        "fetch", help="download a finished service run's artifacts"
    )
    fetch.add_argument("run_id")
    fetch.add_argument(
        "--artifact",
        choices=("results", "archive", "trace", "outcome", "quarantine"),
        default="results",
    )
    fetch.add_argument(
        "--output", default=None,
        help="write to this path (default: print to stdout)",
    )
    fetch.add_argument("--host", default="127.0.0.1")
    fetch.add_argument("--port", type=int, default=8735)

    health = sub.add_parser(
        "health", help="print the service's /v1/healthz report"
    )
    health.add_argument("--host", default="127.0.0.1")
    health.add_argument("--port", type=int, default=8735)

    return parser


def _cmd_datasets() -> int:
    from repro.harness.datasets import DATASETS

    print(f"{'id':7s} {'name':22s} {'|V|':>10s} {'|E|':>12s} "
          f"{'scale':>5s} {'class':>5s} {'domain'}")
    for ds in DATASETS.values():
        p = ds.profile
        print(f"{ds.dataset_id:7s} {p.name:22s} {p.num_vertices:>10,d} "
              f"{p.num_edges:>12,d} {p.scale:>5.1f} {ds.tshirt:>5s} {ds.domain}")
    return 0


def _cmd_selfcheck() -> int:
    from repro.harness.selfcheck import run_selfcheck

    results = run_selfcheck()
    failed = 0
    for result in results:
        status = "ok" if result.passed else "FAIL"
        print(f"[{status:>4s}] {result.name}: {result.detail}")
        if not result.passed:
            failed += 1
    if failed:
        print(f"{failed} of {len(results)} checks failed")
        return 1
    print(f"all {len(results)} checks passed")
    return 0


def _cmd_platforms() -> int:
    from repro.platforms.registry import PLATFORMS

    print(f"{'type':6s} {'name':12s} {'vendor':14s} {'lang':6s} "
          f"{'model':12s} {'version'}")
    for info, _ in PLATFORMS.values():
        print(f"{info.type_code:6s} {info.name:12s} {info.vendor:14s} "
              f"{info.language:6s} {info.programming_model:12s} {info.version}")
    return 0


def _cmd_experiments() -> int:
    from repro.harness.experiments import EXPERIMENTS

    print(f"{'id':22s} {'sec':4s} {'category':12s} {'title'}")
    for exp in EXPERIMENTS.values():
        print(f"{exp.experiment_id:22s} {exp.section:4s} "
              f"{exp.category:12s} {exp.title}")
    return 0


def _cmd_run(args) -> int:
    from repro.harness.experiments import get_experiment

    from repro.runtime.executor import resolve_partitions, resolve_workers

    experiment = get_experiment(args.experiment)
    print(f"running experiment {experiment.experiment_id} "
          f"({experiment.title}, paper §{experiment.section}) ...")
    runner = None
    workers = resolve_workers(args.workers)
    partitions = resolve_partitions(args.partitions)
    if workers > 1 or partitions is not None:
        from repro.harness.config import BenchmarkConfig
        from repro.harness.runner import BenchmarkRunner

        runner = BenchmarkRunner(BenchmarkConfig(
            seed=args.seed,
            partitions=partitions,
            partition_strategy=args.partition_strategy,
        ))
        if partitions is not None:
            print(f"# pythonref jobs run sharded: {partitions} "
                  f"partition(s), {args.partition_strategy} strategy")
    if workers > 1:
        from repro.runtime.executor import RuntimeConfig, prefetch_into_runner

        prefetch = prefetch_into_runner(
            runner,
            datasets=list(experiment.datasets),
            algorithms=list(experiment.algorithms),
            runtime=RuntimeConfig(workers=workers),
        )
        if prefetch is not None:
            print(f"# prefetched {prefetch.dag_size} artifacts on "
                  f"{workers} workers in "
                  f"{prefetch.elapsed_seconds:.2f} s")
    report = experiment.run(runner, seed=args.seed, run_dir=args.run_dir)
    if args.figure:
        _print_figure(experiment, report)
    else:
        for row in report.rows:
            print("  " + "  ".join(f"{k}={_fmt(v)}" for k, v in row.items()))
    for note in report.notes:
        print(f"# {note}")
    return 0


def _print_figure(experiment, report) -> None:
    from repro.harness.figures import render_dataset_variety, render_scaling

    algorithms = experiment.algorithms or ("bfs",)
    for algorithm in algorithms:
        if any("machines" in row for row in report.rows):
            print(render_scaling(
                report, algorithm, x_values=experiment.nodes or (1,)
            ))
        elif any("threads" in row for row in report.rows):
            print(render_scaling(
                report, algorithm, x_field="threads",
                x_values=experiment.threads or (1,),
            ))
        elif any("dataset" in row for row in report.rows):
            print(render_dataset_variety(report, algorithm))
        else:
            print("(this experiment has no figure rendering)")
            return
        print()


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def _cmd_job(args) -> int:
    from repro.harness.config import BenchmarkConfig
    from repro.harness.runner import BenchmarkRunner
    from repro.platforms.cluster import ClusterResources

    runner = BenchmarkRunner(BenchmarkConfig(seed=args.seed))
    result = runner.run_job(
        args.platform,
        args.dataset,
        args.algorithm,
        resources=ClusterResources(machines=args.machines, threads=args.threads),
    )
    for key, value in result.as_dict().items():
        print(f"{key:28s} {_fmt(value) if value is not None else '-'}")
    return 0


def _cmd_generate(args) -> int:
    from repro.graph.io import write_graph

    if args.generator == "graph500":
        from repro.datagen.graph500 import graph500

        graph = graph500(
            args.scale,
            edgefactor=args.edgefactor,
            weighted=args.weighted,
            seed=args.seed,
        )
    else:
        from repro.datagen.generator import generate

        graph = generate(
            args.persons,
            mean_degree=args.mean_degree,
            target_clustering_coefficient=args.target_cc,
            weighted=args.weighted,
            seed=args.seed,
        )
    vertex_path, edge_path = write_graph(graph, args.prefix)
    print(f"wrote {graph.num_vertices} vertices to {vertex_path}")
    print(f"wrote {graph.num_edges} edges to {edge_path}")
    return 0


def _cmd_granula(args) -> int:
    from repro.granula.archiver import build_archive
    from repro.granula.visualizer import render_text, save_html
    from repro.harness.datasets import get_dataset
    from repro.platforms.registry import create_driver

    dataset = get_dataset(args.dataset)
    driver = create_driver(args.platform)
    handle = driver.upload(dataset.materialize(), profile=dataset.profile)
    job = driver.execute(
        handle, args.algorithm, dataset.algorithm_parameters(args.algorithm)
    )
    if not job.succeeded:
        print(f"job failed: {job.status.value} ({job.failure_reason})")
        return 1
    archive = build_archive(job)
    print(render_text(archive))
    if args.html:
        path = save_html(archive, args.html)
        print(f"HTML report written to {path}")
    return 0


def _cmd_report(args) -> int:
    from repro.harness.config import BenchmarkConfig
    from repro.harness.report import render_report, save_report
    from repro.harness.runner import BenchmarkRunner

    overrides = {}
    if args.platforms:
        overrides["platforms"] = args.platforms
    if args.datasets:
        overrides["datasets"] = args.datasets
    if args.algorithms:
        overrides["algorithms"] = args.algorithms
    from repro.runtime.executor import resolve_partitions, resolve_workers

    config = BenchmarkConfig(
        seed=args.seed,
        partitions=resolve_partitions(args.partitions),
        partition_strategy=args.partition_strategy,
        **overrides,
    )
    runner = BenchmarkRunner(config)
    workers = resolve_workers(args.workers)
    if workers > 1 or args.cache_dir or args.job_timeout or args.run_dir:
        from repro.runtime.executor import RuntimeConfig

        runtime = RuntimeConfig(
            workers=workers,
            cache_dir=args.cache_dir,
            job_timeout=args.job_timeout,
        )
        database = runner.run(runtime=runtime, run_dir=args.run_dir)
        if runner.last_run.restored_jobs:
            print(f"# journal: restored {runner.last_run.restored_jobs} "
                  f"job(s) from {args.run_dir}")
        print(f"# runtime: {runner.last_run.describe()}")
    else:
        database = runner.run()
    if args.output:
        path = save_report(database, args.output)
        print(f"report written to {path}")
    else:
        print(render_report(database))
    return 0


def _cmd_validate(args) -> int:
    from repro.exceptions import ValidationError
    from repro.algorithms.output_io import validate_output_file
    from repro.algorithms.registry import run_reference
    from repro.harness.datasets import get_dataset

    dataset = get_dataset(args.dataset)
    graph = dataset.materialize(args.seed)
    params = dataset.algorithm_parameters(args.algorithm, args.seed)
    reference = run_reference(args.algorithm, graph, params)
    try:
        validate_output_file(
            graph, args.output_file, reference, algorithm=args.algorithm
        )
    except ValidationError as exc:
        print(f"VALIDATION FAILED: {exc}")
        return 1
    print(
        f"output matches the {args.algorithm.upper()} reference for "
        f"{dataset.label}"
    )
    return 0


def _cmd_materialize(args) -> int:
    from repro.harness.archive import materialize_archive

    written = materialize_archive(
        args.directory,
        dataset_ids=args.datasets,
        algorithms=args.algorithms,
        seed=args.seed,
    )
    for directory in written:
        print(f"archived {directory}")
    return 0


def _cmd_estimate(args) -> int:
    from repro.harness.scale import scale_class
    from repro.harness.sla import SLA_MAKESPAN_SECONDS
    from repro.platforms.cluster import ClusterResources
    from repro.platforms.model import WorkloadProfile
    from repro.platforms.registry import create_driver

    driver = create_driver(args.platform)
    v, e = int(args.vertices), int(args.edges)
    profile = WorkloadProfile(
        name="hypothetical",
        num_vertices=v,
        num_edges=e,
        directed=False,
        weighted=True,
        mean_degree=2.0 * e / max(1, v),
        degree_cv2=args.degree_cv2,
        memory_skew=args.skew,
    )
    resources = ClusterResources(machines=args.machines, threads=args.threads)
    model = driver.model
    print(f"workload: |V|={v:,} |E|={e:,} scale={profile.scale} "
          f"({scale_class(profile.scale)})")
    print(f"resources: {resources.describe()}")
    demand = model.memory_demand_per_machine(args.algorithm, profile, resources)
    capacity = model.memory_capacity_per_machine(resources)
    print(f"memory/machine: {demand / 2**30:.1f} GiB of "
          f"{capacity / 2**30:.1f} GiB usable "
          f"({'fits' if demand <= capacity else 'OUT OF MEMORY'})")
    if demand > capacity:
        return 1
    tproc = model.processing_time(args.algorithm, profile, resources)
    makespan = model.makespan(args.algorithm, profile, resources,
                              processing_time=tproc)
    print(f"modeled Tproc: {tproc:.2f} s")
    print(f"modeled makespan: {makespan:.1f} s "
          f"({'within' if makespan <= SLA_MAKESPAN_SECONDS else 'BREAKS'} "
          f"the 1-hour SLA)")
    print(f"modeled EVPS: {profile.elements / tproc:.3g}")
    return 0


def _cmd_analyze(args) -> int:
    from repro.harness.analysis import compare_platforms, summarize_measurements
    from repro.harness.config import BenchmarkConfig
    from repro.harness.runner import BenchmarkRunner

    config = BenchmarkConfig(
        platforms=[args.platform_a, args.platform_b],
        datasets=[args.dataset],
        algorithms=[args.algorithm],
        repetitions=args.repetitions,
        seed=args.seed,
    )
    database = BenchmarkRunner(config).run()
    for platform in (args.platform_a, args.platform_b):
        times = database.processing_times(
            platform=platform, algorithm=args.algorithm, dataset=args.dataset
        )
        if len(times) >= 2:
            summary = summarize_measurements(times)
            print(
                f"{platform}: mean {summary.mean:.3g} s "
                f"(95% CI {summary.ci_low:.3g}..{summary.ci_high:.3g}, "
                f"CV {summary.cv * 100:.1f}%, n={summary.count})"
            )
        else:
            print(f"{platform}: insufficient successful runs ({len(times)})")
    comparison = compare_platforms(
        database, args.platform_a, args.platform_b,
        algorithm=args.algorithm, dataset=args.dataset,
    )
    verdict = "significant" if comparison.significant else "not significant"
    p_text = f", p={comparison.p_value:.2e}" if comparison.p_value else ""
    print(
        f"{comparison.faster} is {comparison.speedup:.2f}x faster than "
        f"{comparison.slower} ({verdict}{p_text})"
    )
    return 0


def _cmd_repository(args) -> int:
    from repro.harness.repository import ResultsRepository

    repo = ResultsRepository(args.directory)
    if args.repo_command == "list":
        run_ids = repo.run_ids()
        if not run_ids:
            print("(no runs stored)")
            return 0
        for run_id in run_ids:
            meta = repo.metadata(run_id)
            jobs = len(repo.load(run_id))
            print(f"{run_id:24s} {meta.system_under_test:32s} {jobs} jobs")
        return 0
    if args.repo_command == "best":
        best = repo.best_platform(args.algorithm, args.dataset)
        if best is None:
            print("no compliant result for that workload")
            return 1
        print(
            f"{best['platform']} at {best['tproc']:.3g} s "
            f"(run {best['run_id']})"
        )
        return 0
    # regressions
    found = repo.regressions(
        args.old_run, args.new_run, threshold=args.threshold
    )
    if not found:
        print("no regressions")
        return 0
    for regression in found:
        print(
            f"{regression.platform} {regression.algorithm} on "
            f"{regression.dataset}: {regression.old_seconds:.3g} s -> "
            f"{regression.new_seconds:.3g} s ({regression.slowdown:.2f}x)"
        )
    return 1


def _resolve_store_path(value, *, must_exist: bool = True):
    """``--store`` -> a ``results.db`` path; accepts a directory too."""
    from pathlib import Path

    from repro.resultsdb.store import STORE_NAME

    if value is None:
        raise ConfigurationError(
            "this db subcommand needs --store (a results.db path or a "
            "directory containing one)"
        )
    path = Path(value)
    if path.is_dir():
        path = path / STORE_NAME
    if must_exist and not path.exists():
        raise ConfigurationError(f"no results store at {path}")
    return path


def _cmd_db(args) -> int:
    from repro.resultsdb import queries
    from repro.resultsdb.migrate import import_json_repository
    from repro.resultsdb.store import ResultsStore

    if args.db_command == "import":
        store_path = (
            _resolve_store_path(args.store, must_exist=False)
            if args.store else None
        )
        summary = import_json_repository(
            args.directory,
            store_path,
            replace=args.replace,
            verify=not args.no_verify,
        )
        verified = " (byte-identical)" if summary["verified"] else ""
        print(
            f"imported {len(summary['imported'])} run(s) into "
            f"{summary['store']}{verified}"
        )
        for run_id in summary["imported"]:
            print(f"  {run_id}")
        for name in summary["skipped"]:
            print(f"  retired legacy sidecar left behind: {name}")
        return 0

    with ResultsStore(_resolve_store_path(args.store)) as store:
        if args.db_command == "top":
            entries = queries.top(
                store, args.algorithm, args.dataset, limit=args.limit
            )
            if not entries:
                print("no compliant result for that workload")
                return 1
            for entry in entries:
                print(
                    f"{entry.rank:2d}. {entry.platform:16s} "
                    f"{entry.tproc:.3g} s  (run {entry.run_id})"
                )
            return 0
        if args.db_command == "trend":
            points = queries.trend(
                store, args.platform, args.algorithm, args.dataset,
                machines=args.machines, threads=args.threads,
            )
            if not points:
                print("no stored runs hold that workload cell")
                return 1
            for point in points:
                commit = f" @{point.commit_sha[:12]}" if point.commit_sha else ""
                tproc = (
                    f"{point.tproc:.3g} s" if point.tproc is not None
                    else f"({point.status})"
                )
                print(f"{point.run_id:24s}{commit} {tproc}")
            return 0
        if args.db_command == "regressions":
            from repro.granula.visualizer import render_store_regressions

            found = queries.regressions(
                store, args.old_run, args.new_run, threshold=args.threshold
            )
            print(
                render_store_regressions(
                    store, args.old_run, args.new_run,
                    threshold=args.threshold,
                )
            )
            return 1 if found else 0
        if args.db_command == "timeline":
            from repro.granula.visualizer import render_store_run

            print(render_store_run(store, args.run_id))
            return 0
        # stats
        stats = store.stats()
        print(f"store:        {stats['path']}")
        print(f"runs:         {stats['runs']}")
        print(f"jobs:         {stats['jobs']}")
        print(f"spans:        {stats['spans']}")
        print(f"sla_breaches: {stats['sla_breaches']}")
        print(f"db_bytes:     {stats['db_bytes']}")
        return 0


def _cmd_lint(args) -> int:
    from pathlib import Path

    from repro.lint import (
        LintEngine,
        all_rules,
        load_baseline,
        load_config,
        partition_findings,
        render_json,
        render_text,
        stale_entries,
        write_baseline,
    )

    if args.list_rules:
        for rule_id, rule in sorted(all_rules().items()):
            scope = ", ".join(rule.scope) if rule.scope else "everywhere"
            print(f"{rule_id}  {rule.severity:7s} [{scope}]")
            print(f"    {rule.description}")
        return 0

    config = load_config()
    if args.baseline:
        config.baseline = args.baseline
    if args.select:
        config.select = list(args.select)
    if args.no_project:
        config.project = False

    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        import repro

        paths = [Path(repro.__file__).parent]

    engine = LintEngine(config)
    findings = engine.run(paths)

    if args.write_baseline:
        path = write_baseline(config.baseline_path, findings)
        print(f"baseline with {len(findings)} findings written to {path}")
        return 0

    if args.no_baseline:
        baseline = {}
    else:
        baseline = load_baseline(config.baseline_path)
    new, baselined = partition_findings(findings, baseline)
    stale = stale_entries(findings, baseline)

    if args.format == "json":
        print(render_json(new, baselined, stale=stale))
    else:
        print(
            render_text(
                new,
                baselined,
                verbose_baseline=args.show_baselined,
                stale=stale,
            )
        )
    return 1 if new else 0


def _cmd_full_run(args) -> int:
    from repro.harness.full_run import run_full_benchmark
    from repro.harness.repository import ResultsRepository
    from repro.runtime.executor import resolve_partitions, resolve_workers

    repository = ResultsRepository(args.repository) if args.repository else None
    result = run_full_benchmark(
        seed=args.seed,
        experiment_ids=args.experiments,
        report_path=args.report,
        repository=repository,
        workers=resolve_workers(args.workers),
        run_dir=args.run_dir,
        partitions=resolve_partitions(args.partitions),
        partition_strategy=args.partition_strategy,
    )
    print(
        f"ran {len(result.reports)} experiments, {result.job_count} jobs"
    )
    for note in result.notes:
        print(f"# {note}")
    if args.report:
        print(f"report written to {args.report}")
    if repository is not None:
        print(f"run stored in {args.repository}")
    return 0


def _cmd_resume(args) -> int:
    from pathlib import Path

    from repro.runtime.journal import RunJournal

    replay = RunJournal.load(args.run_dir)
    kind = replay.header.get("kind")
    if replay.truncated_bytes:
        print(f"# journal: dropped a torn tail of "
              f"{replay.truncated_bytes} byte(s)")
    if kind == "matrix":
        from repro.runtime.executor import (
            RuntimeConfig,
            resolve_workers,
            resume_run,
        )

        runtime = RuntimeConfig(
            workers=resolve_workers(args.workers), job_timeout=args.job_timeout
        )
        outcome = resume_run(args.run_dir, runtime)
        print(f"# journal: restored {outcome.restored_jobs} of "
              f"{outcome.dag_size} job(s); "
              f"{outcome.dag_size - outcome.restored_jobs} executed now")
        print(f"# runtime: {outcome.describe()}")
        print(f"results written to {Path(args.run_dir) / 'results.json'}")
        return 0
    if kind == "full-run":
        from repro.harness.full_run import run_full_benchmark
        from repro.runtime.executor import resolve_workers

        result = run_full_benchmark(
            seed=int(replay.header.get("seed", 0)),
            experiment_ids=replay.header.get("experiments"),
            report_path=replay.header.get("report"),
            workers=resolve_workers(args.workers),
            run_dir=args.run_dir,
            partitions=replay.header.get("partitions"),
            partition_strategy=str(
                replay.header.get("partition_strategy") or "hash"
            ),
        )
        print(f"ran {len(result.reports)} experiments, "
              f"{result.job_count} jobs")
        for note in result.notes:
            print(f"# {note}")
        print(f"results written to {Path(args.run_dir) / 'results.json'}")
        return 0
    if kind == "experiment":
        from repro.harness.experiments import get_experiment

        experiment = get_experiment(str(replay.header.get("experiment")))
        report = experiment.run(
            seed=int(replay.header.get("seed", 0)), run_dir=args.run_dir
        )
        print(f"resumed experiment {experiment.experiment_id}: "
              f"{len(report.rows)} rows")
        for note in report.notes:
            print(f"# {note}")
        return 0
    print(f"error: journal records unknown run kind {kind!r}",
          file=sys.stderr)
    return 1


def _cmd_cache(args) -> int:
    from repro.runtime.cache import GraphCache, default_cache_directory

    directory = args.cache_dir or default_cache_directory()
    cache = GraphCache(directory)
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {directory}")
        return 0
    # stats
    entries = cache.disk_entries()
    print(f"cache directory: {directory}")
    if not entries:
        print("(no cached entries)")
    total = 0
    for entry in entries:
        total += entry.bytes
        print(f"  {entry.kind:10s} {entry.label:32s} {entry.bytes:>12,d} B")
    if entries:
        print(f"{len(entries)} entries, {total:,d} bytes")
    stats = cache.read_run_stats()
    if stats is not None:
        print(f"last run: {stats.describe()} "
              f"(hit rate {stats.hit_rate * 100:.0f}%)")
    return 0


def _cmd_trace(args) -> int:
    from pathlib import Path

    from repro.trace import read_trace, render_tree, validate_tree

    path = Path(args.run_dir)
    if path.is_dir():
        path = path / "trace.jsonl"
    if not path.exists():
        print(f"error: {path} does not exist (was the run started with "
              f"--run-dir?)", file=sys.stderr)
        return 1
    spans, counters = read_trace(path)
    print(f"{path}: {len(spans)} span(s), {len(counters)} counter(s)")
    violations = validate_tree(spans)
    for violation in violations:
        print(f"  [invalid] {violation}")
    if args.summary:
        jobs = sorted(
            (s for s in spans if s.name == "job"),
            key=lambda s: (s.start, s.span_id),
        )
        if jobs:
            def fmt(value):
                if isinstance(value, (int, float)):
                    return f"{float(value) * 1000.0:.3f} ms"
                return "-"

            print(f"{'platform':12s} {'dataset':8s} {'algorithm':9s} "
                  f"{'status':10s} {'tproc':>12s} {'makespan':>12s}")
            for job in jobs:
                attrs = job.attributes
                print(
                    f"{str(attrs.get('platform', '?')):12s} "
                    f"{str(attrs.get('dataset', '?')):8s} "
                    f"{str(attrs.get('algorithm', '?')):9s} "
                    f"{str(attrs.get('status', job.status)):10s} "
                    f"{fmt(attrs.get('tproc')):>12s} "
                    f"{fmt(attrs.get('makespan')):>12s}"
                )
        else:
            print("(no job spans)")
    else:
        tree = render_tree(
            spans,
            max_depth=args.max_depth,
            min_duration=args.min_ms / 1000.0,
        )
        print(tree if tree else "(no spans)")
    if counters:
        print("counters:")
        for name in sorted(counters):
            print(f"  {name:24s} {counters[name]:g}")
    return 1 if violations else 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service import BenchmarkService, ServiceConfig

    config = ServiceConfig(
        spool=args.spool,
        host=args.host,
        port=args.port,
        workers=args.workers,
        job_timeout=args.job_timeout,
        max_running=args.max_running,
        per_tenant_depth=args.tenant_depth,
        per_tenant_running=args.tenant_running,
        run_attempts=args.run_attempts,
        run_backoff_base=args.run_backoff,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        partitions=args.partitions,
        partition_strategy=args.partition_strategy,
    )

    async def serve() -> None:
        service = BenchmarkService(config)
        host, port = await service.start()
        # The bound address line is machine-readable on purpose: tests
        # and the bench harness parse it when --port 0 picks a port.
        print(f"graphalytics service listening on http://{host}:{port}",
              flush=True)
        print(f"# spool: {service.registry.spool}", flush=True)
        try:
            await service.serve_forever()
        finally:
            await service.stop()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("service stopped")
    return 0


def _load_matrix_argument(text: str):
    import json

    if text == "example":
        from repro.runtime.executor import example_matrix
        from repro.runtime.journal import config_payload

        return config_payload(example_matrix())
    with open(text, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _cmd_submit(args) -> int:
    import json

    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.host, args.port)
    matrix = _load_matrix_argument(args.matrix)
    if args.partitions is not None and isinstance(matrix, dict):
        # Partitioning rides the matrix payload itself: the run child
        # rebuilds the config via config_from_payload, no protocol change.
        matrix["partitions"] = args.partitions
        matrix["partition_strategy"] = args.partition_strategy
    chaos = None
    if args.chaos:
        with open(args.chaos, "r", encoding="utf-8") as handle:
            chaos = json.load(handle)
    try:
        accepted = client.submit(
            args.tenant,
            matrix,
            workers=args.workers,
            job_timeout=args.job_timeout,
            chaos=chaos,
            retries=args.retries,
        )
    except ServiceError as exc:
        if exc.status in (429, 503) and exc.retry_after is not None:
            print(f"error: {exc} (retry after {exc.retry_after:g} s)",
                  file=sys.stderr)
            return 1
        raise
    run_id = accepted["run_id"]
    print(f"accepted run {run_id} ({accepted['state']}); "
          f"watch with: graphalytics watch {run_id} "
          f"--host {args.host} --port {args.port}")
    if args.watch:
        return _watch_run(client, str(run_id))
    return 0


def _watch_run(client, run_id: str, *, reconnects: int = 5) -> int:
    """Render a run's SSE stream: journal lines, then the span tree."""
    from repro.trace import Span, render_tree

    spans: List = []
    final_state: dict = {}
    for event, payload in client.watch_events(run_id, reconnects=reconnects):
        if event == "run":
            print(f"# run {payload.get('run_id')} [{payload.get('state')}] "
                  f"tenant={payload.get('tenant')}")
        elif event == "journal":
            kind = payload.get("type", "?")
            detail = {
                k: v for k, v in payload.items()
                if k in ("job", "key", "attempt", "worker", "kind", "seq")
            }
            text = " ".join(f"{k}={v}" for k, v in detail.items())
            print(f"  [{kind}] {text}")
        elif event == "span":
            spans.append(Span.from_dict(payload))
        elif event == "end":
            final_state = payload
    if spans:
        print(render_tree(spans))
    state = final_state.get("state", "unknown")
    print(f"# run {run_id} finished: {state}")
    for key in ("jobs", "failures", "sla_breaches", "elapsed_seconds",
                "attempts", "degraded"):
        if key in final_state:
            print(f"#   {key}: {_fmt(final_state[key])}")
    quarantine = final_state.get("quarantine")
    if isinstance(quarantine, dict):
        print(f"#   quarantined: {quarantine.get('reason', '?')}")
    return 0 if state == "done" else 1


def _cmd_watch(args) -> int:
    from repro.service import ServiceClient

    return _watch_run(
        ServiceClient(args.host, args.port),
        args.run_id,
        reconnects=args.reconnects,
    )


def _cmd_fetch(args) -> int:
    from repro.service import ServiceClient

    client = ServiceClient(args.host, args.port)
    data = client.fetch(args.run_id, args.artifact)
    if args.output:
        with open(args.output, "wb") as handle:
            handle.write(data)
        print(f"{args.artifact} of {args.run_id} written to {args.output} "
              f"({len(data)} bytes)")
    else:
        sys.stdout.write(data.decode("utf-8"))
    return 0


def _cmd_health(args) -> int:
    import json

    from repro.service import ServiceClient

    report = ServiceClient(args.host, args.port).healthz()
    print(json.dumps(report, indent=1, sort_keys=True))
    return 0 if report.get("status") == "ok" else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "datasets":
            return _cmd_datasets()
        if args.command == "selfcheck":
            return _cmd_selfcheck()
        if args.command == "platforms":
            return _cmd_platforms()
        if args.command == "experiments":
            return _cmd_experiments()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "job":
            return _cmd_job(args)
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "granula":
            return _cmd_granula(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "validate":
            return _cmd_validate(args)
        if args.command == "materialize":
            return _cmd_materialize(args)
        if args.command == "estimate":
            return _cmd_estimate(args)
        if args.command == "repository":
            return _cmd_repository(args)
        if args.command == "db":
            return _cmd_db(args)
        if args.command == "analyze":
            return _cmd_analyze(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "full-run":
            return _cmd_full_run(args)
        if args.command == "resume":
            return _cmd_resume(args)
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "watch":
            return _cmd_watch(args)
        if args.command == "fetch":
            return _cmd_fetch(args)
        if args.command == "health":
            return _cmd_health(args)
    except GraphalyticsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
